//! Adaptive wire compression: the codec stage every bulk payload crosses on
//! codec-negotiated sessions.
//!
//! ## Why
//!
//! The paper's model (§V) is bandwidth-bound for large transfers — end-to-end
//! time is `fixed + k·transfer(n)` — so shrinking `n` on the wire attacks
//! exactly the dominant term. Production rCUDA follow-ups ship automatic
//! compression for this reason. The catch is that compression only pays when
//! `bytes_saved / link_throughput > cpu_cost`: on a fast interconnect, or on
//! incompressible data (dense random f32s), blindly compressing *adds*
//! latency. Hence the adaptive per-payload policy below.
//!
//! ## Negotiation
//!
//! The capability travels inside frames that legacy peers already parse:
//!
//! 1. The server folds its capability bits into the high 16 bits of the
//!    minor word of its 8-byte compute-capability push
//!    ([`fold_caps`]/[`split_minor_word`]). Real compute-capability minors
//!    are tiny, so a legacy client sees a harmless (if odd-looking) minor
//!    and ignores it; a codec-aware client masks the caps off.
//! 2. A codec-aware client that wants compression answers with an 8-byte
//!    [`CodecHello`] — the impossible-selector [`FunctionId::Codec`] plus
//!    the accepted capability mask — *before* its session hello. There is
//!    no reply; the message is a statement, not a question. A client that
//!    stays silent gets a byte-identical legacy session.
//!
//! Both directions therefore interoperate with legacy peers automatically:
//! a legacy client never sends the opt-in, a legacy server never advertises
//! (caps = 0), and in each case the wire stays bit-for-bit the old format.
//!
//! ## Wire framing on codec sessions
//!
//! Each bulk payload (H2D memcpy data, launch regions, D2H responses) gains
//! a 4-byte `enc_len` prefix before its bytes. `enc_len == raw_len` means
//! the bytes are raw; `enc_len < raw_len` means an LZ4 block that inflates
//! to exactly `raw_len`. The encoder only ships compressed payloads that are
//! *strictly* smaller, so the framing is unambiguous; `enc_len > raw_len` is
//! malformed. Fixed-size message heads, module uploads, and status words are
//! never compressed — the win lives in the bulk data.
//!
//! ## Zero-copy interaction
//!
//! Compression scratch comes from the same [`BufferPool`] as payload
//! staging, and the compressor's match table lives on its stack — a
//! steady-state compressed memcpy loop allocates nothing once the pool is
//! warm (asserted by the counting-allocator tests with the codec forced on).

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

use crate::ids::FunctionId;
use crate::payload::{BufferPool, Payload};
use crate::wire::{get_u32, put_u32, read_payload};

/// Capability bit: LZ4 block compression of bulk payloads.
pub const CAP_LZ4: u32 = 1;

/// All capabilities this build understands.
pub const CAP_ALL: u32 = CAP_LZ4;

/// Fold server capability bits into the minor word of the 8-byte hello
/// push. Real compute-capability minors fit comfortably in 16 bits.
pub const fn fold_caps(minor: u32, caps: u32) -> u32 {
    (minor & 0xFFFF) | (caps << 16)
}

/// Split a hello minor word into `(minor, caps)` — the inverse of
/// [`fold_caps`]. Legacy servers never set high bits, so `caps` is 0.
pub const fn split_minor_word(word: u32) -> (u32, u32) {
    (word & 0xFFFF, word >> 16)
}

/// The client's codec opt-in: 8 bytes ([`FunctionId::Codec`] selector +
/// accepted capability mask), sent once before the session hello. No reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecHello {
    /// Capabilities the client accepts (a subset of what the server
    /// advertised).
    pub caps: u32,
}

impl CodecHello {
    /// Bytes on the wire (always 8).
    pub const WIRE_BYTES: usize = 8;

    /// Serialize onto the wire.
    pub fn write<W: Write>(self, w: &mut W) -> io::Result<()> {
        put_u32(w, FunctionId::Codec.as_u32())?;
        put_u32(w, self.caps)
    }

    /// Read the body after the selector word has been consumed (servers
    /// peek the first word to route, exactly as for the other handshakes).
    pub fn read_body<R: Read>(r: &mut R) -> io::Result<CodecHello> {
        Ok(CodecHello { caps: get_u32(r)? })
    }
}

/// When the codec compresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CodecMode {
    /// Never compress (the codec still decodes incoming compressed frames).
    Never = 0,
    /// Compress every eligible payload that strictly shrinks. For tests and
    /// benches on transports faster than the compressor (loopback, channel),
    /// where the adaptive policy would correctly decline everything.
    Always = 1,
    /// The time-model policy below decides per payload.
    Adaptive = 2,
}

/// Payloads below this never compress: the per-message overhead would
/// exceed any plausible saving, and small messages are latency- (not
/// bandwidth-) bound anyway.
const MIN_COMPRESS_LEN: usize = 4096;

/// Bytes the entropy probe and trial compression sample.
const SAMPLE_BYTES: usize = 4096;

/// Decline when the sampled prefix carries more than this many bits of
/// entropy per byte (dense random data: nothing to win).
const ENTROPY_BITS_MAX: f64 = 7.0;

/// Decline when trial-compressing the sample saves less than 10%.
const SAMPLE_RATIO_MAX: f64 = 0.90;

/// EMA smoothing for the online throughput estimates.
const EMA_ALPHA: f64 = 0.2;

/// After this many consecutive declines the adaptive policy stops probing
/// every payload (the traffic has shown itself incompressible) …
const BACKOFF_AFTER_DECLINES: u64 = 4;

/// … and re-probes only every this-many payloads, so a shift to
/// compressible data is still caught within a handful of transfers.
const BACKOFF_PROBE_PERIOD: u64 = 8;

/// Decision and volume counters, snapshot via [`Codec::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Payloads shipped compressed.
    pub compressed: u64,
    /// Declined: below [`MIN_COMPRESS_LEN`].
    pub raw_small: u64,
    /// Declined: entropy probe saw near-random bytes.
    pub raw_entropy: u64,
    /// Declined: trial ratio or time model said compression loses.
    pub raw_policy: u64,
    /// Compressed in full but did not strictly shrink; shipped raw.
    pub raw_expanded: u64,
    /// Raw bytes of the payloads shipped compressed.
    pub bytes_raw: u64,
    /// Encoded bytes of the payloads shipped compressed.
    pub bytes_enc: u64,
}

impl CodecStats {
    /// Encoded/raw across compressed payloads (1.0 when none compressed).
    pub fn ratio(&self) -> f64 {
        if self.bytes_raw == 0 {
            1.0
        } else {
            self.bytes_enc as f64 / self.bytes_raw as f64
        }
    }

    /// Total encode decisions taken.
    pub fn decisions(&self) -> u64 {
        self.compressed + self.raw_small + self.raw_entropy + self.raw_policy + self.raw_expanded
    }
}

/// An f64 stored in an atomic (bit-cast), for lock-free EMA updates.
#[derive(Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn ema_update(&self, sample: f64) {
        // A lost race between two updates just drops one EMA sample —
        // harmless for a smoothed estimate, so no CAS loop.
        let prev = self.load();
        let next = if prev == 0.0 {
            sample
        } else {
            prev + EMA_ALPHA * (sample - prev)
        };
        self.0.store(next.to_bits(), Ordering::Relaxed);
    }
}

/// The per-session codec: encode policy, pooled scratch, decode helpers.
///
/// Shared by reference (the client runtime and each server connection hold
/// one); all state is atomic, so `encode` takes `&self`.
pub struct Codec {
    pool: BufferPool,
    mode: AtomicU8,
    /// Observed link throughput, bytes/second (0 until first observation).
    /// Fed by the caller from transfer-time deltas — the client uses its
    /// session clock, so simulated-network sessions learn the *simulated*
    /// link rate.
    link_bps: AtomicF64,
    /// Observed compression throughput, bytes/second (wall time).
    comp_bps: AtomicF64,
    compressed: AtomicU64,
    raw_small: AtomicU64,
    raw_entropy: AtomicU64,
    raw_policy: AtomicU64,
    raw_expanded: AtomicU64,
    bytes_raw: AtomicU64,
    bytes_enc: AtomicU64,
    /// Consecutive declines (any reason but `raw_small`); drives the
    /// probe backoff. Reset by every compressed payload.
    decline_streak: AtomicU64,
}

impl Codec {
    /// An adaptive codec drawing scratch from `pool`.
    pub fn new(pool: BufferPool) -> Codec {
        Codec::with_mode(pool, CodecMode::Adaptive)
    }

    /// A codec with an explicit mode.
    pub fn with_mode(pool: BufferPool, mode: CodecMode) -> Codec {
        Codec {
            pool,
            mode: AtomicU8::new(mode as u8),
            link_bps: AtomicF64::default(),
            comp_bps: AtomicF64::default(),
            compressed: AtomicU64::new(0),
            raw_small: AtomicU64::new(0),
            raw_entropy: AtomicU64::new(0),
            raw_policy: AtomicU64::new(0),
            raw_expanded: AtomicU64::new(0),
            bytes_raw: AtomicU64::new(0),
            bytes_enc: AtomicU64::new(0),
            decline_streak: AtomicU64::new(0),
        }
    }

    pub fn mode(&self) -> CodecMode {
        match self.mode.load(Ordering::Relaxed) {
            0 => CodecMode::Never,
            1 => CodecMode::Always,
            _ => CodecMode::Adaptive,
        }
    }

    pub fn set_mode(&self, mode: CodecMode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Feed an observed transfer: `bytes` payload bytes took `nanos` on the
    /// link. Updates the throughput estimate the time model divides by.
    pub fn observe_link(&self, bytes: u64, nanos: u64) {
        if bytes > 0 && nanos > 0 {
            self.link_bps
                .ema_update(bytes as f64 / (nanos as f64 / 1e9));
        }
    }

    /// Snapshot the decision counters.
    pub fn stats(&self) -> CodecStats {
        CodecStats {
            compressed: self.compressed.load(Ordering::Relaxed),
            raw_small: self.raw_small.load(Ordering::Relaxed),
            raw_entropy: self.raw_entropy.load(Ordering::Relaxed),
            raw_policy: self.raw_policy.load(Ordering::Relaxed),
            raw_expanded: self.raw_expanded.load(Ordering::Relaxed),
            bytes_raw: self.bytes_raw.load(Ordering::Relaxed),
            bytes_enc: self.bytes_enc.load(Ordering::Relaxed),
        }
    }

    /// Encode one payload: `Some(Payload::Lz4 { .. })` when compression won
    /// (strictly smaller), `None` when the payload should travel raw.
    pub fn encode(&self, raw: &[u8]) -> Option<Payload> {
        match self.mode() {
            CodecMode::Never => {
                self.raw_policy.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            CodecMode::Always => {}
            CodecMode::Adaptive => {
                if raw.len() < MIN_COMPRESS_LEN {
                    self.raw_small.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                // Probe backoff: a run of declines means this traffic is
                // incompressible; skip even the probes on most payloads and
                // re-probe every [`BACKOFF_PROBE_PERIOD`]-th, so declining
                // costs ~nothing in steady state yet a shift to
                // compressible data is caught within a few transfers.
                let streak = self.decline_streak.load(Ordering::Relaxed);
                if streak >= BACKOFF_AFTER_DECLINES
                    && !(streak - BACKOFF_AFTER_DECLINES).is_multiple_of(BACKOFF_PROBE_PERIOD)
                {
                    self.decline_streak.fetch_add(1, Ordering::Relaxed);
                    self.raw_policy.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                if sampled_entropy_bits(raw) > ENTROPY_BITS_MAX {
                    self.decline_streak.fetch_add(1, Ordering::Relaxed);
                    self.raw_entropy.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                let ratio = trial_ratio(raw);
                if ratio > SAMPLE_RATIO_MAX {
                    self.decline_streak.fetch_add(1, Ordering::Relaxed);
                    self.raw_policy.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                // Time model: worth it only when the wire time saved
                // exceeds the CPU time spent. Unknown link or compressor
                // throughput → optimistic (the first transfers calibrate).
                let link = self.link_bps.load();
                let comp = self.comp_bps.load();
                if link > 0.0 && comp > 0.0 {
                    let saved = raw.len() as f64 * (1.0 - ratio);
                    if saved / link <= raw.len() as f64 / comp {
                        self.decline_streak.fetch_add(1, Ordering::Relaxed);
                        self.raw_policy.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
        }

        let started = Instant::now();
        let mut scratch = self.pool.get(lz4_flex::get_maximum_output_size(raw.len()));
        let n = lz4_flex::compress_into(raw, &mut scratch).expect("scratch sized to bound");
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.comp_bps.ema_update(raw.len() as f64 / secs);
        }
        if n >= raw.len() {
            self.decline_streak.fetch_add(1, Ordering::Relaxed);
            self.raw_expanded.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.decline_streak.store(0, Ordering::Relaxed);
        self.compressed.fetch_add(1, Ordering::Relaxed);
        self.bytes_raw
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        self.bytes_enc.fetch_add(n as u64, Ordering::Relaxed);
        scratch.truncate(n);
        Some(Payload::Lz4 {
            raw_len: raw.len() as u32,
            data: scratch,
        })
    }

    /// Write one codec-framed block: `[enc_len u32][bytes]`, compressing
    /// when the policy says so. Returns the bytes put on the wire.
    pub fn write_block<W: Write>(&self, w: &mut W, raw: &[u8]) -> io::Result<u64> {
        match self.encode(raw) {
            Some(enc) => {
                put_u32(w, enc.len() as u32)?;
                w.write_all(enc.as_slice())?;
                Ok(4 + enc.len() as u64)
            }
            None => {
                put_u32(w, raw.len() as u32)?;
                w.write_all(raw)?;
                Ok(4 + raw.len() as u64)
            }
        }
    }

    /// Read one codec-framed block that inflates to exactly `raw_len`
    /// bytes, into a pooled payload. The inverse of [`Codec::write_block`].
    pub fn read_block<R: Read>(&self, r: &mut R, raw_len: usize) -> io::Result<Payload> {
        let enc_len = get_u32(r)? as usize;
        if enc_len == raw_len {
            return read_payload(r, raw_len, Some(&self.pool));
        }
        if enc_len > raw_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "encoded payload longer than its raw length",
            ));
        }
        let mut enc = self.pool.get(enc_len);
        r.read_exact(&mut enc)?;
        let mut out = self.pool.get(raw_len);
        inflate_exact(&enc, &mut out)?;
        Ok(Payload::Pooled(out))
    }

    /// Read one codec-framed block directly into `out` (the client's D2H
    /// receive path: the caller's buffer is the final destination, so raw
    /// frames deserialize into it with no staging at all).
    pub fn read_block_into<R: Read>(&self, r: &mut R, out: &mut [u8]) -> io::Result<()> {
        let enc_len = get_u32(r)? as usize;
        if enc_len == out.len() {
            return r.read_exact(out);
        }
        if enc_len > out.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "encoded payload longer than its raw length",
            ));
        }
        let mut enc = self.pool.get(enc_len);
        r.read_exact(&mut enc)?;
        inflate_exact(&enc, out)
    }

    /// The pool scratch and decoded payloads come from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl std::fmt::Debug for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Codec {{ mode: {:?}, compressed: {}, declined: {} }}",
            self.mode(),
            s.compressed,
            s.decisions() - s.compressed
        )
    }
}

/// Decompress `enc` into `out`, requiring the decoded length to fill `out`
/// exactly (wire payload lengths are fixed by the message head).
fn inflate_exact(enc: &[u8], out: &mut [u8]) -> io::Result<()> {
    let n = lz4_flex::decompress_into(enc, out)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if n != out.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "compressed payload inflated to the wrong length",
        ));
    }
    Ok(())
}

/// Shannon entropy (bits/byte) of up to [`SAMPLE_BYTES`] evenly strided
/// bytes — a cheap probe that catches dense random data before any
/// compression work. The histogram lives on the stack.
fn sampled_entropy_bits(data: &[u8]) -> f64 {
    // Odd stride: power-of-two strides alias with the power-of-two record
    // layouts typical of GPU payloads and would sample the same field of
    // every record.
    let stride = ((data.len() / SAMPLE_BYTES).max(1)) | 1;
    let mut hist = [0u32; 256];
    let mut count = 0u32;
    let mut i = 0;
    while i < data.len() && count < SAMPLE_BYTES as u32 {
        hist[data[i] as usize] += 1;
        count += 1;
        i += stride;
    }
    if count == 0 {
        return 0.0;
    }
    let total = count as f64;
    hist.iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Trial-compress a stride-sampled [`SAMPLE_BYTES`]-byte excerpt and return
/// its compression ratio — a microsecond-scale, payload-specific estimate
/// of what full compression would achieve. Sampling in chunks keeps local
/// match structure visible; everything stays on the stack.
fn trial_ratio(data: &[u8]) -> f64 {
    const CHUNKS: usize = 8;
    const CHUNK: usize = SAMPLE_BYTES / CHUNKS;
    let mut sample = [0u8; SAMPLE_BYTES];
    let taken = if data.len() <= SAMPLE_BYTES {
        sample[..data.len()].copy_from_slice(data);
        data.len()
    } else {
        let span = (data.len() - CHUNK) / (CHUNKS - 1);
        for c in 0..CHUNKS {
            let off = c * span;
            sample[c * CHUNK..(c + 1) * CHUNK].copy_from_slice(&data[off..off + CHUNK]);
        }
        SAMPLE_BYTES
    };
    let mut out = [0u8; lz4_flex::get_maximum_output_size(SAMPLE_BYTES)];
    match lz4_flex::compress_into(&sample[..taken], &mut out) {
        Ok(n) => n as f64 / taken.max(1) as f64,
        Err(_) => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn compressible(len: usize) -> Vec<u8> {
        // Sparse/structured: long zero runs with periodic markers.
        let mut v = vec![0u8; len];
        for i in (0..len).step_by(64) {
            v[i] = (i % 251) as u8;
        }
        v
    }

    fn incompressible(len: usize) -> Vec<u8> {
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn caps_fold_and_split() {
        assert_eq!(fold_caps(3, 0), 3, "caps 0 leaves the word untouched");
        let word = fold_caps(5, CAP_LZ4);
        assert_eq!(split_minor_word(word), (5, CAP_LZ4));
        assert_eq!(split_minor_word(3), (3, 0), "legacy word has no caps");
    }

    #[test]
    fn codec_hello_round_trips() {
        let mut buf = Vec::new();
        CodecHello { caps: CAP_LZ4 }.write(&mut buf).unwrap();
        assert_eq!(buf.len(), CodecHello::WIRE_BYTES);
        let mut c = Cursor::new(&buf);
        assert_eq!(get_u32(&mut c).unwrap(), FunctionId::Codec.as_u32());
        assert_eq!(
            CodecHello::read_body(&mut c).unwrap(),
            CodecHello { caps: CAP_LZ4 }
        );
    }

    #[test]
    fn encode_compresses_structured_and_round_trips() {
        let codec = Codec::with_mode(BufferPool::new(), CodecMode::Always);
        let raw = compressible(1 << 20);
        let enc = codec.encode(&raw).expect("structured data compresses");
        assert!(enc.len() < raw.len() / 2);
        assert_eq!(enc.raw_len(), raw.len());
        let mut back = vec![0u8; raw.len()];
        inflate_exact(enc.as_slice(), &mut back).unwrap();
        assert_eq!(back, raw);
        let s = codec.stats();
        assert_eq!(s.compressed, 1);
        assert!(s.ratio() < 0.5);
    }

    #[test]
    fn adaptive_declines_small_and_random_payloads() {
        let codec = Codec::new(BufferPool::new());
        assert!(codec.encode(&[1u8; 100]).is_none(), "below min length");
        assert_eq!(codec.stats().raw_small, 1);

        assert!(
            codec.encode(&incompressible(1 << 20)).is_none(),
            "dense random bytes must be declined"
        );
        let s = codec.stats();
        assert_eq!(
            s.raw_entropy + s.raw_policy,
            1,
            "declined by probe or trial, not by full compression: {s:?}"
        );
        assert_eq!(s.compressed, 0);
    }

    #[test]
    fn adaptive_compresses_structured_payloads() {
        let codec = Codec::new(BufferPool::new());
        assert!(codec.encode(&compressible(1 << 20)).is_some());
        assert_eq!(codec.stats().compressed, 1);
    }

    #[test]
    fn decline_streak_backs_off_probing_and_recovers() {
        let codec = Codec::new(BufferPool::new());
        let random = incompressible(1 << 20);

        // Build the streak: the first BACKOFF_AFTER_DECLINES declines probe
        // for real (entropy), after which most declines skip the probe and
        // are booked as policy declines.
        for _ in 0..BACKOFF_AFTER_DECLINES {
            assert!(codec.encode(&random).is_none());
        }
        assert_eq!(codec.stats().raw_entropy, BACKOFF_AFTER_DECLINES);
        // One more periodic probe fires right at the threshold; everything
        // else in the next period is a probe-free policy decline.
        for _ in 0..BACKOFF_PROBE_PERIOD {
            assert!(codec.encode(&random).is_none());
        }
        let s = codec.stats();
        assert_eq!(s.raw_entropy, BACKOFF_AFTER_DECLINES + 1, "{s:?}");
        assert_eq!(
            s.raw_policy,
            BACKOFF_PROBE_PERIOD - 1,
            "backed-off declines skip the probes: {s:?}"
        );

        // A shift to compressible traffic is caught at the next periodic
        // re-probe — within BACKOFF_PROBE_PERIOD payloads — and the streak
        // resets, so the following payload compresses immediately.
        let friendly = compressible(1 << 20);
        let mut until_compressed = 0u64;
        while codec.encode(&friendly).is_none() {
            until_compressed += 1;
            assert!(
                until_compressed <= BACKOFF_PROBE_PERIOD,
                "re-probe must fire within one period: {:?}",
                codec.stats()
            );
        }
        assert!(codec.encode(&friendly).is_some(), "streak reset");
    }

    #[test]
    fn adaptive_declines_when_link_outruns_compressor() {
        let codec = Codec::new(BufferPool::new());
        // Calibrate the compressor estimate with one real encode.
        assert!(codec.encode(&compressible(1 << 20)).is_some());
        // Now claim a 100 GB/s link: no saving can beat the CPU cost.
        codec.observe_link(100_000_000_000, 1_000_000_000);
        assert!(codec.encode(&compressible(1 << 20)).is_none());
        assert_eq!(codec.stats().raw_policy, 1);
        // And on a 10 MB/s link the same payload compresses again.
        codec.observe_link(10_000_000, 1_000_000_000);
        // One observation against the EMA may not be enough; saturate it.
        for _ in 0..50 {
            codec.observe_link(10_000_000, 1_000_000_000);
        }
        assert!(codec.encode(&compressible(1 << 20)).is_some());
    }

    #[test]
    fn never_mode_declines_everything() {
        let codec = Codec::with_mode(BufferPool::new(), CodecMode::Never);
        assert!(codec.encode(&compressible(1 << 20)).is_none());
        assert_eq!(codec.stats().raw_policy, 1);
    }

    #[test]
    fn always_mode_ships_raw_when_compression_expands() {
        let codec = Codec::with_mode(BufferPool::new(), CodecMode::Always);
        assert!(codec.encode(&incompressible(1 << 16)).is_none());
        assert_eq!(codec.stats().raw_expanded, 1);
    }

    #[test]
    fn blocks_round_trip_compressed_and_raw() {
        let codec = Codec::with_mode(BufferPool::new(), CodecMode::Always);
        for raw in [compressible(100_000), incompressible(10_000), Vec::new()] {
            let mut wire = Vec::new();
            let n = codec.write_block(&mut wire, &raw).unwrap();
            assert_eq!(n as usize, wire.len());
            let back = codec
                .read_block(&mut Cursor::new(&wire), raw.len())
                .unwrap();
            assert_eq!(back.as_slice(), &raw[..]);

            let mut out = vec![0u8; raw.len()];
            codec
                .read_block_into(&mut Cursor::new(&wire), &mut out)
                .unwrap();
            assert_eq!(out, raw);
        }
    }

    #[test]
    fn oversized_enc_len_is_rejected() {
        let codec = Codec::new(BufferPool::new());
        let mut wire = Vec::new();
        put_u32(&mut wire, 100).unwrap(); // enc_len 100 > raw_len 10
        wire.extend_from_slice(&[0u8; 100]);
        assert!(codec.read_block(&mut Cursor::new(&wire), 10).is_err());
        let mut out = [0u8; 10];
        assert!(codec
            .read_block_into(&mut Cursor::new(&wire), &mut out)
            .is_err());
    }

    #[test]
    fn wrong_inflated_length_is_rejected() {
        let codec = Codec::with_mode(BufferPool::new(), CodecMode::Always);
        let raw = compressible(50_000);
        let mut wire = Vec::new();
        codec.write_block(&mut wire, &raw).unwrap();
        // Claim a larger raw length than the block inflates to.
        assert!(codec
            .read_block(&mut Cursor::new(&wire), raw.len() + 1)
            .is_err());
    }

    #[test]
    fn compressed_block_reuses_pooled_scratch() {
        let pool = BufferPool::new();
        let codec = Codec::with_mode(pool.clone(), CodecMode::Always);
        let raw = compressible(1 << 20);
        drop(codec.encode(&raw).unwrap()); // warm the scratch class
        let before = pool.stats();
        drop(codec.encode(&raw).unwrap());
        let after = pool.stats();
        assert_eq!(
            after.misses, before.misses,
            "second encode allocates nothing"
        );
        assert!(after.hits > before.hits);
    }

    #[test]
    fn entropy_probe_separates_random_from_structured() {
        assert!(sampled_entropy_bits(&incompressible(1 << 20)) > ENTROPY_BITS_MAX);
        assert!(sampled_entropy_bits(&compressible(1 << 20)) < 2.0);
        assert_eq!(sampled_entropy_bits(&[]), 0.0);
    }

    #[test]
    fn trial_ratio_tracks_compressibility() {
        assert!(trial_ratio(&compressible(1 << 20)) < 0.5);
        assert!(trial_ratio(&incompressible(1 << 20)) > SAMPLE_RATIO_MAX);
    }
}
