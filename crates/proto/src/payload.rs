//! Payload buffers for the data plane: [`Payload`] and the size-classed
//! [`BufferPool`] behind it.
//!
//! The paper's model (§V) makes end-to-end time `fixed + k·transfer(n)` —
//! bandwidth-bound — so every host-side copy or per-message allocation on
//! the memcpy path inflates exactly the term that dominates. The protocol
//! types therefore carry payloads as [`Payload`] rather than bare
//! `Vec<u8>`:
//!
//! * **Encode** never needs ownership: [`Request::write`] only borrows the
//!   bytes (`Payload` derefs to `[u8]`), and the client's synchronous H2D
//!   fast path skips `Request` construction entirely, writing the header
//!   and the caller's borrowed slice with one vectored write.
//! * **Decode** can recycle: [`Request::read_with_id_pooled`] and friends
//!   take an optional [`BufferPool`] and land payload bytes in a
//!   [`PooledBuf`] that returns to the pool on drop, so a steady-state
//!   memcpy loop allocates nothing after warm-up (asserted by the
//!   counting-allocator tests).
//!
//! ## Ownership rules
//!
//! A [`PooledBuf`] owns its bytes exclusively until dropped; dropping it
//! recycles the backing storage into its pool (bounded per size class —
//! overflow is simply freed). [`Payload::into_vec`] moves out of an owned
//! payload for free and copies out of a pooled one, so hot paths keep
//! payloads pooled and only cold, caller-facing edges materialize a `Vec`.
//!
//! The pool is metrics-visible: [`BufferPool::stats`] snapshots into
//! [`rcuda_obs::PoolStats`] (hit/miss/return/discard counters), letting the
//! observability layer report the recycle rate the zero-allocation property
//! depends on.
//!
//! [`Request::write`]: crate::Request::write
//! [`Request::read_with_id_pooled`]: crate::Request::read_with_id_pooled

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rcuda_obs::PoolStats;

/// Smallest size class: 2^6 = 64 bytes.
const MIN_SHIFT: u32 = 6;
/// Largest size class: 2^24 = 16 MiB. Larger buffers are allocated fresh
/// and freed on drop — a corrupted length prefix can therefore cost at most
/// one transient allocation, never permanently-retained pool memory.
const MAX_SHIFT: u32 = 24;
const NUM_CLASSES: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;

// The observability snapshot carries one occupancy slot per class; keep the
// two definitions from drifting apart.
const _: () = assert!(NUM_CLASSES == rcuda_obs::POOL_CLASS_COUNT);

/// Largest request the pool will serve from (and retain in) a size class.
pub const MAX_POOLED_BYTES: usize = 1 << MAX_SHIFT;

/// Default number of buffers retained per size class.
const DEFAULT_RETENTION: usize = 8;

/// Size class that can *serve* a request of `len` bytes (round up), or
/// `None` if the request is above the pooled range.
fn class_for_len(len: usize) -> Option<usize> {
    if len > MAX_POOLED_BYTES {
        return None;
    }
    let shift = len.max(1).next_power_of_two().trailing_zeros();
    Some(shift.max(MIN_SHIFT) as usize - MIN_SHIFT as usize)
}

/// Size class a buffer of capacity `cap` can be *returned* to (round down:
/// every buffer in class `i` is guaranteed to hold `2^(MIN_SHIFT + i)`
/// bytes), or `None` if the capacity is outside the pooled range.
fn class_for_capacity(cap: usize) -> Option<usize> {
    if !((1 << MIN_SHIFT)..=MAX_POOLED_BYTES).contains(&cap) {
        return None;
    }
    let shift = usize::BITS - 1 - cap.leading_zeros();
    Some(shift as usize - MIN_SHIFT as usize)
}

#[derive(Default)]
struct PoolInner {
    /// One free list per power-of-two size class; each `Vec` is
    /// pre-allocated to its retention bound so pushing a recycled buffer
    /// never itself allocates.
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    retention: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
    pooled: AtomicU64,
    pooled_bytes: AtomicU64,
}

/// A bounded, size-classed buffer pool for wire payloads.
///
/// Cloning is cheap and shares the pool. Thread-safe: the server worker and
/// the client runtime each keep one, and [`PooledBuf`]s may be dropped from
/// any thread.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new()
    }
}

impl BufferPool {
    /// A pool retaining the default number of buffers per size class.
    pub fn new() -> BufferPool {
        BufferPool::with_retention(DEFAULT_RETENTION)
    }

    /// A pool retaining at most `retention` buffers per size class.
    pub fn with_retention(retention: usize) -> BufferPool {
        let classes = (0..NUM_CLASSES)
            .map(|_| Mutex::new(Vec::with_capacity(retention)))
            .collect();
        BufferPool {
            inner: Arc::new(PoolInner {
                classes,
                retention,
                ..PoolInner::default()
            }),
        }
    }

    /// A zeroed buffer of exactly `len` bytes, recycled if the matching size
    /// class has one (no heap allocation), freshly allocated otherwise.
    pub fn get(&self, len: usize) -> PooledBuf {
        let mut buf = match class_for_len(len) {
            Some(idx) => match self.inner.classes[idx].lock().unwrap().pop() {
                Some(recycled) => {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    self.inner.pooled.fetch_sub(1, Ordering::Relaxed);
                    self.inner
                        .pooled_bytes
                        .fetch_sub(recycled.capacity() as u64, Ordering::Relaxed);
                    recycled
                }
                None => {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                    Vec::with_capacity(1 << (MIN_SHIFT as usize + idx))
                }
            },
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(len)
            }
        };
        // Within capacity by construction: resize is a memset, not a malloc.
        buf.clear();
        buf.resize(len, 0);
        PooledBuf {
            buf,
            pool: Arc::clone(&self.inner),
        }
    }

    /// A pooled copy of `data` (the one staging copy the deferred/batched
    /// encode path pays so the caller's slice need not outlive the window).
    pub fn copy_from(&self, data: &[u8]) -> PooledBuf {
        let mut pooled = self.get(data.len());
        pooled.buf.clear();
        pooled.buf.extend_from_slice(data);
        pooled
    }

    /// Snapshot the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let mut class_occupancy = [0u64; NUM_CLASSES];
        for (slot, class) in class_occupancy.iter_mut().zip(&self.inner.classes) {
            *slot = class.lock().unwrap().len() as u64;
        }
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            returns: self.inner.returns.load(Ordering::Relaxed),
            discards: self.inner.discards.load(Ordering::Relaxed),
            pooled: self.inner.pooled.load(Ordering::Relaxed),
            pooled_bytes: self.inner.pooled_bytes.load(Ordering::Relaxed),
            class_occupancy,
        }
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "BufferPool {{ pooled: {}, hits: {}, misses: {} }}",
            s.pooled, s.hits, s.misses
        )
    }
}

/// An exclusively owned byte buffer on loan from a [`BufferPool`]; dropping
/// it returns the backing storage to the pool (or frees it if the size
/// class is full).
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<PoolInner>,
}

impl PooledBuf {
    /// Detach the backing `Vec` from the pool (it will not be recycled).
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Shorten the buffer to `len` bytes (no-op if already shorter). The
    /// codec uses this to trim a worst-case-sized compression scratch down
    /// to the actual encoded length; capacity — and thus the size class the
    /// buffer recycles into — is unchanged.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        let cap = buf.capacity();
        if cap == 0 {
            return; // detached by into_vec (or zero-capacity to begin with)
        }
        match class_for_capacity(cap) {
            Some(idx) => {
                let mut class = self.pool.classes[idx].lock().unwrap();
                if class.len() < self.pool.retention {
                    buf.clear();
                    class.push(buf);
                    self.pool.returns.fetch_add(1, Ordering::Relaxed);
                    self.pool.pooled.fetch_add(1, Ordering::Relaxed);
                    self.pool
                        .pooled_bytes
                        .fetch_add(cap as u64, Ordering::Relaxed);
                } else {
                    self.pool.discards.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.pool.discards.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.buf.len())
    }
}

/// A wire payload: a plain owned `Vec` (cold paths, tests, legacy call
/// sites via `From<Vec<u8>>`), a pool-recycled buffer (hot decode paths),
/// or an LZ4-compressed pooled buffer produced by the [`crate::codec`]
/// encode stage.
///
/// The `Lz4` variant is **transient and encode-side only**: it exists
/// between `Codec::encode` and the vectored write that puts the bytes on
/// the wire, so `as_slice`/`len` expose the *encoded* bytes (that is what a
/// transport observes and charges for). Decode always inflates back to
/// `Owned`/`Pooled` before anything above the wire layer sees the payload —
/// dispatch, GPU code, and equality semantics never meet a compressed
/// variant.
///
/// Equality is byte-wise over `as_slice` — where the bytes live is an
/// implementation detail, so a round trip may legitimately come back in
/// another representation. Cloning a pooled or compressed payload
/// materializes an owned copy of its current bytes (cloning only happens
/// off the hot path).
pub enum Payload {
    Owned(Vec<u8>),
    Pooled(PooledBuf),
    /// LZ4-block-compressed bytes in a pooled scratch buffer, plus the
    /// length the payload inflates back to. `raw_len` is what the protocol
    /// accounts (Table I byte math is defined over logical payloads);
    /// `data.len()` is what travels.
    Lz4 {
        raw_len: u32,
        data: PooledBuf,
    },
}

impl Payload {
    /// The bytes as they would travel: raw for `Owned`/`Pooled`, the
    /// compressed block for `Lz4`.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(v) => v,
            Payload::Pooled(b) => b,
            Payload::Lz4 { data, .. } => data,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The *decompressed* length: `len()` for raw payloads, the carried
    /// `raw_len` for compressed ones. This is the length Table I-style
    /// accounting uses.
    pub fn raw_len(&self) -> usize {
        match self {
            Payload::Owned(v) => v.len(),
            Payload::Pooled(b) => b.len(),
            Payload::Lz4 { raw_len, .. } => *raw_len as usize,
        }
    }

    /// Materialize a `Vec` of the current bytes: free for owned payloads,
    /// one copy for pooled/compressed ones (the pooled buffer still
    /// recycles).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Payload::Owned(v) => v,
            Payload::Pooled(b) => b.to_vec(),
            Payload::Lz4 { data, .. } => data.to_vec(),
        }
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Owned(v)
    }
}

impl From<PooledBuf> for Payload {
    fn from(b: PooledBuf) -> Payload {
        Payload::Pooled(b)
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::Owned(Vec::new())
    }
}

impl Clone for Payload {
    fn clone(&self) -> Payload {
        Payload::Owned(self.as_slice().to_vec())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Owned(_) => write!(f, "Payload({} bytes, owned)", self.len()),
            Payload::Pooled(_) => write!(f, "Payload({} bytes, pooled)", self.len()),
            Payload::Lz4 { raw_len, data } => {
                write!(f, "Payload({} bytes lz4, {raw_len} raw)", data.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_round_up_serves_round_down_returns() {
        assert_eq!(class_for_len(0), Some(0));
        assert_eq!(class_for_len(1), Some(0));
        assert_eq!(class_for_len(64), Some(0));
        assert_eq!(class_for_len(65), Some(1));
        assert_eq!(class_for_len(4096), Some(6));
        assert_eq!(class_for_len(MAX_POOLED_BYTES), Some(NUM_CLASSES - 1));
        assert_eq!(class_for_len(MAX_POOLED_BYTES + 1), None);

        assert_eq!(class_for_capacity(63), None);
        assert_eq!(class_for_capacity(64), Some(0));
        assert_eq!(class_for_capacity(127), Some(0));
        assert_eq!(class_for_capacity(128), Some(1));
        assert_eq!(class_for_capacity(MAX_POOLED_BYTES), Some(NUM_CLASSES - 1));
        assert_eq!(class_for_capacity(2 * MAX_POOLED_BYTES), None);
    }

    #[test]
    fn get_returns_zeroed_buffer_of_requested_len() {
        let pool = BufferPool::new();
        let mut b = pool.get(100);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&x| x == 0));
        b[0] = 0xFF;
        drop(b);
        // Recycled buffer must come back zeroed, not with stale bytes.
        let b2 = pool.get(100);
        assert_eq!(b2.len(), 100);
        assert!(b2.iter().all(|&x| x == 0));
    }

    #[test]
    fn recycle_hit_after_drop() {
        let pool = BufferPool::new();
        let b = pool.get(4096);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.pooled, 1);
        let _b2 = pool.get(4000); // same class (4096)
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.pooled, 0);
        assert_eq!(s.pooled_bytes, 0);
    }

    #[test]
    fn retention_bound_discards_overflow() {
        let pool = BufferPool::with_retention(2);
        let bufs: Vec<_> = (0..4).map(|_| pool.get(128)).collect();
        drop(bufs);
        let s = pool.stats();
        assert_eq!(s.returns, 2);
        assert_eq!(s.discards, 2);
        assert_eq!(s.pooled, 2);
    }

    #[test]
    fn handout_exactly_at_max_pooled_bytes_is_pooled() {
        // MAX_POOLED_BYTES lands exactly on the top size class: the buffer
        // must recycle, not fall back to an owned Vec.
        let pool = BufferPool::new();
        let b = pool.get(MAX_POOLED_BYTES);
        assert_eq!(b.len(), MAX_POOLED_BYTES);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.returns, 1);
        assert_eq!(s.pooled, 1);
        assert_eq!(s.pooled_bytes, MAX_POOLED_BYTES as u64);
        assert_eq!(s.class_occupancy[NUM_CLASSES - 1], 1);
        let b2 = pool.get(MAX_POOLED_BYTES);
        assert_eq!(pool.stats().hits, 1, "served from the top class");
        drop(b2);
    }

    #[test]
    fn handout_one_byte_above_max_is_owned_vec_fallback() {
        // One byte past the pooled range: served fresh, never retained.
        let pool = BufferPool::new();
        let b = pool.get(MAX_POOLED_BYTES + 1);
        assert_eq!(b.len(), MAX_POOLED_BYTES + 1);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.returns, 0);
        assert_eq!(s.discards, 1);
        assert_eq!(s.pooled, 0);
        assert!(s.class_occupancy.iter().all(|&c| c == 0));
        // A second request must miss again — nothing was pooled.
        let _b2 = pool.get(MAX_POOLED_BYTES + 1);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn class_occupancy_tracks_per_class_holdings() {
        let pool = BufferPool::new();
        let small = pool.get(64); // class 0
        let mid = pool.get(4096); // class 6
        drop(small);
        drop(mid);
        let s = pool.stats();
        assert_eq!(s.class_occupancy[0], 1);
        assert_eq!(s.class_occupancy[6], 1);
        assert_eq!(s.class_occupancy.iter().sum::<u64>(), s.pooled);
    }

    #[test]
    fn oversize_requests_are_served_but_never_retained() {
        let pool = BufferPool::new();
        let b = pool.get(MAX_POOLED_BYTES + 1);
        assert_eq!(b.len(), MAX_POOLED_BYTES + 1);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.discards, 1);
        assert_eq!(s.pooled, 0);
    }

    #[test]
    fn copy_from_round_trips_bytes() {
        let pool = BufferPool::new();
        let b = pool.copy_from(&[1, 2, 3, 4, 5]);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn into_vec_detaches_without_poisoning_the_pool() {
        let pool = BufferPool::new();
        let v = pool.get(64).into_vec();
        assert_eq!(v.len(), 64);
        let s = pool.stats();
        assert_eq!(s.returns, 0);
        assert_eq!(s.pooled, 0);
    }

    #[test]
    fn payload_equality_is_bytewise_across_representations() {
        let pool = BufferPool::new();
        let owned: Payload = vec![9u8, 8, 7].into();
        let pooled: Payload = pool.copy_from(&[9, 8, 7]).into();
        assert_eq!(owned, pooled);
        assert_eq!(owned, vec![9u8, 8, 7]);
        assert_ne!(owned, vec![9u8, 8]);
    }

    #[test]
    fn payload_clone_materializes_owned() {
        let pool = BufferPool::new();
        let pooled: Payload = pool.copy_from(&[1, 2]).into();
        let cloned = pooled.clone();
        assert!(matches!(cloned, Payload::Owned(_)));
        assert_eq!(cloned, pooled);
    }

    #[test]
    fn lz4_variant_exposes_encoded_bytes_and_raw_len() {
        let pool = BufferPool::new();
        let p = Payload::Lz4 {
            raw_len: 10,
            data: pool.copy_from(&[1, 2, 3]),
        };
        assert_eq!(p.as_slice(), &[1, 2, 3], "slice is the encoded bytes");
        assert_eq!(p.len(), 3, "len is the on-wire length");
        assert_eq!(p.raw_len(), 10, "raw_len is the logical length");
        let cloned = p.clone();
        assert!(matches!(cloned, Payload::Owned(_)));
        assert_eq!(cloned.as_slice(), &[1, 2, 3]);
        assert_eq!(format!("{p:?}"), "Payload(3 bytes lz4, 10 raw)");
    }

    #[test]
    fn pool_is_shared_across_clones_and_threads() {
        let pool = BufferPool::new();
        let handle = pool.clone();
        let t = std::thread::spawn(move || {
            let b = handle.get(256);
            drop(b);
        });
        t.join().unwrap();
        assert_eq!(pool.stats().pooled, 1);
        assert_eq!(pool.get(256).len(), 256);
        assert_eq!(pool.stats().hits, 1);
    }
}
