//! Incremental frame decode for nonblocking servers.
//!
//! The wire protocol has no framing (§III: every field is either fixed-size
//! or length-prefixed), so a blocking reader simply pulls fields off the
//! socket as it parses. A readiness-driven server cannot: a shard must never
//! sleep inside a parse because one peer paused mid-message. This module adds
//! the missing half: [`scan_frame`]/[`scan_hello`] compute, from a buffered
//! prefix alone, either the **exact byte length** of the next message or a
//! lower bound on how many bytes are still needed — and [`StreamDecoder`]
//! wraps that into a park-and-resume state machine. A partially-arrived
//! frame costs `Ok(None)` and the shard moves on; once the bytes are in, the
//! established blocking parsers ([`Frame::read_pooled`],
//! [`SessionHello::read`]) run to guaranteed completion over the buffer.
//!
//! The scanners validate exactly as much as the blocking readers would at
//! the same depth — unknown selectors, handshake selectors inside a session,
//! nested batches, and bad memcpy directions are rejected *before* their
//! bodies arrive, so a hostile or corrupt peer cannot park a shard behind an
//! impossible length.

use std::io::{self, Cursor};

use crate::batch::Frame;
use crate::codec::{Codec, CodecHello};
use crate::handshake::SessionHello;
use crate::ids::{FunctionId, MemcpyKind};
use crate::launch::LAUNCH_FIXED_BYTES;
use crate::mux::MuxHello;
use crate::payload::BufferPool;
use crate::request::wire_carries_payload;

/// Upper bound on a single decoded message. Every length field on the wire
/// is a u32, so a corrupt or hostile peer can claim ~4 GiB; no real message
/// approaches this cap, so anything above it is rejected immediately instead
/// of parking the connection behind bytes that will never come. (The `Busy`
/// and handshake selectors read as module lengths are all ≥ 4 GiB − 3 and
/// trip this cap by construction.)
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Outcome of scanning a buffered prefix for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scan {
    /// At least this many total bytes must be buffered before the message
    /// can complete. This is a lower bound — rescanning with more bytes may
    /// raise it (e.g. once a payload length field arrives).
    Need(usize),
    /// The next message occupies exactly this many buffered bytes.
    Complete(usize),
}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("bounds checked"))
}

fn invalid(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn check_cap(total: usize) -> io::Result<usize> {
    if total > MAX_FRAME_BYTES {
        return Err(invalid("frame length exceeds the sanity cap"));
    }
    Ok(total)
}

/// Scan one request starting at `off`: selector + body, exactly the bytes
/// [`crate::Request::read`] would consume — or, when `codec` is set, the
/// bytes [`crate::Request::read_with_id_codec`] would (bulk payloads gain a
/// 4-byte `enc_len` prefix and ship `enc_len` bytes). Returned lengths are
/// relative to `off`. Rejections mirror the blocking readers so the
/// nonblocking path fails on the same inputs.
fn scan_request_at(buf: &[u8], off: usize, codec: bool) -> io::Result<Scan> {
    let avail = buf.len() - off;
    if avail < 4 {
        return Ok(Scan::Need(4));
    }
    let id = FunctionId::from_u32(u32_at(buf, off))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let fixed = LAUNCH_FIXED_BYTES as usize;
    let scan = match id {
        FunctionId::Batch => return Err(invalid("batch frames cannot appear inside a batch")),
        FunctionId::Hello
        | FunctionId::Reconnect
        | FunctionId::MuxHello
        | FunctionId::Migrate
        | FunctionId::Codec => {
            return Err(invalid(
                "handshake selectors are only valid as the first post-connect message",
            ))
        }
        FunctionId::Busy => {
            return Err(invalid(
                "Busy is a server-to-client hello marker, never a request",
            ))
        }
        FunctionId::ThreadSynchronize
        | FunctionId::DeviceProps
        | FunctionId::StreamCreate
        | FunctionId::EventCreate
        | FunctionId::Quit => Scan::Complete(4),
        FunctionId::Malloc
        | FunctionId::Free
        | FunctionId::StreamSynchronize
        | FunctionId::StreamDestroy
        | FunctionId::EventSynchronize
        | FunctionId::EventDestroy => fixed_body(avail, 4),
        FunctionId::EventRecord | FunctionId::EventElapsed => fixed_body(avail, 8),
        FunctionId::Memset => fixed_body(avail, 12),
        FunctionId::Memcpy => {
            // dst, src, size, kind — payload follows only when the data
            // flows client → server.
            if avail < 20 {
                return Ok(Scan::Need(20));
            }
            let size = u32_at(buf, off + 12) as usize;
            let kind = MemcpyKind::from_u32(u32_at(buf, off + 16))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if !wire_carries_payload(kind) {
                sized(avail, 20)
            } else if codec {
                scan_block(buf, off, avail, 20, size)?
            } else {
                sized(avail, check_cap(20 + size)?)
            }
        }
        FunctionId::MemcpyAsync => {
            // dst, src, size, kind, stream — then the optional payload.
            if avail < 24 {
                return Ok(Scan::Need(24));
            }
            let size = u32_at(buf, off + 12) as usize;
            let kind = MemcpyKind::from_u32(u32_at(buf, off + 16))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if !wire_carries_payload(kind) {
                sized(avail, 24)
            } else if codec {
                scan_block(buf, off, avail, 24, size)?
            } else {
                sized(avail, check_cap(24 + size)?)
            }
        }
        FunctionId::Launch => {
            // selector + fixed config + region length + region.
            if avail < 4 + fixed + 4 {
                return Ok(Scan::Need(4 + fixed + 4));
            }
            let region_len = u32_at(buf, off + 4 + fixed) as usize;
            if codec {
                scan_block(buf, off, avail, 4 + fixed + 4, region_len)?
            } else {
                sized(avail, check_cap(4 + fixed + 4 + region_len)?)
            }
        }
    };
    Ok(scan)
}

/// Scan a codec-framed payload block: a 4-byte `enc_len` word at
/// `off + head`, then `enc_len` payload bytes. `enc_len > raw_len` is
/// rejected here — exactly where [`Codec::read_block`] would — so a corrupt
/// prefix cannot park a shard behind bytes that will never pass the parse.
fn scan_block(
    buf: &[u8],
    off: usize,
    avail: usize,
    head: usize,
    raw_len: usize,
) -> io::Result<Scan> {
    if avail < head + 4 {
        return Ok(Scan::Need(head + 4));
    }
    let enc_len = u32_at(buf, off + head) as usize;
    if enc_len > raw_len {
        return Err(invalid("codec block claims more encoded bytes than raw"));
    }
    Ok(sized(avail, check_cap(head + 4 + enc_len)?))
}

fn fixed_body(avail: usize, body: usize) -> Scan {
    sized(avail, 4 + body)
}

fn sized(avail: usize, total: usize) -> Scan {
    if avail < total {
        Scan::Need(total)
    } else {
        Scan::Complete(total)
    }
}

/// Scan a buffered prefix for one post-handshake frame — a single request or
/// a whole batch, exactly the bytes [`Frame::read_pooled`] would consume.
pub fn scan_frame(buf: &[u8]) -> io::Result<Scan> {
    scan_frame_codec(buf, false)
}

/// [`scan_frame`] with the wire framing selected: when `codec` is set the
/// frame is measured as [`Frame::read_codec`] would consume it (bulk
/// payloads carry a 4-byte `enc_len` prefix).
pub fn scan_frame_codec(buf: &[u8], codec: bool) -> io::Result<Scan> {
    if buf.len() < 4 {
        return Ok(Scan::Need(4));
    }
    if u32_at(buf, 0) != FunctionId::Batch.as_u32() {
        return scan_request_at(buf, 0, codec);
    }
    // Batch: selector + count, then each element encoded as it would be on
    // its own. The walk revalidates from the start on every call; batches
    // are small (the client caps them at pipeline depth), so the rescan is
    // cheaper than carrying resumable per-element state.
    if buf.len() < 8 {
        return Ok(Scan::Need(8));
    }
    let count = u32_at(buf, 4) as usize;
    let mut off = 8;
    for _ in 0..count {
        match scan_request_at(buf, off, codec)? {
            Scan::Need(n) => return Ok(Scan::Need(check_cap(off + n)?)),
            Scan::Complete(n) => off = check_cap(off + n)?,
        }
    }
    Ok(Scan::Complete(off))
}

/// Scan a buffered prefix for the first client → server message of a
/// session, in any of the three forms [`SessionHello::read`] accepts. The
/// paper's positional form means the first word *is* a length: garbage here
/// (including a reflected `Busy` marker) implies a multi-GiB module and is
/// rejected by the sanity cap rather than parked forever.
pub fn scan_hello(buf: &[u8]) -> io::Result<Scan> {
    if buf.len() < 4 {
        return Ok(Scan::Need(4));
    }
    let first = u32_at(buf, 0);
    let scan = match FunctionId::from_u32(first) {
        Ok(FunctionId::Hello) => {
            // selector + token + module length + module.
            if buf.len() < 16 {
                return Ok(Scan::Need(16));
            }
            let len = u32_at(buf, 12) as usize;
            sized(buf.len(), check_cap(16 + len)?)
        }
        Ok(FunctionId::Reconnect) => sized(buf.len(), 12),
        Ok(FunctionId::Migrate) => {
            // selector + session + snapshot length + snapshot — the same
            // shape as `Hello`, but shipped daemon → daemon.
            if buf.len() < 16 {
                return Ok(Scan::Need(16));
            }
            let len = u32_at(buf, 12) as usize;
            sized(buf.len(), check_cap(16 + len)?)
        }
        _ => sized(buf.len(), check_cap(4 + first as usize)?),
    };
    Ok(scan)
}

/// The first client → server message, in *all* the forms a daemon accepts:
/// the three [`SessionHello`] shapes, a [`MuxHello`] asking to upgrade the
/// connection to the multiplexed framing layer, or a [`CodecHello`]
/// accepting the advertised payload-compression capabilities (the session
/// hello proper follows in the same direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientHello {
    /// A plain (single-stream) session opening.
    Session(SessionHello),
    /// A mux upgrade request; the secure handshake continues from here.
    Mux(MuxHello),
    /// Codec capability acceptance; carries the capability bits the client
    /// turned on. The connection stays in the hello phase — a `Session` or
    /// `Mux` message follows.
    Codec(u32),
}

/// Scan a buffered prefix for the first client → server message, accepting
/// the mux-upgrade and codec selectors in addition to everything
/// [`scan_hello`] takes.
pub fn scan_client_hello(buf: &[u8]) -> io::Result<Scan> {
    if buf.len() < 4 {
        return Ok(Scan::Need(4));
    }
    if u32_at(buf, 0) == FunctionId::MuxHello.as_u32() {
        return Ok(sized(buf.len(), 4 + MuxHello::BODY_BYTES));
    }
    if u32_at(buf, 0) == FunctionId::Codec.as_u32() {
        return Ok(sized(buf.len(), CodecHello::WIRE_BYTES));
    }
    scan_hello(buf)
}

/// Park-and-resume decoder for one connection's inbound byte stream.
///
/// A shard feeds raw bytes in whenever the socket is readable
/// ([`StreamDecoder::space`]/[`StreamDecoder::commit`], sized for
/// `Transport::try_read`) and polls for complete messages
/// ([`StreamDecoder::poll_hello`], [`StreamDecoder::poll_frame`]). `Ok(None)`
/// means "parked: not enough bytes yet" — never an error, never a block.
///
/// Steady state allocates nothing: the internal buffer is reused across
/// messages (consumed prefixes are compacted, not reallocated) and payload
/// bytes land in the caller's [`BufferPool`]. The buffer shrinks back only
/// after an outsized message, so one 100 MiB transfer does not pin 100 MiB
/// per connection forever.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` holding received-but-unparsed data. `buf.len()` is the
    /// high-water mark (kept long so `space` never re-zeroes).
    valid: usize,
}

/// Keep at most this much buffer capacity across messages; anything larger
/// was an outsized transfer and is released once drained.
const SHRINK_THRESHOLD: usize = 2 * 1024 * 1024;

impl StreamDecoder {
    pub fn new() -> StreamDecoder {
        StreamDecoder::default()
    }

    /// Bytes buffered but not yet consumed by a returned message.
    pub fn buffered(&self) -> usize {
        self.valid
    }

    /// Borrow `max` writable bytes to read into. Always pair with
    /// [`StreamDecoder::commit`] (commit 0 on `WouldBlock`).
    pub fn space(&mut self, max: usize) -> &mut [u8] {
        if self.buf.len() < self.valid + max {
            self.buf.resize(self.valid + max, 0);
        }
        &mut self.buf[self.valid..self.valid + max]
    }

    /// Mark `n` bytes of the last [`StreamDecoder::space`] slice as received.
    pub fn commit(&mut self, n: usize) {
        debug_assert!(self.valid + n <= self.buf.len());
        self.valid += n;
    }

    /// Append a whole chunk (convenience for in-process feeds and tests).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.space(bytes.len())[..bytes.len()].copy_from_slice(bytes);
        self.commit(bytes.len());
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.valid);
        if n < self.valid {
            self.buf.copy_within(n..self.valid, 0);
        }
        self.valid -= n;
        if self.valid == 0 && self.buf.capacity() > SHRINK_THRESHOLD {
            self.buf.clear();
            self.buf.shrink_to(64 * 1024);
        }
    }

    /// Try to complete the session-opening handshake message.
    pub fn poll_hello(&mut self) -> io::Result<Option<SessionHello>> {
        match scan_hello(&self.buf[..self.valid])? {
            Scan::Need(_) => Ok(None),
            Scan::Complete(n) => {
                let mut cur = Cursor::new(&self.buf[..n]);
                let hello = SessionHello::read(&mut cur)?;
                debug_assert_eq!(cur.position() as usize, n, "scan length matches parse");
                self.consume(n);
                Ok(Some(hello))
            }
        }
    }

    /// Try to complete the first client message, accepting a mux upgrade
    /// request in addition to the session-hello forms.
    pub fn poll_client_hello(&mut self) -> io::Result<Option<ClientHello>> {
        match scan_client_hello(&self.buf[..self.valid])? {
            Scan::Need(_) => Ok(None),
            Scan::Complete(n) => {
                let mut cur = Cursor::new(&self.buf[..n]);
                let first = crate::wire::get_u32(&mut cur)?;
                let hello = if first == FunctionId::MuxHello.as_u32() {
                    ClientHello::Mux(MuxHello::read_body(&mut cur)?)
                } else if first == FunctionId::Codec.as_u32() {
                    ClientHello::Codec(CodecHello::read_body(&mut cur)?.caps)
                } else {
                    // Re-parse from the top: SessionHello owns the first word.
                    cur.set_position(0);
                    ClientHello::Session(SessionHello::read(&mut cur)?)
                };
                debug_assert_eq!(cur.position() as usize, n, "scan length matches parse");
                self.consume(n);
                Ok(Some(hello))
            }
        }
    }

    /// Drain every buffered byte (used when a connection upgrades to the
    /// mux framing layer and a different reader takes over the transport —
    /// any bytes the decoder read ahead must move with it).
    pub fn take_buffered(&mut self) -> Vec<u8> {
        let out = self.buf[..self.valid].to_vec();
        self.consume(self.valid);
        out
    }

    /// Try to complete the next post-handshake frame, landing payloads in
    /// `pool` when one is given.
    pub fn poll_frame(&mut self, pool: Option<&BufferPool>) -> io::Result<Option<Frame>> {
        self.poll_frame_codec(pool, None)
    }

    /// [`StreamDecoder::poll_frame`] on a codec-negotiated connection: bulk
    /// payloads are scanned under the `enc_len`-prefixed framing and inflated
    /// through `codec` into its pool. With `codec = None` this is exactly
    /// `poll_frame`.
    pub fn poll_frame_codec(
        &mut self,
        pool: Option<&BufferPool>,
        codec: Option<&Codec>,
    ) -> io::Result<Option<Frame>> {
        match scan_frame_codec(&self.buf[..self.valid], codec.is_some())? {
            Scan::Need(_) => Ok(None),
            Scan::Complete(n) => {
                let mut cur = Cursor::new(&self.buf[..n]);
                let frame = Frame::read_codec(&mut cur, pool, codec)?;
                debug_assert_eq!(cur.position() as usize, n, "scan length matches parse");
                self.consume(n);
                Ok(Some(frame))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;
    use crate::launch::LaunchConfig;
    use crate::request::Request;
    use rcuda_core::DevicePtr;

    fn all_variants() -> Vec<Request> {
        vec![
            Request::Malloc { size: 4096 },
            Request::Free {
                ptr: DevicePtr::new(0x40),
            },
            Request::Memcpy {
                dst: 1,
                src: 2,
                size: 5,
                kind: MemcpyKind::HostToDevice,
                data: Some(vec![1, 2, 3, 4, 5].into()),
            },
            Request::Memcpy {
                dst: 1,
                src: 2,
                size: 64,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
            Request::launch("kern", &[9u8; 16], LaunchConfig::default()),
            Request::ThreadSynchronize,
            Request::DeviceProps,
            Request::StreamCreate,
            Request::StreamSynchronize { stream: 7 },
            Request::StreamDestroy { stream: 7 },
            Request::MemcpyAsync {
                dst: 3,
                src: 4,
                size: 2,
                kind: MemcpyKind::HostToHost,
                stream: 1,
                data: Some(vec![8, 9].into()),
            },
            Request::MemcpyAsync {
                dst: 3,
                src: 4,
                size: 128,
                kind: MemcpyKind::DeviceToHost,
                stream: 1,
                data: None,
            },
            Request::Memset {
                dst: 1,
                value: 0xAB,
                size: 32,
            },
            Request::EventCreate,
            Request::EventRecord {
                event: 1,
                stream: 2,
            },
            Request::EventSynchronize { event: 1 },
            Request::EventElapsed { start: 1, end: 2 },
            Request::EventDestroy { event: 1 },
            Request::Quit,
        ]
    }

    /// Feeding one byte at a time must yield None until the final byte and
    /// exactly the written frame afterwards — for every variant.
    #[test]
    fn every_variant_decodes_byte_at_a_time() {
        for req in all_variants() {
            let mut wire = Vec::new();
            req.write(&mut wire).unwrap();
            let mut dec = StreamDecoder::new();
            for (i, b) in wire.iter().enumerate() {
                dec.feed(std::slice::from_ref(b));
                let got = dec.poll_frame(None).unwrap();
                if i + 1 < wire.len() {
                    assert!(got.is_none(), "{req:?}: complete after {} bytes", i + 1);
                } else {
                    assert_eq!(got, Some(Frame::Single(req.clone())), "{req:?}");
                }
            }
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn batch_decodes_incrementally_and_matches_blocking_parse() {
        let batch = Batch::new(all_variants()).unwrap();
        let mut wire = Vec::new();
        batch.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        // Feed in ragged chunks; only the final chunk completes the frame.
        let mut fed = 0;
        for chunk in wire.chunks(7) {
            fed += chunk.len();
            dec.feed(chunk);
            let got = dec.poll_frame(None).unwrap();
            if fed < wire.len() {
                assert!(
                    got.is_none(),
                    "complete after {fed} of {} bytes",
                    wire.len()
                );
            } else {
                assert_eq!(got, Some(Frame::Batch(batch.clone())));
            }
        }
    }

    #[test]
    fn back_to_back_frames_drain_in_order() {
        let reqs = [
            Request::Malloc { size: 1 },
            Request::Memcpy {
                dst: 0,
                src: 0,
                size: 3,
                kind: MemcpyKind::HostToDevice,
                data: Some(vec![7, 7, 7].into()),
            },
            Request::Quit,
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            r.write(&mut wire).unwrap();
        }
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        for r in &reqs {
            assert_eq!(
                dec.poll_frame(None).unwrap(),
                Some(Frame::Single(r.clone()))
            );
        }
        assert_eq!(dec.poll_frame(None).unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn all_three_hello_forms_decode_incrementally() {
        let hellos = [
            SessionHello::Fresh {
                module: vec![1, 2, 3],
            },
            SessionHello::Resumable {
                session: 0xDEAD_BEEF,
                module: vec![9; 40],
            },
            SessionHello::Reconnect { session: 42 },
            SessionHello::Migrate {
                session: 7,
                snapshot: vec![0xAA; 24],
            },
        ];
        for hello in hellos {
            let mut wire = Vec::new();
            hello.write(&mut wire).unwrap();
            let mut dec = StreamDecoder::new();
            for (i, b) in wire.iter().enumerate() {
                dec.feed(std::slice::from_ref(b));
                let got = dec.poll_hello().unwrap();
                if i + 1 < wire.len() {
                    assert!(got.is_none());
                } else {
                    assert_eq!(got, Some(hello.clone()));
                }
            }
        }
    }

    #[test]
    fn client_hello_accepts_both_session_and_mux_forms() {
        // A mux upgrade request, fed byte-at-a-time.
        let hello = crate::mux::MuxHello {
            version: crate::mux::MUX_VERSION,
            flags: crate::mux::FLAG_CIPHER,
            client_nonce: [3u8; 16],
        };
        let mut wire = Vec::new();
        hello.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        for (i, b) in wire.iter().enumerate() {
            dec.feed(std::slice::from_ref(b));
            let got = dec.poll_client_hello().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none());
            } else {
                assert_eq!(got, Some(ClientHello::Mux(hello)));
            }
        }
        // A legacy session hello still routes through the same poll.
        let legacy = SessionHello::Fresh { module: vec![7; 5] };
        let mut wire = Vec::new();
        legacy.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.poll_client_hello().unwrap(),
            Some(ClientHello::Session(legacy))
        );
    }

    #[test]
    fn take_buffered_drains_read_ahead_bytes() {
        let hello = crate::mux::MuxHello {
            version: 1,
            flags: 0,
            client_nonce: [0u8; 16],
        };
        let mut wire = Vec::new();
        hello.write(&mut wire).unwrap();
        wire.extend_from_slice(b"leftover");
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert!(dec.poll_client_hello().unwrap().is_some());
        assert_eq!(dec.take_buffered(), b"leftover");
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn hello_then_frames_share_one_decoder() {
        // The handshake and the session stream arrive on the same socket;
        // the decoder must hand over cleanly between poll modes.
        let hello = SessionHello::Fresh { module: vec![5; 8] };
        let mut wire = Vec::new();
        hello.write(&mut wire).unwrap();
        Request::Malloc { size: 64 }.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.poll_hello().unwrap(), Some(hello));
        assert_eq!(
            dec.poll_frame(None).unwrap(),
            Some(Frame::Single(Request::Malloc { size: 64 }))
        );
    }

    #[test]
    fn unknown_selector_fails_fast() {
        let mut dec = StreamDecoder::new();
        dec.feed(&9999u32.to_le_bytes());
        assert!(dec.poll_frame(None).is_err());
    }

    #[test]
    fn bad_memcpy_kind_fails_before_its_payload_arrives() {
        let mut wire = Vec::new();
        for v in [FunctionId::Memcpy.as_u32(), 0, 0, 1 << 20, 77] {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        // The claimed 1 MiB payload never arrives — the bad direction is
        // enough to kill the connection immediately.
        assert!(dec.poll_frame(None).is_err());
    }

    #[test]
    fn nested_batch_is_rejected() {
        let mut wire = Vec::new();
        for v in [FunctionId::Batch.as_u32(), 1, FunctionId::Batch.as_u32()] {
            wire.extend_from_slice(&v.to_le_bytes());
        }
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert!(dec.poll_frame(None).is_err());
    }

    #[test]
    fn absurd_lengths_trip_the_sanity_cap() {
        // A handshake first-word that is really a reflected Busy marker
        // implies a ~4 GiB module: reject, don't park.
        let mut dec = StreamDecoder::new();
        dec.feed(&FunctionId::Busy.as_u32().to_le_bytes());
        assert!(dec.poll_hello().is_err());

        // A launch claiming a region larger than the cap.
        let mut wire = Vec::new();
        wire.extend_from_slice(&FunctionId::Launch.as_u32().to_le_bytes());
        wire.extend_from_slice(&[0u8; LAUNCH_FIXED_BYTES as usize]);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert!(dec.poll_frame(None).is_err());
    }

    #[test]
    fn handshake_selectors_inside_a_session_are_rejected() {
        for sel in [
            FunctionId::Hello,
            FunctionId::Reconnect,
            FunctionId::Busy,
            FunctionId::Migrate,
        ] {
            let mut dec = StreamDecoder::new();
            dec.feed(&sel.as_u32().to_le_bytes());
            assert!(dec.poll_frame(None).is_err(), "{sel:?}");
        }
    }

    #[test]
    fn pooled_payloads_recycle_buffers() {
        let pool = BufferPool::new();
        let req = Request::Memcpy {
            dst: 1,
            src: 0,
            size: 4096,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![0xCD; 4096].into()),
        };
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        for _ in 0..4 {
            dec.feed(&wire);
            let frame = dec.poll_frame(Some(&pool)).unwrap().unwrap();
            drop(frame); // payload buffer returns to the pool
        }
        let stats = pool.stats();
        assert!(stats.hits >= 3, "reuse after the first miss: {stats:?}");
    }

    #[test]
    fn space_commit_matches_feed() {
        let req = Request::Malloc { size: 9 };
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        let dst = dec.space(wire.len() + 32);
        dst[..wire.len()].copy_from_slice(&wire);
        dec.commit(wire.len());
        assert_eq!(dec.poll_frame(None).unwrap(), Some(Frame::Single(req)));
        // An uncommitted space borrow leaves no residue.
        let _ = dec.space(64);
        dec.commit(0);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn codec_framed_frames_parse_incrementally() {
        use crate::codec::{CodecMode, CAP_LZ4};

        let pool = BufferPool::new();
        let codec = Codec::with_mode(pool.clone(), CodecMode::Always);
        let req = Request::Memcpy {
            dst: 1,
            src: 0,
            size: 64 * 1024,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![0xABu8; 64 * 1024].into()),
        };
        let mut wire = Vec::new();
        req.write_codec(&mut wire, Some(&codec)).unwrap();
        assert!(
            wire.len() < 24 + 64 * 1024,
            "constant payload compressed on the wire"
        );

        // Legacy scanning must not be fooled by the shorter framing…
        let mut legacy = StreamDecoder::new();
        legacy.feed(&wire);
        assert_eq!(legacy.poll_frame(Some(&pool)).unwrap(), None);

        // …and the codec-aware decoder parses it incrementally.
        let mut dec = StreamDecoder::new();
        for chunk in wire.chunks(7) {
            assert_eq!(
                dec.poll_frame_codec(Some(&pool), Some(&codec)).unwrap(),
                None
            );
            dec.feed(chunk);
        }
        let frame = dec.poll_frame_codec(Some(&pool), Some(&codec)).unwrap();
        assert_eq!(frame, Some(Frame::Single(req)));

        // The codec hello is accepted before the session hello.
        let mut hello_wire = Vec::new();
        crate::codec::CodecHello { caps: CAP_LZ4 }
            .write(&mut hello_wire)
            .unwrap();
        let mut dec = StreamDecoder::new();
        dec.feed(&hello_wire);
        assert_eq!(
            dec.poll_client_hello().unwrap(),
            Some(ClientHello::Codec(CAP_LZ4))
        );
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn codec_block_claiming_more_than_raw_is_rejected() {
        let pool = BufferPool::new();
        let codec = Codec::new(pool.clone());
        let mut wire = Vec::new();
        wire.extend_from_slice(&FunctionId::Memcpy.as_u32().to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes()); // dst
        wire.extend_from_slice(&0u32.to_le_bytes()); // src
        wire.extend_from_slice(&64u32.to_le_bytes()); // raw size
        wire.extend_from_slice(&(MemcpyKind::HostToDevice as u32).to_le_bytes());
        wire.extend_from_slice(&65u32.to_le_bytes()); // enc_len > raw: malformed
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert!(dec.poll_frame_codec(Some(&pool), Some(&codec)).is_err());
    }

    #[test]
    fn oversized_message_buffer_is_released_after_drain() {
        let size = 3 * 1024 * 1024u32;
        let req = Request::Memcpy {
            dst: 1,
            src: 0,
            size,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![0u8; size as usize].into()),
        };
        let mut wire = Vec::new();
        req.write(&mut wire).unwrap();
        let mut dec = StreamDecoder::new();
        dec.feed(&wire);
        assert!(dec.poll_frame(None).unwrap().is_some());
        assert!(
            dec.buf.capacity() <= SHRINK_THRESHOLD,
            "buffer shrank back after an outsized frame"
        );
    }
}
