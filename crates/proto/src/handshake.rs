//! Session-establishment messages: the server's 8-byte hello push and the
//! first client → server message that follows it.
//!
//! The paper's protocol identifies the initialization message *positionally*
//! (no selector — the first word is the module length). The fault-tolerance
//! extension adds two selector-carrying handshakes that a server can
//! distinguish from a module length because their values
//! ([`FunctionId::Hello`], [`FunctionId::Reconnect`]) are impossible module
//! sizes (≥ 4 GiB − 3):
//!
//! * **Hello** — a fresh session that wants to be resumable announces a
//!   64-bit session token before its module upload. If the connection later
//!   dies without an orderly Quit, the server parks the session's GPU
//!   context under that token.
//! * **Reconnect** — a returning client presents its token. The server
//!   either resumes the parked context (reply code 0) or cleanly rejects
//!   the resume (`cudaErrorInitializationError`) when nothing is parked —
//!   never a hang, never a protocol desync.
//!
//! The server's reply to either handshake is a single 4-byte result code,
//! exactly like the paper's initialization acknowledgement, so the exchange
//! costs one round trip.

//!
//! The overload extension reuses the same trick in the *server → client*
//! direction: the daemon's very first message has always been the fixed
//! 8-byte compute-capability push, and [`ServerHello`] overlays it. An
//! admitted connection receives the two capability words unchanged (legacy
//! clients parse the bytes exactly as before); a shed connection receives
//! the [`FunctionId::Busy`] selector — an impossible capability major —
//! followed by a retry hint in milliseconds, then the server closes the
//! connection. A legacy client still consumes a well-formed 8-byte frame
//! and then observes a clean EOF instead of a protocol desync.

use std::io::{self, Read, Write};

use rcuda_core::{CudaError, CudaResult};

use crate::ids::FunctionId;
use crate::wire::{get_bytes, get_u32, get_u64, put_u32, put_u64};

/// The server's first message on every connection: 8 bytes, either the
/// device's compute capability (the paper's Fig. 2 push, connection
/// admitted) or a `Busy` load-shed marker with a retry hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerHello {
    /// Admitted: the device's compute capability `(major, minor)`.
    Ready { major: u32, minor: u32 },
    /// Shed: the daemon is over its admission limits; try again after
    /// `retry_after_ms` milliseconds. The server closes the connection
    /// right after pushing this frame.
    Busy { retry_after_ms: u32 },
}

impl ServerHello {
    /// Byte count of the frame on the wire (always 8).
    pub const WIRE_BYTES: usize = 8;

    /// Encode as the 8-byte wire frame (two LE u32 words).
    pub fn to_wire(self) -> [u8; Self::WIRE_BYTES] {
        let (a, b) = match self {
            ServerHello::Ready { major, minor } => (major, minor),
            ServerHello::Busy { retry_after_ms } => (FunctionId::Busy.as_u32(), retry_after_ms),
        };
        let mut buf = [0u8; Self::WIRE_BYTES];
        buf[..4].copy_from_slice(&a.to_le_bytes());
        buf[4..].copy_from_slice(&b.to_le_bytes());
        buf
    }

    /// Decode the 8-byte wire frame. A first word equal to the `Busy`
    /// selector — impossible as a compute-capability major — marks a shed
    /// connection; anything else is the capability push.
    pub fn from_wire(buf: [u8; Self::WIRE_BYTES]) -> ServerHello {
        let a = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        let b = u32::from_le_bytes(buf[4..].try_into().expect("4 bytes"));
        if a == FunctionId::Busy.as_u32() {
            ServerHello::Busy { retry_after_ms: b }
        } else {
            ServerHello::Ready { major: a, minor: b }
        }
    }

    /// Write the frame.
    pub fn write<W: Write>(self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_wire())
    }

    /// Read the frame.
    pub fn read<R: Read>(r: &mut R) -> io::Result<ServerHello> {
        let mut buf = [0u8; Self::WIRE_BYTES];
        r.read_exact(&mut buf)?;
        Ok(ServerHello::from_wire(buf))
    }
}

/// Extra bytes a [`SessionHello::Resumable`] handshake sends compared to the
/// paper's bare module upload: the 4-byte `Hello` selector + 8-byte token.
pub const HELLO_OVERHEAD_BYTES: u64 = 12;

/// The first client → server message of a session, in all three forms the
/// server accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionHello {
    /// The paper's positional initialization: module length + module image.
    Fresh { module: Vec<u8> },
    /// A resumable initialization: `Hello` selector, session token, then the
    /// module exactly as in `Fresh`.
    Resumable { session: u64, module: Vec<u8> },
    /// A returning session: `Reconnect` selector + session token. No module
    /// travels — the parked server context already holds it.
    Reconnect { session: u64 },
    /// Daemon → daemon live migration: `Migrate` selector, session token,
    /// and an opaque context-snapshot blob (encoded by `rcuda-gpu`; the
    /// protocol layer does not interpret it). The receiving daemon restores
    /// the context and parks it under the token, so the client's next
    /// `Reconnect` lands transparently.
    Migrate { session: u64, snapshot: Vec<u8> },
}

impl SessionHello {
    /// Exact number of bytes [`SessionHello::write`] puts on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            SessionHello::Fresh { module } => 4 + module.len() as u64,
            SessionHello::Resumable { module, .. } => {
                HELLO_OVERHEAD_BYTES + 4 + module.len() as u64
            }
            SessionHello::Reconnect { .. } => 12,
            SessionHello::Migrate { snapshot, .. } => {
                HELLO_OVERHEAD_BYTES + 4 + snapshot.len() as u64
            }
        }
    }

    /// Serialize onto the wire.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            SessionHello::Fresh { module } => {
                put_u32(w, module.len() as u32)?;
                w.write_all(module)
            }
            SessionHello::Resumable { session, module } => {
                put_u32(w, FunctionId::Hello.as_u32())?;
                put_u64(w, *session)?;
                put_u32(w, module.len() as u32)?;
                w.write_all(module)
            }
            SessionHello::Reconnect { session } => {
                put_u32(w, FunctionId::Reconnect.as_u32())?;
                put_u64(w, *session)
            }
            SessionHello::Migrate { session, snapshot } => {
                put_u32(w, FunctionId::Migrate.as_u32())?;
                put_u64(w, *session)?;
                put_u32(w, snapshot.len() as u32)?;
                w.write_all(snapshot)
            }
        }
    }

    /// Read the handshake message. The first word disambiguates: a `Hello`
    /// or `Reconnect` selector routes to the extended forms, anything else
    /// *is* the module length of the paper's positional initialization.
    pub fn read<R: Read>(r: &mut R) -> io::Result<SessionHello> {
        let first = get_u32(r)?;
        Self::read_after(first, r)
    }

    /// Read the handshake body when the first word has already been
    /// consumed — servers peek it to peel an optional [`CodecHello`] off
    /// the stream before the session hello proper.
    ///
    /// [`CodecHello`]: crate::codec::CodecHello
    pub fn read_after<R: Read>(first: u32, r: &mut R) -> io::Result<SessionHello> {
        match FunctionId::from_u32(first) {
            Ok(FunctionId::Hello) => {
                let session = get_u64(r)?;
                let len = get_u32(r)? as usize;
                let module = get_bytes(r, len)?;
                Ok(SessionHello::Resumable { session, module })
            }
            Ok(FunctionId::Reconnect) => Ok(SessionHello::Reconnect {
                session: get_u64(r)?,
            }),
            Ok(FunctionId::Migrate) => {
                let session = get_u64(r)?;
                let len = get_u32(r)? as usize;
                let snapshot = get_bytes(r, len)?;
                Ok(SessionHello::Migrate { session, snapshot })
            }
            _ => Ok(SessionHello::Fresh {
                module: get_bytes(r, first as usize)?,
            }),
        }
    }

    /// The module image carried by this handshake, if any.
    pub fn module(&self) -> Option<&[u8]> {
        match self {
            SessionHello::Fresh { module } | SessionHello::Resumable { module, .. } => Some(module),
            SessionHello::Reconnect { .. } | SessionHello::Migrate { .. } => None,
        }
    }

    /// The session token carried by this handshake, if any.
    pub fn session(&self) -> Option<u64> {
        match self {
            SessionHello::Fresh { .. } => None,
            SessionHello::Resumable { session, .. }
            | SessionHello::Reconnect { session }
            | SessionHello::Migrate { session, .. } => Some(*session),
        }
    }
}

/// Write the server's 4-byte reply to a handshake (`0` = accepted/resumed).
pub fn write_hello_reply<W: Write>(w: &mut W, result: &CudaResult<()>) -> io::Result<()> {
    put_u32(w, rcuda_core::error::result_code(result))
}

/// Read the server's 4-byte reply to a handshake.
pub fn read_hello_reply<R: Read>(r: &mut R) -> io::Result<CudaResult<()>> {
    Ok(CudaError::from_code(get_u32(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(h: &SessionHello) -> SessionHello {
        let mut buf = Vec::new();
        h.write(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, h.wire_bytes(), "{h:?}");
        SessionHello::read(&mut Cursor::new(&buf)).unwrap()
    }

    #[test]
    fn all_three_forms_round_trip() {
        for h in [
            SessionHello::Fresh {
                module: vec![1, 2, 3],
            },
            SessionHello::Resumable {
                session: 0xAB_CDEF,
                module: vec![9; 64],
            },
            SessionHello::Reconnect {
                session: u64::MAX - 7,
            },
            SessionHello::Migrate {
                session: 0xFEED,
                snapshot: vec![0xAB; 100],
            },
        ] {
            assert_eq!(round_trip(&h), h);
        }
    }

    #[test]
    fn fresh_form_is_bitwise_the_paper_init() {
        // The paper's positional init (len + blob) must read back as Fresh:
        // legacy clients keep working against a handshake-aware server.
        let mut buf = Vec::new();
        put_u32(&mut buf, 3).unwrap();
        buf.extend_from_slice(&[7, 8, 9]);
        assert_eq!(
            SessionHello::read(&mut Cursor::new(&buf)).unwrap(),
            SessionHello::Fresh {
                module: vec![7, 8, 9]
            }
        );
    }

    #[test]
    fn selectors_cannot_be_module_lengths() {
        // Hello/Reconnect/Busy occupy the top of the u32 range, where a
        // module length is physically impossible (a 4 GiB module).
        assert!(FunctionId::Hello.as_u32() > u32::MAX - 6);
        assert!(FunctionId::Reconnect.as_u32() > u32::MAX - 6);
        assert!(FunctionId::Busy.as_u32() > u32::MAX - 6);
        assert!(FunctionId::Migrate.as_u32() > u32::MAX - 6);
        assert!(FunctionId::Codec.as_u32() > u32::MAX - 6);
    }

    #[test]
    fn server_hello_round_trips_both_forms() {
        for h in [
            ServerHello::Ready { major: 1, minor: 3 },
            ServerHello::Ready { major: 9, minor: 0 },
            ServerHello::Busy {
                retry_after_ms: 250,
            },
            ServerHello::Busy { retry_after_ms: 0 },
        ] {
            let mut buf = Vec::new();
            h.write(&mut buf).unwrap();
            assert_eq!(buf.len(), ServerHello::WIRE_BYTES);
            assert_eq!(ServerHello::read(&mut Cursor::new(&buf)).unwrap(), h);
        }
    }

    #[test]
    fn server_hello_ready_is_bitwise_the_legacy_cc_push() {
        // The admitted form must be byte-identical to the raw (major, minor)
        // LE pair the server has always pushed: legacy clients parse it
        // positionally without knowing ServerHello exists.
        let wire = ServerHello::Ready { major: 1, minor: 3 }.to_wire();
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&1u32.to_le_bytes());
        legacy.extend_from_slice(&3u32.to_le_bytes());
        assert_eq!(&wire[..], &legacy[..]);
    }

    #[test]
    fn busy_selector_is_an_impossible_capability_major() {
        // A legacy client decoding a Busy frame positionally sees a
        // nonsense capability, not a crash; a ServerHello-aware client
        // distinguishes the forms by the first word alone.
        let wire = ServerHello::Busy { retry_after_ms: 7 }.to_wire();
        let first = u32::from_le_bytes(wire[..4].try_into().unwrap());
        assert_eq!(first, FunctionId::Busy.as_u32());
        assert!(first > 100, "no real device has this capability major");
        assert_eq!(
            ServerHello::from_wire(wire),
            ServerHello::Busy { retry_after_ms: 7 }
        );
    }

    #[test]
    fn accessors_expose_module_and_session() {
        let h = SessionHello::Resumable {
            session: 42,
            module: vec![1],
        };
        assert_eq!(h.module(), Some(&[1u8][..]));
        assert_eq!(h.session(), Some(42));
        assert_eq!(
            SessionHello::Reconnect { session: 1 }.module(),
            None,
            "reconnect ships no module"
        );
        assert_eq!(SessionHello::Fresh { module: vec![] }.session(), None);
    }

    #[test]
    fn reply_round_trips_success_and_rejection() {
        for r in [Ok(()), Err(CudaError::InitializationError)] {
            let mut buf = Vec::new();
            write_hello_reply(&mut buf, &r).unwrap();
            assert_eq!(buf.len(), 4);
            assert_eq!(read_hello_reply(&mut Cursor::new(&buf)).unwrap(), r);
        }
    }

    #[test]
    fn truncated_handshake_is_an_error_not_a_panic() {
        // A Reconnect selector followed by nothing.
        let mut buf = Vec::new();
        put_u32(&mut buf, FunctionId::Reconnect.as_u32()).unwrap();
        assert!(SessionHello::read(&mut Cursor::new(&buf)).is_err());
    }
}
