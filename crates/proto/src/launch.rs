//! The `cudaLaunch` configuration record.
//!
//! Table I gives the launch message as: function id (4), texture offset (4),
//! parameters offset (4), number of textures (4), block dimension (12), grid
//! dimension (8), shared size (4), stream (4), kernel name (x). This module
//! carries everything but the function id and the name region.

use rcuda_core::Dim3;

/// Fixed-size portion of a `cudaLaunch` request after the function id:
/// 4+4+4+12+8+4+4 = 40 bytes; with the 4-byte id that is the `44` of
/// Table I's `x + 44` total.
pub const LAUNCH_FIXED_BYTES: u64 = 40;

/// Launch configuration shipped with `cudaLaunch`.
///
/// In CUDA 2.3 the configuration is accumulated client-side by
/// `cudaConfigureCall`/`cudaSetupArgument` and shipped in one message when
/// `cudaLaunch` fires — which is why the paper counts a single message for
/// the whole launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Byte offset of texture references within the name region (0 = none).
    pub texture_offset: u32,
    /// Byte offset of the packed kernel arguments within the name region.
    pub parameters_offset: u32,
    /// Number of texture references used by the kernel.
    pub num_textures: u32,
    /// Threads per block.
    pub block: Dim3,
    /// Blocks in the grid (CUDA 2.x grids are 2-D; z is not carried).
    pub grid: Dim3,
    /// Dynamic shared memory per block, bytes.
    pub shared_bytes: u32,
    /// Stream handle (0 = the default stream).
    pub stream: u32,
}

impl LaunchConfig {
    /// A simple 1-D launch on the default stream.
    pub fn simple(grid_x: u32, block_x: u32) -> Self {
        LaunchConfig {
            texture_offset: 0,
            parameters_offset: 0,
            num_textures: 0,
            block: Dim3::x(block_x),
            grid: Dim3::x(grid_x),
            shared_bytes: 0,
            stream: 0,
        }
    }

    /// Encode the fixed 40-byte portion.
    pub fn to_wire(&self) -> [u8; LAUNCH_FIXED_BYTES as usize] {
        let mut out = [0u8; LAUNCH_FIXED_BYTES as usize];
        out[0..4].copy_from_slice(&self.texture_offset.to_le_bytes());
        out[4..8].copy_from_slice(&self.parameters_offset.to_le_bytes());
        out[8..12].copy_from_slice(&self.num_textures.to_le_bytes());
        out[12..24].copy_from_slice(&self.block.to_wire12());
        out[24..32].copy_from_slice(&self.grid.to_wire8());
        out[32..36].copy_from_slice(&self.shared_bytes.to_le_bytes());
        out[36..40].copy_from_slice(&self.stream.to_le_bytes());
        out
    }

    /// Decode the fixed 40-byte portion.
    pub fn from_wire(b: [u8; LAUNCH_FIXED_BYTES as usize]) -> Self {
        LaunchConfig {
            texture_offset: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            parameters_offset: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            num_textures: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            block: Dim3::from_wire12(b[12..24].try_into().unwrap()),
            grid: Dim3::from_wire8(b[24..32].try_into().unwrap()),
            shared_bytes: u32::from_le_bytes(b[32..36].try_into().unwrap()),
            stream: u32::from_le_bytes(b[36..40].try_into().unwrap()),
        }
    }
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig::simple(1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_portion_is_40_bytes() {
        // With the 4-byte function id this reproduces Table I's "x + 44".
        assert_eq!(LaunchConfig::default().to_wire().len(), 40);
    }

    #[test]
    fn wire_round_trip() {
        let cfg = LaunchConfig {
            texture_offset: 3,
            parameters_offset: 17,
            num_textures: 1,
            block: Dim3::new(64, 4, 1),
            grid: Dim3::xy(512, 2),
            shared_bytes: 4096,
            stream: 7,
        };
        assert_eq!(LaunchConfig::from_wire(cfg.to_wire()), cfg);
    }

    #[test]
    fn grid_z_is_flattened_by_the_wire() {
        // CUDA 2.x grids are 2-D: a 3-D grid z degenerates to 1 on the wire.
        let cfg = LaunchConfig {
            grid: Dim3::new(4, 5, 6),
            ..Default::default()
        };
        let rt = LaunchConfig::from_wire(cfg.to_wire());
        assert_eq!(rt.grid, Dim3::xy(4, 5));
    }
}
