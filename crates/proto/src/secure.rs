//! Vendored crypto primitives for the multiplexed transport: SHA-256,
//! HMAC-SHA256 and a ChaCha20-style stream cipher, all implemented inline so
//! the workspace stays dependency-free.
//!
//! The mux handshake (see [`crate::mux`]) uses HMAC-SHA256 for
//! challenge-response token authentication and — when the client negotiates
//! it — derives per-connection keys for a [`CipherSuite`] that scrambles
//! stream payloads. This is the same shape RGPU ships for shared-network GPU
//! services: token auth as table stakes, payload encryption as an opt-in.
//!
//! None of this is a substitute for a real TLS stack; the point is that the
//! *protocol* carries the hooks (negotiation at hello, per-stream cipher
//! state, auth rejection as a first-class error) so a production transport
//! could slot a vetted implementation behind the same trait.

/// SHA-256 digest length in bytes.
pub const SHA256_LEN: usize = 32;

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4).
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Produce the digest, consuming the hasher.
    pub fn finish(mut self) -> [u8; SHA256_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; SHA256_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; SHA256_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// HMAC-SHA256 (RFC 2104) over the concatenation of `parts`.
pub fn hmac_sha256(key: &[u8], parts: &[&[u8]]) -> [u8; SHA256_LEN] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..SHA256_LEN].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-time byte-slice equality — the comparison the server uses to
/// check the client's auth proof, immune to timing probes on the prefix.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// A symmetric per-stream payload scrambler. Implementations must be
/// XOR-keystream-style: applying the same instance state to the same bytes
/// on the peer inverts the transform, so one `apply` method serves both
/// directions.
pub trait CipherSuite: Send {
    /// Wire name of the suite (diagnostics).
    fn name(&self) -> &'static str;
    /// Transform `data` in place, advancing the keystream.
    fn apply(&mut self, data: &mut [u8]);
}

/// Cipher suites the hello negotiation can select, with their wire ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u32)]
pub enum CipherSuiteKind {
    /// No payload encryption (the default).
    #[default]
    None = 0,
    /// The vendored ChaCha20 keystream cipher.
    ChaCha20 = 1,
}

impl CipherSuiteKind {
    /// Decode a negotiated wire id; unknown ids fall back to `None` so a
    /// newer peer degrades cleanly.
    pub fn from_u32(v: u32) -> CipherSuiteKind {
        match v {
            1 => CipherSuiteKind::ChaCha20,
            _ => CipherSuiteKind::None,
        }
    }

    /// The wire id.
    pub const fn as_u32(self) -> u32 {
        self as u32
    }

    /// Instantiate the suite for one (stream, direction) keystream lane.
    /// Returns `None` for [`CipherSuiteKind::None`].
    pub fn instantiate(
        self,
        key: &[u8; 32],
        stream_id: u32,
        dir_tag: u8,
    ) -> Option<Box<dyn CipherSuite>> {
        match self {
            CipherSuiteKind::None => None,
            CipherSuiteKind::ChaCha20 => {
                let mut nonce = [0u8; 12];
                nonce[..4].copy_from_slice(&stream_id.to_le_bytes());
                nonce[4] = dir_tag;
                Some(Box::new(ChaCha20::new(key, &nonce)))
            }
        }
    }
}

/// ChaCha20 (RFC 7539) used as a pure keystream generator: `apply` XORs the
/// next keystream bytes into the payload, so encrypt and decrypt are the
/// same operation.
pub struct ChaCha20 {
    state: [u32; 16],
    keystream: [u8; 64],
    /// Offset of the next unused keystream byte; 64 means "generate more".
    ks_pos: usize,
}

impl ChaCha20 {
    /// A cipher instance keyed for one lane; the 12-byte nonce encodes the
    /// lane identity, the block counter starts at 0.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> ChaCha20 {
        let mut state = [0u32; 16];
        state[0] = 0x61707865;
        state[1] = 0x3320646e;
        state[2] = 0x79622d32;
        state[3] = 0x6b206574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = 0; // block counter
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            state,
            keystream: [0u8; 64],
            ks_pos: 64,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..10 {
            // column rounds
            Self::quarter(&mut x, 0, 4, 8, 12);
            Self::quarter(&mut x, 1, 5, 9, 13);
            Self::quarter(&mut x, 2, 6, 10, 14);
            Self::quarter(&mut x, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter(&mut x, 0, 5, 10, 15);
            Self::quarter(&mut x, 1, 6, 11, 12);
            Self::quarter(&mut x, 2, 7, 8, 13);
            Self::quarter(&mut x, 3, 4, 9, 14);
        }
        for (i, xi) in x.iter().enumerate() {
            let word = xi.wrapping_add(self.state[i]);
            self.keystream[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        self.ks_pos = 0;
    }

    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }
}

impl CipherSuite for ChaCha20 {
    fn name(&self) -> &'static str {
        "chacha20"
    }

    fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.ks_pos == 64 {
                self.refill();
            }
            *byte ^= self.keystream[self.ks_pos];
            self.ks_pos += 1;
        }
    }
}

/// A fresh 16-byte handshake nonce, derived from std's randomly seeded
/// hasher plus a process-global counter. Not a CSPRNG — adequate for
/// handshake freshness (replay scoping) in this reproduction, where the
/// threat model is misdirected clients, not adversaries.
pub fn random_nonce() -> [u8; 16] {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut nonce = [0u8; 16];
    for (i, half) in nonce.chunks_mut(8).enumerate() {
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(tick);
        hasher.write_u64(now);
        hasher.write_u64(i as u64);
        half.copy_from_slice(&hasher.finish().to_le_bytes());
    }
    nonce
}

/// Domain label for the auth proof MAC.
pub const AUTH_LABEL: &[u8] = b"rcuda-mux-auth-v1";
/// Domain label for cipher key derivation.
pub const KEY_LABEL: &[u8] = b"rcuda-mux-key-v1";

/// The client's auth proof: `HMAC(token, label || client_nonce || server_nonce)`.
pub fn auth_proof(token: &[u8], client_nonce: &[u8; 16], server_nonce: &[u8; 16]) -> [u8; 32] {
    hmac_sha256(token, &[AUTH_LABEL, client_nonce, server_nonce])
}

/// The per-connection cipher key, bound to both nonces. With an empty token
/// this still yields a connection-unique key — obfuscation, not secrecy.
pub fn derive_key(token: &[u8], client_nonce: &[u8; 16], server_nonce: &[u8; 16]) -> [u8; 32] {
    hmac_sha256(token, &[KEY_LABEL, client_nonce, server_nonce])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        for chunk in [1usize, 3, 63, 64, 65, 255] {
            let mut h = Sha256::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finish(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn hmac_sha256_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], &[b"Hi There"])),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: key "Jefe".
        assert_eq!(
            hex(&hmac_sha256(
                b"Jefe",
                &[b"what do ya want ", b"for nothing?"]
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
        assert_eq!(
            hex(&hmac_sha256(&[0xaa; 20], &[&[0xdd; 50]])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Test case 6: key longer than the block size.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                &[b"Test Using Larger Than Block-Size Key - Hash Key First"]
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn chacha20_rfc7539_keystream() {
        // RFC 7539 §2.4.2: key 00..1f, nonce 000000000000004a00000000, but
        // the reference starts at block counter 1. Our instance starts at
        // counter 0, so skip one 64-byte block first.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut cipher = ChaCha20::new(&key, &nonce);
        let mut skip = [0u8; 64];
        cipher.apply(&mut skip);
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        cipher.apply(&mut data);
        assert_eq!(
            hex(&data[..16]),
            "6e2e359a2568f98041ba0728dd0d6981",
            "RFC 7539 §2.4.2 ciphertext prefix"
        );
        assert_eq!(hex(&data[data.len() - 4..]), "5e42874d", "ciphertext tail");
    }

    #[test]
    fn chacha20_apply_twice_is_identity() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..300).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        let mut enc = ChaCha20::new(&key, &nonce);
        enc.apply(&mut data);
        assert_ne!(data, original);
        let mut dec = ChaCha20::new(&key, &nonce);
        dec.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn chacha20_split_applies_match_contiguous() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let mut whole = vec![0u8; 200];
        ChaCha20::new(&key, &nonce).apply(&mut whole);
        let mut pieces = vec![0u8; 200];
        let mut c = ChaCha20::new(&key, &nonce);
        for chunk in pieces.chunks_mut(17) {
            c.apply(chunk);
        }
        assert_eq!(whole, pieces, "keystream position survives split applies");
    }

    #[test]
    fn lanes_differ_by_stream_and_direction() {
        let key = [5u8; 32];
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        let mut c = vec![0u8; 32];
        CipherSuiteKind::ChaCha20
            .instantiate(&key, 1, 0)
            .unwrap()
            .apply(&mut a);
        CipherSuiteKind::ChaCha20
            .instantiate(&key, 2, 0)
            .unwrap()
            .apply(&mut b);
        CipherSuiteKind::ChaCha20
            .instantiate(&key, 1, 1)
            .unwrap()
            .apply(&mut c);
        assert_ne!(a, b, "different streams, different keystream");
        assert_ne!(a, c, "different directions, different keystream");
    }

    #[test]
    fn ct_eq_basics() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn auth_proof_depends_on_all_inputs() {
        let cn = [1u8; 16];
        let sn = [2u8; 16];
        let base = auth_proof(b"token", &cn, &sn);
        assert_ne!(base, auth_proof(b"other", &cn, &sn));
        assert_ne!(base, auth_proof(b"token", &[9u8; 16], &sn));
        assert_ne!(base, auth_proof(b"token", &cn, &[9u8; 16]));
        assert_ne!(base, derive_key(b"token", &cn, &sn), "domain separation");
    }

    #[test]
    fn cipher_kind_wire_round_trip() {
        assert_eq!(CipherSuiteKind::from_u32(0), CipherSuiteKind::None);
        assert_eq!(CipherSuiteKind::from_u32(1), CipherSuiteKind::ChaCha20);
        assert_eq!(CipherSuiteKind::from_u32(77), CipherSuiteKind::None);
        assert!(CipherSuiteKind::None.instantiate(&[0; 32], 0, 0).is_none());
    }
}
