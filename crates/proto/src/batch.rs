//! Batched call submission: one wire message packing N consecutive requests.
//!
//! The paper's protocol is strictly synchronous — one request, one response,
//! one network round trip per CUDA call — which is exactly why the FFT case
//! study loses to the local GPU on Gigabit Ethernet (§IV-B: the per-call
//! round-trip latency dominates a short computation). A `Batch` frame removes
//! those round trips for calls that return no data: the client packs N
//! requests into a single message (`FunctionId::Batch` selector + count +
//! the requests back to back, each with its own selector) and the server
//! answers with a single [`BatchResponse`] carrying the N responses in
//! submission order.
//!
//! Batching is a pure framing change: each packed request is encoded exactly
//! as it would be on its own, so the batch wire size is the sum of its parts
//! plus the fixed 8-byte header, and the server decodes elements with the
//! unchanged per-request reader.
//!
//! Two requests can never appear inside a batch: `Init` (it has no selector;
//! it is identified by protocol position during the handshake) and `Batch`
//! itself (no nesting). Both are rejected at encode and decode time.

use std::io::{self, Read, Write};

use crate::codec::Codec;
use crate::ids::FunctionId;
use crate::payload::BufferPool;
use crate::request::Request;
use crate::response::Response;
use crate::wire::{get_u32, put_u32};

/// Fixed overhead of a batch frame: 4-byte `FunctionId::Batch` selector +
/// 4-byte element count.
pub const BATCH_HEADER_BYTES: u64 = 8;

/// Fixed overhead of a batch response: the 4-byte element count. (Unlike
/// single responses there is no leading result code for the frame itself —
/// each packed response carries its own.)
pub const BATCH_RESPONSE_HEADER_BYTES: u64 = 4;

/// N consecutive requests packed into one client → server message.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    requests: Vec<Request>,
}

impl Batch {
    /// Pack `requests` into a batch.
    ///
    /// Returns `Err` with the offending request's index if any element is
    /// not batchable (`Init` has no selector, and batches do not nest —
    /// though the latter cannot be expressed as a `Request` anyway).
    pub fn new(requests: Vec<Request>) -> Result<Batch, usize> {
        if let Some(bad) = requests.iter().position(|r| r.function_id().is_none()) {
            return Err(bad);
        }
        Ok(Batch { requests })
    }

    /// The packed requests, in submission order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Consume the batch, yielding the packed requests.
    pub fn into_requests(self) -> Vec<Request> {
        self.requests
    }

    /// Number of packed requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Exact number of bytes [`Batch::write`] puts on the wire: the 8-byte
    /// header plus the sum of the packed requests' own wire sizes.
    pub fn wire_bytes(&self) -> u64 {
        BATCH_HEADER_BYTES + self.requests.iter().map(Request::wire_bytes).sum::<u64>()
    }

    /// Serialize onto the wire: selector, count, then each request encoded
    /// exactly as it would be on its own.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.write_codec(w, None)
    }

    /// Like [`Batch::write`], threading the session codec through each
    /// packed request (payload-bearing elements gain the `[enc_len][bytes]`
    /// framing, exactly as they would on their own).
    pub fn write_codec<W: Write>(&self, w: &mut W, codec: Option<&Codec>) -> io::Result<()> {
        put_u32(w, FunctionId::Batch.as_u32())?;
        put_u32(w, self.requests.len() as u32)?;
        for req in &self.requests {
            req.write_codec(w, codec)?;
        }
        Ok(())
    }

    /// Read the body of a batch frame whose `FunctionId::Batch` selector has
    /// already been consumed (see [`Frame::read`]).
    pub fn read_body<R: Read>(r: &mut R) -> io::Result<Batch> {
        Self::read_body_pooled(r, None)
    }

    /// Like [`Batch::read_body`], but landing element payloads in buffers
    /// recycled from `pool` when one is given.
    pub fn read_body_pooled<R: Read>(r: &mut R, pool: Option<&BufferPool>) -> io::Result<Batch> {
        Self::read_body_codec(r, pool, None)
    }

    /// Like [`Batch::read_body_pooled`], decoding the codec payload framing
    /// when a codec was negotiated.
    pub fn read_body_codec<R: Read>(
        r: &mut R,
        pool: Option<&BufferPool>,
        codec: Option<&Codec>,
    ) -> io::Result<Batch> {
        let count = get_u32(r)? as usize;
        // Capacity is clamped so a corrupt count cannot force a huge
        // allocation before the per-request reads start failing.
        let mut requests = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let raw = get_u32(r)?;
            let id = FunctionId::from_u32(raw)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            requests.push(Request::read_with_id_codec(id, r, pool, codec)?);
        }
        Ok(Batch { requests })
    }
}

/// The server's combined reply to a [`Batch`]: one response per packed
/// request, in submission order. The server executes every element even if
/// an earlier one fails — each response carries its own result code, exactly
/// as if the calls had been issued individually. (The one exception is a
/// `Quit` inside a batch: it ends the session, so elements after it are
/// answered but not executed.)
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResponse {
    pub responses: Vec<Response>,
}

impl BatchResponse {
    /// Exact number of bytes [`BatchResponse::write`] puts on the wire.
    pub fn wire_bytes(&self) -> u64 {
        BATCH_RESPONSE_HEADER_BYTES + self.responses.iter().map(Response::wire_bytes).sum::<u64>()
    }

    /// Serialize onto the wire: count, then each response.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.write_codec(w, None)
    }

    /// Like [`BatchResponse::write`], threading the session codec through
    /// each packed response.
    pub fn write_codec<W: Write>(&self, w: &mut W, codec: Option<&Codec>) -> io::Result<()> {
        put_u32(w, self.responses.len() as u32)?;
        for resp in &self.responses {
            resp.write_codec(w, codec)?;
        }
        Ok(())
    }

    /// Read the combined reply to `batch`. Like [`Response::read`] this is
    /// keyed on the requests: each packed response's shape is determined by
    /// the request that elicited it. The element count must match the
    /// batch's — anything else is a protocol violation.
    pub fn read<R: Read>(r: &mut R, batch: &Batch) -> io::Result<BatchResponse> {
        Self::read_codec(r, batch, None)
    }

    /// Like [`BatchResponse::read`], decoding the codec payload framing
    /// when a codec was negotiated.
    pub fn read_codec<R: Read>(
        r: &mut R,
        batch: &Batch,
        codec: Option<&Codec>,
    ) -> io::Result<BatchResponse> {
        let count = get_u32(r)? as usize;
        if count != batch.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "batch response count {count} does not match batch of {}",
                    batch.len()
                ),
            ));
        }
        let mut responses = Vec::with_capacity(count.min(1024));
        for req in batch.requests() {
            responses.push(Response::read_codec(r, req, None, codec)?);
        }
        Ok(BatchResponse { responses })
    }
}

/// What the server's reader sees next on the wire: a lone request or a batch.
///
/// The selector is read once; `FunctionId::Batch` routes to the batch body
/// reader, anything else to the unchanged per-request reader, so a server
/// built on `Frame::read` speaks both the paper's one-call-per-message
/// protocol and the batched extension with no mode negotiation.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Single(Request),
    Batch(Batch),
}

impl Frame {
    /// Read the next frame (selector first).
    pub fn read<R: Read>(r: &mut R) -> io::Result<Frame> {
        Self::read_pooled(r, None)
    }

    /// Like [`Frame::read`], but landing payload bytes in buffers recycled
    /// from `pool` when one is given — the server worker's receive path.
    pub fn read_pooled<R: Read>(r: &mut R, pool: Option<&BufferPool>) -> io::Result<Frame> {
        Self::read_codec(r, pool, None)
    }

    /// Like [`Frame::read_pooled`], decoding the codec payload framing when
    /// a codec was negotiated on this connection.
    pub fn read_codec<R: Read>(
        r: &mut R,
        pool: Option<&BufferPool>,
        codec: Option<&Codec>,
    ) -> io::Result<Frame> {
        let raw = get_u32(r)?;
        let id =
            FunctionId::from_u32(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if id == FunctionId::Batch {
            Ok(Frame::Batch(Batch::read_body_codec(r, pool, codec)?))
        } else {
            Ok(Frame::Single(Request::read_with_id_codec(
                id, r, pool, codec,
            )?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MemcpyKind;
    use crate::launch::LaunchConfig;
    use rcuda_core::{CudaError, DevicePtr};
    use std::io::Cursor;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Memcpy {
                dst: 0x1000,
                src: 0,
                size: 4,
                kind: MemcpyKind::HostToDevice,
                data: Some(vec![1, 2, 3, 4].into()),
            },
            Request::Memset {
                dst: 0x2000,
                value: 0,
                size: 64,
            },
            Request::launch("sgemmNN", &[0; 16], LaunchConfig::default()),
            Request::Free {
                ptr: DevicePtr::new(0x1000),
            },
        ]
    }

    #[test]
    fn batch_wire_size_is_sum_of_parts_plus_header() {
        let requests = sample_requests();
        let parts: u64 = requests.iter().map(Request::wire_bytes).sum();
        let batch = Batch::new(requests).unwrap();
        assert_eq!(batch.wire_bytes(), BATCH_HEADER_BYTES + parts);

        let mut buf = Vec::new();
        batch.write(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, batch.wire_bytes());
    }

    #[test]
    fn batch_round_trips_through_frame_reader() {
        let batch = Batch::new(sample_requests()).unwrap();
        let mut buf = Vec::new();
        batch.write(&mut buf).unwrap();
        match Frame::read(&mut Cursor::new(&buf)).unwrap() {
            Frame::Batch(decoded) => assert_eq!(decoded, batch),
            other => panic!("expected batch frame, got {other:?}"),
        }
    }

    #[test]
    fn single_request_still_reads_as_single_frame() {
        let req = Request::Malloc { size: 256 };
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        match Frame::read(&mut Cursor::new(&buf)).unwrap() {
            Frame::Single(decoded) => assert_eq!(decoded, req),
            other => panic!("expected single frame, got {other:?}"),
        }
    }

    #[test]
    fn init_is_not_batchable() {
        let reqs = vec![
            Request::ThreadSynchronize,
            Request::Init { module: vec![1] },
        ];
        assert_eq!(Batch::new(reqs), Err(1));
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = Batch::new(Vec::new()).unwrap();
        assert_eq!(batch.wire_bytes(), BATCH_HEADER_BYTES);
        let mut buf = Vec::new();
        batch.write(&mut buf).unwrap();
        match Frame::read(&mut Cursor::new(&buf)).unwrap() {
            Frame::Batch(decoded) => assert!(decoded.is_empty()),
            other => panic!("expected batch frame, got {other:?}"),
        }
    }

    #[test]
    fn nested_batch_selector_is_rejected() {
        let mut buf = Vec::new();
        // Outer batch claiming one element whose selector is again Batch.
        put_u32(&mut buf, FunctionId::Batch.as_u32()).unwrap();
        put_u32(&mut buf, 1).unwrap();
        put_u32(&mut buf, FunctionId::Batch.as_u32()).unwrap();
        put_u32(&mut buf, 0).unwrap();
        assert!(Frame::read(&mut Cursor::new(&buf)).is_err());
    }

    #[test]
    fn batch_response_round_trip_and_size() {
        let batch = Batch::new(sample_requests()).unwrap();
        let resp = BatchResponse {
            responses: vec![
                Response::Ack(Ok(())),
                Response::Ack(Ok(())),
                Response::Ack(Err(CudaError::LaunchFailure)),
                Response::Ack(Ok(())),
            ],
        };
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, resp.wire_bytes());
        let decoded = BatchResponse::read(&mut Cursor::new(&buf), &batch).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn batch_response_with_payload_bearing_tail() {
        // A result-bearing call (D2H memcpy) may ride as the final element.
        let requests = vec![
            Request::Memset {
                dst: 0x1000,
                value: 7,
                size: 3,
            },
            Request::Memcpy {
                dst: 0,
                src: 0x1000,
                size: 3,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
        ];
        let batch = Batch::new(requests).unwrap();
        let resp = BatchResponse {
            responses: vec![
                Response::Ack(Ok(())),
                Response::MemcpyToHost(Ok(vec![7, 7, 7].into())),
            ],
        };
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        let decoded = BatchResponse::read(&mut Cursor::new(&buf), &batch).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn mismatched_response_count_is_rejected() {
        let batch = Batch::new(vec![Request::ThreadSynchronize]).unwrap();
        let resp = BatchResponse {
            responses: vec![Response::Ack(Ok(())), Response::Ack(Ok(()))],
        };
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        assert!(BatchResponse::read(&mut Cursor::new(&buf), &batch).is_err());
    }
}
