//! Low-level wire primitives: little-endian scalar reads/writes and
//! exact-length buffers over any `Read`/`Write` pair.
//!
//! Everything the protocol puts on the wire goes through these helpers so
//! that byte accounting (paper Table I) has a single source of truth.

use std::io::{self, IoSlice, Read, Write};

use crate::payload::{BufferPool, Payload, MAX_POOLED_BYTES};

/// Write a little-endian `u32` (4 bytes — the unit of almost every Table I
/// field).
pub fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a little-endian `u32`.
pub fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Write a little-endian `u64` (session tokens in the reconnect handshake).
pub fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a little-endian `u64`.
pub fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Write a byte blob verbatim (the `x`-sized fields of Table I: module
/// images, memcpy payloads, kernel names).
pub fn put_bytes<W: Write>(w: &mut W, b: &[u8]) -> io::Result<()> {
    w.write_all(b)
}

/// Read exactly `n` bytes.
pub fn get_bytes<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u8>> {
    // Grow with the bytes actually received: a corrupted length prefix then
    // costs at most one bounded chunk before the inevitable `UnexpectedEof`,
    // never an up-front multi-gigabyte allocation.
    const CHUNK: usize = 64 * 1024;
    let mut buf = Vec::with_capacity(n.min(CHUNK));
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK);
        let start = buf.len();
        buf.resize(start + take, 0);
        r.read_exact(&mut buf[start..])?;
        remaining -= take;
    }
    Ok(buf)
}

/// Read exactly `n` bytes into a [`Payload`], staging through `pool` when
/// one is given (the hot decode path: zero heap allocations once the pool
/// is warm).
///
/// Lengths above [`MAX_POOLED_BYTES`] fall back to [`get_bytes`], keeping
/// its bounded chunked-growth defense: a corrupted length prefix costs at
/// most one bounded chunk before the inevitable `UnexpectedEof`, never an
/// up-front multi-gigabyte allocation.
pub fn read_payload<R: Read>(
    r: &mut R,
    n: usize,
    pool: Option<&BufferPool>,
) -> io::Result<Payload> {
    match pool {
        Some(pool) if n <= MAX_POOLED_BYTES => {
            let mut buf = pool.get(n);
            r.read_exact(&mut buf)?;
            Ok(Payload::Pooled(buf))
        }
        _ => Ok(Payload::Owned(get_bytes(r, n)?)),
    }
}

/// Write `head` then `body` as one vectored write sequence, handling short
/// writes. This is the zero-copy encode primitive: a stack-built message
/// header plus a borrowed payload slice reach the transport without ever
/// being coalesced into an owned buffer.
pub fn write_all_vectored<W: Write>(w: &mut W, head: &[u8], body: &[u8]) -> io::Result<()> {
    let total = head.len() + body.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < head.len() {
            w.write_vectored(&[IoSlice::new(&head[written..]), IoSlice::new(body)])?
        } else {
            w.write(&body[written - head.len()..])?
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write whole vectored message",
            ));
        }
        written += n;
    }
    Ok(())
}

/// Read exactly `N` bytes into a fixed array.
pub fn get_array<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reinterpret a `f32` slice as its wire bytes (host data payloads).
///
/// This materializes an owned `Vec`; encode paths that already hold a
/// writer should use [`put_f32s`] instead and skip the intermediate buffer.
pub fn f32s_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Write a `f32` slice directly as its little-endian wire bytes, staging
/// through a fixed stack buffer — no intermediate `Vec` per upload.
pub fn put_f32s<W: Write>(w: &mut W, data: &[f32]) -> io::Result<()> {
    let mut stage = [0u8; 1024];
    for chunk in data.chunks(stage.len() / 4) {
        for (i, v) in chunk.iter().enumerate() {
            stage[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&stage[..chunk.len() * 4])?;
    }
    Ok(())
}

/// Copy a `f32` slice into an existing byte buffer as little-endian wire
/// bytes. The buffer must be exactly `4 * data.len()` bytes (pooled staging
/// for deferred uploads).
pub fn copy_f32s_into(out: &mut [u8], data: &[f32]) {
    assert_eq!(
        out.len(),
        data.len() * 4,
        "f32 staging buffer size mismatch"
    );
    for (slot, v) in out.chunks_exact_mut(4).zip(data) {
        slot.copy_from_slice(&v.to_le_bytes());
    }
}

/// Reinterpret wire bytes as `f32`s. Errors if the length is not a multiple
/// of four.
pub fn bytes_to_f32s(bytes: &[u8]) -> io::Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "payload length not a multiple of 4",
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        assert_eq!(buf.len(), 4);
        assert_eq!(get_u32(&mut Cursor::new(&buf)).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn u32_is_little_endian() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1).unwrap();
        assert_eq!(buf, [1, 0, 0, 0]);
    }

    #[test]
    fn u64_round_trip_and_endianness() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(buf.len(), 8);
        assert_eq!(buf[0], 8, "little-endian");
        assert_eq!(
            get_u64(&mut Cursor::new(&buf)).unwrap(),
            0x0102_0304_0506_0708
        );
    }

    #[test]
    fn bytes_round_trip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"module-image").unwrap();
        let mut c = Cursor::new(&buf);
        assert_eq!(get_bytes(&mut c, 6).unwrap(), b"module");
        assert_eq!(get_bytes(&mut c, 6).unwrap(), b"-image");
    }

    #[test]
    fn short_read_errors() {
        let mut c = Cursor::new(vec![1u8, 2]);
        assert!(get_u32(&mut c).is_err());
    }

    #[test]
    fn f32_payload_round_trip() {
        let data = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 3.4e38];
        let bytes = f32s_to_bytes(&data);
        assert_eq!(bytes.len(), 16);
        assert_eq!(bytes_to_f32s(&bytes).unwrap(), data);
    }

    #[test]
    fn misaligned_f32_payload_errors() {
        assert!(bytes_to_f32s(&[0u8; 7]).is_err());
    }

    #[test]
    fn put_f32s_matches_f32s_to_bytes() {
        // Longer than one 1024-byte staging chunk to cover the loop.
        let data: Vec<f32> = (0..700).map(|i| i as f32 * 0.5 - 3.0).collect();
        let mut direct = Vec::new();
        put_f32s(&mut direct, &data).unwrap();
        assert_eq!(direct, f32s_to_bytes(&data));
    }

    #[test]
    fn copy_f32s_into_matches_f32s_to_bytes() {
        let data = [1.0f32, -2.5, 3.75];
        let mut out = vec![0u8; 12];
        copy_f32s_into(&mut out, &data);
        assert_eq!(out, f32s_to_bytes(&data));
    }

    #[test]
    fn read_payload_pooled_and_owned_agree() {
        let src = vec![0xA5u8; 5000];
        let pool = BufferPool::new();
        let pooled = read_payload(&mut Cursor::new(&src), 5000, Some(&pool)).unwrap();
        let owned = read_payload(&mut Cursor::new(&src), 5000, None).unwrap();
        assert_eq!(pooled, owned);
        assert!(matches!(pooled, Payload::Pooled(_)));
        assert!(matches!(owned, Payload::Owned(_)));
    }

    #[test]
    fn read_payload_oversize_falls_back_to_owned() {
        // A corrupt length prefix above the pooled range must not make the
        // pool allocate up front; the chunked get_bytes path errors out.
        let pool = BufferPool::new();
        let err = read_payload(
            &mut Cursor::new(vec![0u8; 16]),
            MAX_POOLED_BYTES + 1,
            Some(&pool),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn write_all_vectored_handles_arbitrary_short_writes() {
        // A writer that accepts at most 3 bytes per call, and never more
        // than the first IoSlice (the worst-case vectored behaviour).
        struct Dribble(Vec<u8>);
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = Dribble(Vec::new());
        write_all_vectored(&mut w, &[1, 2, 3, 4, 5], &[6, 7, 8, 9]).unwrap();
        assert_eq!(w.0, [1, 2, 3, 4, 5, 6, 7, 8, 9]);

        let mut w = Dribble(Vec::new());
        write_all_vectored(&mut w, &[], &[1, 2]).unwrap();
        assert_eq!(w.0, [1, 2]);

        let mut w = Dribble(Vec::new());
        write_all_vectored(&mut w, &[9], &[]).unwrap();
        assert_eq!(w.0, [9]);
    }
}
