//! Low-level wire primitives: little-endian scalar reads/writes and
//! exact-length buffers over any `Read`/`Write` pair.
//!
//! Everything the protocol puts on the wire goes through these helpers so
//! that byte accounting (paper Table I) has a single source of truth.

use std::io::{self, Read, Write};

/// Write a little-endian `u32` (4 bytes — the unit of almost every Table I
/// field).
pub fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a little-endian `u32`.
pub fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Write a little-endian `u64` (session tokens in the reconnect handshake).
pub fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a little-endian `u64`.
pub fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Write a byte blob verbatim (the `x`-sized fields of Table I: module
/// images, memcpy payloads, kernel names).
pub fn put_bytes<W: Write>(w: &mut W, b: &[u8]) -> io::Result<()> {
    w.write_all(b)
}

/// Read exactly `n` bytes.
pub fn get_bytes<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<u8>> {
    // Grow with the bytes actually received: a corrupted length prefix then
    // costs at most one bounded chunk before the inevitable `UnexpectedEof`,
    // never an up-front multi-gigabyte allocation.
    const CHUNK: usize = 64 * 1024;
    let mut buf = Vec::with_capacity(n.min(CHUNK));
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK);
        let start = buf.len();
        buf.resize(start + take, 0);
        r.read_exact(&mut buf[start..])?;
        remaining -= take;
    }
    Ok(buf)
}

/// Read exactly `N` bytes into a fixed array.
pub fn get_array<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reinterpret a `f32` slice as its wire bytes (host data payloads).
pub fn f32s_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterpret wire bytes as `f32`s. Errors if the length is not a multiple
/// of four.
pub fn bytes_to_f32s(bytes: &[u8]) -> io::Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "payload length not a multiple of 4",
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn u32_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        assert_eq!(buf.len(), 4);
        assert_eq!(get_u32(&mut Cursor::new(&buf)).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn u32_is_little_endian() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1).unwrap();
        assert_eq!(buf, [1, 0, 0, 0]);
    }

    #[test]
    fn u64_round_trip_and_endianness() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(buf.len(), 8);
        assert_eq!(buf[0], 8, "little-endian");
        assert_eq!(
            get_u64(&mut Cursor::new(&buf)).unwrap(),
            0x0102_0304_0506_0708
        );
    }

    #[test]
    fn bytes_round_trip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"module-image").unwrap();
        let mut c = Cursor::new(&buf);
        assert_eq!(get_bytes(&mut c, 6).unwrap(), b"module");
        assert_eq!(get_bytes(&mut c, 6).unwrap(), b"-image");
    }

    #[test]
    fn short_read_errors() {
        let mut c = Cursor::new(vec![1u8, 2]);
        assert!(get_u32(&mut c).is_err());
    }

    #[test]
    fn f32_payload_round_trip() {
        let data = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 3.4e38];
        let bytes = f32s_to_bytes(&data);
        assert_eq!(bytes.len(), 16);
        assert_eq!(bytes_to_f32s(&bytes).unwrap(), data);
    }

    #[test]
    fn misaligned_f32_payload_errors() {
        assert!(bytes_to_f32s(&[0u8; 7]).is_err());
    }
}
