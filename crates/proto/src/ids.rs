//! Function identifiers — the first 32 bits of every request message.

use rcuda_core::CudaError;

/// The remote-API function selector carried in the first 4 bytes of every
/// request (paper §III: "the first 32 bits of the request identify the
/// specific CUDA function called").
///
/// Ids 1–6 cover the operations of Table I; higher ids are extensions this
/// implementation adds (device queries, streams and asynchronous copies —
/// the paper's declared future work — and an orderly-quit marker for the
/// finalization stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum FunctionId {
    /// `cudaMalloc`
    Malloc = 1,
    /// `cudaFree`
    Free = 2,
    /// `cudaMemcpy` (direction given by the `kind` field)
    Memcpy = 3,
    /// `cudaLaunch`
    Launch = 4,
    /// `cudaThreadSynchronize`
    ThreadSynchronize = 5,
    /// `cudaGetDeviceProperties` (extension)
    DeviceProps = 16,
    /// `cudaStreamCreate` (extension)
    StreamCreate = 17,
    /// `cudaStreamSynchronize` (extension)
    StreamSynchronize = 18,
    /// `cudaStreamDestroy` (extension)
    StreamDestroy = 19,
    /// `cudaMemcpyAsync` (extension)
    MemcpyAsync = 20,
    /// `cudaMemset` (extension)
    Memset = 21,
    /// `cudaEventCreate` (extension)
    EventCreate = 22,
    /// `cudaEventRecord` (extension)
    EventRecord = 23,
    /// `cudaEventSynchronize` (extension)
    EventSynchronize = 24,
    /// `cudaEventElapsedTime` (extension)
    EventElapsed = 25,
    /// `cudaEventDestroy` (extension)
    EventDestroy = 26,
    /// A batch frame: one length-prefixed message packing N consecutive
    /// requests (extension; see [`crate::batch`]). Batches themselves are
    /// never nested.
    Batch = 32,
    /// Finalization stage: client is closing the socket.
    Quit = 255,
    /// Handshake: a fresh session announcing a resume token before its
    /// module upload (extension; see [`crate::handshake`]). The value is
    /// deliberately an impossible module length, so a server reading the
    /// first post-connect word can distinguish it from the paper's
    /// positional `Init` message.
    Hello = 0xFFFF_FFFE,
    /// Handshake: a returning session asking to resume after a connection
    /// loss (extension; see [`crate::handshake`]). Like [`Self::Hello`],
    /// the value cannot be a module length.
    Reconnect = 0xFFFF_FFFF,
    /// Server → client load-shed marker: the daemon is over its admission
    /// limits and this connection will not be served (extension; see
    /// [`crate::handshake::ServerHello`]). The value is an impossible
    /// compute-capability major, so it is unambiguous in the 8-byte
    /// server-hello slot, and an impossible module length like the other
    /// selectors.
    Busy = 0xFFFF_FFFD,
    /// Handshake: the client asks to upgrade the connection to the
    /// multiplexed framing layer (extension; see [`crate::mux`]). Like the
    /// other handshake selectors, the value is an impossible module length,
    /// so a server reading the first post-connect word can route it.
    MuxHello = 0xFFFF_FFFC,
    /// Handshake: a *daemon* (not a client) ships a quiesced session's
    /// context snapshot to this daemon — live migration (extension; see
    /// [`crate::handshake::SessionHello::Migrate`]). Like the other
    /// handshake selectors, the value is an impossible module length.
    Migrate = 0xFFFF_FFFB,
    /// Handshake: the client opts in to the wire codec capabilities the
    /// server advertised in its hello (extension; see [`crate::codec`]).
    /// Sent once, before the session hello; there is no reply. Like the
    /// other handshake selectors, the value is an impossible module length.
    Codec = 0xFFFF_FFFA,
}

impl FunctionId {
    /// Decode a wire id.
    pub fn from_u32(v: u32) -> Result<FunctionId, CudaError> {
        Ok(match v {
            1 => FunctionId::Malloc,
            2 => FunctionId::Free,
            3 => FunctionId::Memcpy,
            4 => FunctionId::Launch,
            5 => FunctionId::ThreadSynchronize,
            16 => FunctionId::DeviceProps,
            17 => FunctionId::StreamCreate,
            18 => FunctionId::StreamSynchronize,
            19 => FunctionId::StreamDestroy,
            20 => FunctionId::MemcpyAsync,
            21 => FunctionId::Memset,
            22 => FunctionId::EventCreate,
            23 => FunctionId::EventRecord,
            24 => FunctionId::EventSynchronize,
            25 => FunctionId::EventElapsed,
            26 => FunctionId::EventDestroy,
            32 => FunctionId::Batch,
            255 => FunctionId::Quit,
            0xFFFF_FFFA => FunctionId::Codec,
            0xFFFF_FFFB => FunctionId::Migrate,
            0xFFFF_FFFC => FunctionId::MuxHello,
            0xFFFF_FFFD => FunctionId::Busy,
            0xFFFF_FFFE => FunctionId::Hello,
            0xFFFF_FFFF => FunctionId::Reconnect,
            _ => return Err(CudaError::InvalidValue),
        })
    }

    pub const fn as_u32(self) -> u32 {
        self as u32
    }

    /// All defined ids (for exhaustive round-trip tests).
    pub const ALL: [FunctionId; 24] = [
        FunctionId::Malloc,
        FunctionId::Free,
        FunctionId::Memcpy,
        FunctionId::Launch,
        FunctionId::ThreadSynchronize,
        FunctionId::DeviceProps,
        FunctionId::StreamCreate,
        FunctionId::StreamSynchronize,
        FunctionId::StreamDestroy,
        FunctionId::MemcpyAsync,
        FunctionId::Memset,
        FunctionId::EventCreate,
        FunctionId::EventRecord,
        FunctionId::EventSynchronize,
        FunctionId::EventElapsed,
        FunctionId::EventDestroy,
        FunctionId::Batch,
        FunctionId::Quit,
        FunctionId::Codec,
        FunctionId::Migrate,
        FunctionId::MuxHello,
        FunctionId::Busy,
        FunctionId::Hello,
        FunctionId::Reconnect,
    ];
}

/// `cudaMemcpyKind` — the 4-byte `kind` field of the memcpy message,
/// with CUDA's numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum MemcpyKind {
    HostToHost = 0,
    HostToDevice = 1,
    DeviceToHost = 2,
    DeviceToDevice = 3,
}

impl MemcpyKind {
    pub fn from_u32(v: u32) -> Result<MemcpyKind, CudaError> {
        Ok(match v {
            0 => MemcpyKind::HostToHost,
            1 => MemcpyKind::HostToDevice,
            2 => MemcpyKind::DeviceToHost,
            3 => MemcpyKind::DeviceToDevice,
            _ => return Err(CudaError::InvalidMemcpyDirection),
        })
    }

    pub const fn as_u32(self) -> u32 {
        self as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_ids_round_trip() {
        for id in FunctionId::ALL {
            assert_eq!(FunctionId::from_u32(id.as_u32()), Ok(id));
        }
    }

    #[test]
    fn unknown_function_id_is_invalid_value() {
        assert_eq!(FunctionId::from_u32(9000), Err(CudaError::InvalidValue));
        assert_eq!(FunctionId::from_u32(0), Err(CudaError::InvalidValue));
    }

    #[test]
    fn memcpy_kinds_use_cuda_numbering() {
        assert_eq!(MemcpyKind::HostToDevice.as_u32(), 1);
        assert_eq!(MemcpyKind::DeviceToHost.as_u32(), 2);
        for k in [
            MemcpyKind::HostToHost,
            MemcpyKind::HostToDevice,
            MemcpyKind::DeviceToHost,
            MemcpyKind::DeviceToDevice,
        ] {
            assert_eq!(MemcpyKind::from_u32(k.as_u32()), Ok(k));
        }
        assert_eq!(
            MemcpyKind::from_u32(4),
            Err(CudaError::InvalidMemcpyDirection)
        );
    }
}
