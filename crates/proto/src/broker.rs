//! Broker control-plane messages — cluster membership, health and placement.
//!
//! The broker is a small directory service that daemons register with and
//! clients consult before dialing a daemon. All messages here travel over a
//! connection that has already completed the mux-style authentication
//! handshake ([`crate::mux`]), so nothing below carries credentials.
//!
//! The conversation shapes are deliberately minimal:
//!
//! * A **daemon** sends [`BrokerHello::Daemon`] once, then a [`Heartbeat`]
//!   every interval. The broker answers each heartbeat with a
//!   [`HeartbeatReply`] that may piggyback [`BrokerCommand`]s (today: migrate
//!   a session out). Commands ride the reply so a single socket never needs
//!   concurrent readers.
//! * A **client** sends [`BrokerHello::Client`] once, then any number of
//!   [`PlaceRequest`]s; each is answered by a [`PlaceReply`] listing daemon
//!   addresses in preference order. If the named session is known to live on
//!   a particular daemon, that daemon is listed first so a reconnect finds
//!   its parked context.
//!
//! Like the rest of the protocol there is no framing: every field is
//! fixed-size or length-prefixed, and every length is sanity-capped so a
//! corrupt peer fails fast instead of forcing an absurd allocation.

use std::io::{self, Read, Write};

use crate::wire::{get_bytes, get_u32, get_u64, put_u32, put_u64};

/// Cap on an advertised daemon address (a host:port string).
pub const MAX_ADDR_BYTES: usize = 256;
/// Cap on the per-heartbeat session-token list.
pub const MAX_SESSIONS: usize = 1 << 16;
/// Cap on commands piggybacked on one heartbeat reply.
pub const MAX_COMMANDS: usize = 1024;
/// Cap on candidate addresses in one placement reply.
pub const MAX_ADDRS: usize = 1024;

fn bad(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    if s.len() > MAX_ADDR_BYTES {
        return Err(bad("address string over the wire cap"));
    }
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn get_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = get_u32(r)? as usize;
    if len > MAX_ADDR_BYTES {
        return Err(bad("address string over the wire cap"));
    }
    let bytes = get_bytes(r, len)?;
    String::from_utf8(bytes).map_err(|_| bad("address string is not UTF-8"))
}

/// First message after authentication: who is on this connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerHello {
    /// A daemon registering itself: the address clients should dial and the
    /// device memory capacity it manages.
    Daemon { addr: String, capacity: u64 },
    /// A client that will ask for placements.
    Client,
}

const ROLE_DAEMON: u32 = 1;
const ROLE_CLIENT: u32 = 2;

impl BrokerHello {
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            BrokerHello::Daemon { addr, capacity } => {
                put_u32(w, ROLE_DAEMON)?;
                put_str(w, addr)?;
                put_u64(w, *capacity)
            }
            BrokerHello::Client => put_u32(w, ROLE_CLIENT),
        }
    }

    pub fn read<R: Read>(r: &mut R) -> io::Result<BrokerHello> {
        match get_u32(r)? {
            ROLE_DAEMON => Ok(BrokerHello::Daemon {
                addr: get_str(r)?,
                capacity: get_u64(r)?,
            }),
            ROLE_CLIENT => Ok(BrokerHello::Client),
            _ => Err(bad("unknown broker role")),
        }
    }
}

/// One periodic daemon → broker health report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sessions currently being served.
    pub live_sessions: u32,
    /// Contexts parked awaiting reconnection.
    pub parked: u32,
    /// Device memory headroom (ledger capacity minus in-use bytes).
    pub free_bytes: u64,
    /// Sessions served over the daemon's lifetime.
    pub served: u64,
    /// The daemon is draining: finish what it has, place nothing new here.
    pub draining: bool,
    /// Resume tokens of every session the daemon holds (live and parked) —
    /// this is how the broker learns where a session lives.
    pub sessions: Vec<u64>,
}

impl Heartbeat {
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if self.sessions.len() > MAX_SESSIONS {
            return Err(bad("heartbeat session list over the wire cap"));
        }
        put_u32(w, self.live_sessions)?;
        put_u32(w, self.parked)?;
        put_u64(w, self.free_bytes)?;
        put_u64(w, self.served)?;
        w.write_all(&[self.draining as u8])?;
        put_u32(w, self.sessions.len() as u32)?;
        for s in &self.sessions {
            put_u64(w, *s)?;
        }
        Ok(())
    }

    pub fn read<R: Read>(r: &mut R) -> io::Result<Heartbeat> {
        let live_sessions = get_u32(r)?;
        let parked = get_u32(r)?;
        let free_bytes = get_u64(r)?;
        let served = get_u64(r)?;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let draining = match flag[0] {
            0 => false,
            1 => true,
            _ => return Err(bad("heartbeat draining flag must be 0 or 1")),
        };
        let count = get_u32(r)? as usize;
        if count > MAX_SESSIONS {
            return Err(bad("heartbeat session list over the wire cap"));
        }
        let mut sessions = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            sessions.push(get_u64(r)?);
        }
        Ok(Heartbeat {
            live_sessions,
            parked,
            free_bytes,
            served,
            draining,
            sessions,
        })
    }
}

/// An order the broker piggybacks on a heartbeat reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerCommand {
    /// Quiesce `session` at its next frame boundary and ship its context
    /// snapshot to the daemon listening at `target`.
    MigrateOut { session: u64, target: String },
}

const CMD_MIGRATE_OUT: u32 = 1;

impl BrokerCommand {
    fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        match self {
            BrokerCommand::MigrateOut { session, target } => {
                put_u32(w, CMD_MIGRATE_OUT)?;
                put_u64(w, *session)?;
                put_str(w, target)
            }
        }
    }

    fn read<R: Read>(r: &mut R) -> io::Result<BrokerCommand> {
        match get_u32(r)? {
            CMD_MIGRATE_OUT => Ok(BrokerCommand::MigrateOut {
                session: get_u64(r)?,
                target: get_str(r)?,
            }),
            _ => Err(bad("unknown broker command")),
        }
    }
}

/// Broker → daemon answer to a heartbeat.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeartbeatReply {
    pub commands: Vec<BrokerCommand>,
}

impl HeartbeatReply {
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if self.commands.len() > MAX_COMMANDS {
            return Err(bad("heartbeat reply command list over the wire cap"));
        }
        put_u32(w, self.commands.len() as u32)?;
        for c in &self.commands {
            c.write(w)?;
        }
        Ok(())
    }

    pub fn read<R: Read>(r: &mut R) -> io::Result<HeartbeatReply> {
        let count = get_u32(r)? as usize;
        if count > MAX_COMMANDS {
            return Err(bad("heartbeat reply command list over the wire cap"));
        }
        let mut commands = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            commands.push(BrokerCommand::read(r)?);
        }
        Ok(HeartbeatReply { commands })
    }
}

/// Client → broker: where should this session run? `session == 0` means the
/// client has no resume token yet (fresh placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceRequest {
    pub session: u64,
}

impl PlaceRequest {
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        put_u64(w, self.session)
    }

    pub fn read<R: Read>(r: &mut R) -> io::Result<PlaceRequest> {
        Ok(PlaceRequest {
            session: get_u64(r)?,
        })
    }
}

/// Broker → client: candidate daemon addresses, best first. Empty means no
/// daemon is currently alive and placeable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlaceReply {
    pub addrs: Vec<String>,
}

impl PlaceReply {
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if self.addrs.len() > MAX_ADDRS {
            return Err(bad("placement reply address list over the wire cap"));
        }
        put_u32(w, self.addrs.len() as u32)?;
        for a in &self.addrs {
            put_str(w, a)?;
        }
        Ok(())
    }

    pub fn read<R: Read>(r: &mut R) -> io::Result<PlaceReply> {
        let count = get_u32(r)? as usize;
        if count > MAX_ADDRS {
            return Err(bad("placement reply address list over the wire cap"));
        }
        let mut addrs = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            addrs.push(get_str(r)?);
        }
        Ok(PlaceReply { addrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip<T, W, R>(value: &T, write: W, read: R) -> T
    where
        W: Fn(&T, &mut Vec<u8>) -> io::Result<()>,
        R: Fn(&mut Cursor<&[u8]>) -> io::Result<T>,
    {
        let mut wire = Vec::new();
        write(value, &mut wire).unwrap();
        let mut cur = Cursor::new(wire.as_slice());
        let got = read(&mut cur).unwrap();
        assert_eq!(cur.position() as usize, wire.len(), "trailing wire bytes");
        got
    }

    #[test]
    fn hellos_round_trip() {
        for hello in [
            BrokerHello::Daemon {
                addr: "10.0.0.7:9991".into(),
                capacity: 1 << 32,
            },
            BrokerHello::Client,
        ] {
            let got = round_trip(&hello, |v, w| v.write(w), |r| BrokerHello::read(r));
            assert_eq!(got, hello);
        }
    }

    #[test]
    fn heartbeat_round_trips_with_session_list() {
        let hb = Heartbeat {
            live_sessions: 3,
            parked: 1,
            free_bytes: 123_456_789,
            served: 42,
            draining: true,
            sessions: vec![0xDEAD_BEEF, 7, u64::MAX],
        };
        let got = round_trip(&hb, |v, w| v.write(w), |r| Heartbeat::read(r));
        assert_eq!(got, hb);
    }

    #[test]
    fn heartbeat_reply_carries_commands() {
        let reply = HeartbeatReply {
            commands: vec![BrokerCommand::MigrateOut {
                session: 99,
                target: "127.0.0.1:4000".into(),
            }],
        };
        let got = round_trip(&reply, |v, w| v.write(w), |r| HeartbeatReply::read(r));
        assert_eq!(got, reply);
        let empty = HeartbeatReply::default();
        let got = round_trip(&empty, |v, w| v.write(w), |r| HeartbeatReply::read(r));
        assert!(got.commands.is_empty());
    }

    #[test]
    fn placement_round_trips() {
        let req = PlaceRequest { session: 0 };
        assert_eq!(
            round_trip(&req, |v, w| v.write(w), |r| PlaceRequest::read(r)),
            req
        );
        let reply = PlaceReply {
            addrs: vec!["a:1".into(), "b:2".into(), "c:3".into()],
        };
        assert_eq!(
            round_trip(&reply, |v, w| v.write(w), |r| PlaceReply::read(r)),
            reply
        );
    }

    #[test]
    fn malformed_inputs_are_rejected_not_trusted() {
        // Unknown role.
        let mut wire = Vec::new();
        put_u32(&mut wire, 77).unwrap();
        assert!(BrokerHello::read(&mut Cursor::new(wire.as_slice())).is_err());

        // Address length over the cap must fail before allocating.
        let mut wire = Vec::new();
        put_u32(&mut wire, ROLE_DAEMON).unwrap();
        put_u32(&mut wire, u32::MAX).unwrap();
        assert!(BrokerHello::read(&mut Cursor::new(wire.as_slice())).is_err());

        // Non-UTF-8 address.
        let mut wire = Vec::new();
        put_u32(&mut wire, ROLE_DAEMON).unwrap();
        put_u32(&mut wire, 2).unwrap();
        wire.extend_from_slice(&[0xFF, 0xFE]);
        put_u64(&mut wire, 0).unwrap();
        assert!(BrokerHello::read(&mut Cursor::new(wire.as_slice())).is_err());

        // Draining flag must be strictly boolean.
        let hb = Heartbeat {
            live_sessions: 0,
            parked: 0,
            free_bytes: 0,
            served: 0,
            draining: false,
            sessions: vec![],
        };
        let mut wire = Vec::new();
        hb.write(&mut wire).unwrap();
        wire[24] = 9; // the draining byte
        assert!(Heartbeat::read(&mut Cursor::new(wire.as_slice())).is_err());

        // Session count over the cap.
        let mut wire = Vec::new();
        put_u32(&mut wire, 0).unwrap();
        put_u32(&mut wire, 0).unwrap();
        put_u64(&mut wire, 0).unwrap();
        put_u64(&mut wire, 0).unwrap();
        wire.push(0);
        put_u32(&mut wire, u32::MAX).unwrap();
        assert!(Heartbeat::read(&mut Cursor::new(wire.as_slice())).is_err());

        // Unknown command tag.
        let mut wire = Vec::new();
        put_u32(&mut wire, 1).unwrap();
        put_u32(&mut wire, 999).unwrap();
        assert!(HeartbeatReply::read(&mut Cursor::new(wire.as_slice())).is_err());

        // Truncated placement reply.
        let mut wire = Vec::new();
        put_u32(&mut wire, 3).unwrap();
        put_str(&mut wire, "only-one:1").unwrap();
        assert!(PlaceReply::read(&mut Cursor::new(wire.as_slice())).is_err());
    }
}
