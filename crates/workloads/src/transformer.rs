//! Transformer-block microbenchmark: a GEMM chain interleaved with the
//! softmax/layernorm kernels, phased like the paper's case studies.
//!
//! Each layer computes `X ← X + softmax(layernorm(X)·W1)·W2` — the shape of
//! a feed-forward transformer block (with the softmax standing in for the
//! attention normalization so the whole chain runs on the four builtin
//! kernels: `layernorm_rows`, `sgemmNN`, `softmax_rows`, `vec_add`). The
//! driver brackets every phase with an [`Op::Phase`] marker span, so a
//! `Recorder`'s `phase_rows()` yields the per-phase call counts and byte
//! totals the extended §V model prices.
//!
//! [`reference_transformer`] executes the same chain with the same kernel
//! functions on the host, so a functional remote session must return a
//! bit-identical output.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rcuda_api::CudaRuntime;
use rcuda_core::{ArgPack, Clock, CudaResult, Dim3, SimTime};
use rcuda_gpu::module::build_module;
use rcuda_kernels::{layernorm_rows, sgemm_tiled_gpu, softmax_rows};
use rcuda_obs::{CallSpan, ObsHandle, Op};

/// Layer-normalization epsilon shared by driver and reference.
pub const LN_EPS: f32 = 1e-5;

/// Problem shape of the transformer-block microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Sequence length (rows of `X`).
    pub seq: usize,
    /// Model width (columns of `X`).
    pub d_model: usize,
    /// Feed-forward width (columns of `H1`).
    pub d_ff: usize,
    /// Number of stacked layers.
    pub layers: usize,
    /// Seed for inputs and weights.
    pub seed: u64,
}

impl TransformerConfig {
    /// Small shape for fast-mode harness runs and tests.
    pub fn small(seed: u64) -> Self {
        TransformerConfig {
            seq: 24,
            d_model: 32,
            d_ff: 48,
            layers: 2,
            seed,
        }
    }

    /// The default benchmark shape.
    pub fn bench(seed: u64) -> Self {
        TransformerConfig {
            seq: 64,
            d_model: 128,
            d_ff: 256,
            layers: 4,
            seed,
        }
    }

    fn x_len(&self) -> usize {
        self.seq * self.d_model
    }
}

/// Deterministic inputs: activation matrix plus shared per-layer weights.
pub struct TransformerData {
    /// `seq × d_model` activations.
    pub x: Vec<f32>,
    /// `d_model × d_ff` up-projection.
    pub w1: Vec<f32>,
    /// `d_ff × d_model` down-projection.
    pub w2: Vec<f32>,
    /// Per-column layernorm scale (`d_model`).
    pub gamma: Vec<f32>,
    /// Per-column layernorm shift (`d_model`).
    pub beta: Vec<f32>,
}

/// Generate the seeded inputs for `cfg`.
pub fn transformer_inputs(cfg: &TransformerConfig) -> TransformerData {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut mat = |len: usize, scale: f32| -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-scale..scale)).collect()
    };
    TransformerData {
        x: mat(cfg.seq * cfg.d_model, 1.0),
        // Small weights keep the chain numerically tame across layers.
        w1: mat(cfg.d_model * cfg.d_ff, 0.25),
        w2: mat(cfg.d_ff * cfg.d_model, 0.25),
        gamma: mat(cfg.d_model, 1.0),
        beta: mat(cfg.d_model, 0.5),
    }
}

/// Host reference: the same layer chain through the same kernel functions
/// the device registry executes, so the result is bit-identical.
pub fn reference_transformer(cfg: &TransformerConfig) -> Vec<f32> {
    let d = transformer_inputs(cfg);
    let mut x = d.x;
    for _ in 0..cfg.layers {
        let mut ln = x.clone();
        layernorm_rows(cfg.seq, cfg.d_model, &mut ln, &d.gamma, &d.beta, LN_EPS);
        let mut h1 = vec![0.0f32; cfg.seq * cfg.d_ff];
        sgemm_tiled_gpu(cfg.seq, cfg.d_ff, cfg.d_model, &ln, &d.w1, &mut h1);
        softmax_rows(cfg.seq, cfg.d_ff, &mut h1);
        let mut h2 = vec![0.0f32; cfg.seq * cfg.d_model];
        sgemm_tiled_gpu(cfg.seq, cfg.d_model, cfg.d_ff, &h1, &d.w2, &mut h2);
        for (xi, h) in x.iter_mut().zip(&h2) {
            *xi += h;
        }
    }
    x
}

fn f32_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_f32(v: &[u8]) -> Vec<f32> {
    v.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Emit a phase-marker span covering `[start, now)` and return `now`.
pub(crate) fn mark_phase(
    obs: &ObsHandle,
    clock: &dyn Clock,
    name: &'static str,
    start: SimTime,
) -> SimTime {
    let end = clock.now();
    obs.emit_call(&CallSpan {
        op: Op::Phase(name),
        bytes_sent: 0,
        bytes_received: 0,
        start,
        end,
        retries: 0,
    });
    end
}

/// Drive the transformer block through `rt`, bracketing the phases
/// `init` / `weights` / `input` / `block` / `output` with marker spans on
/// `obs`. Returns the final activations (bit-identical to
/// [`reference_transformer`] on a functional backend).
pub fn run_transformer(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    obs: &ObsHandle,
    cfg: &TransformerConfig,
) -> CudaResult<Vec<f32>> {
    assert!(
        cfg.seq > 0 && cfg.d_model > 0 && cfg.d_ff > 0 && cfg.layers > 0,
        "degenerate transformer shape"
    );
    let d = transformer_inputs(cfg);
    let x_bytes = (cfg.x_len() * 4) as u32;
    let h1_bytes = (cfg.seq * cfg.d_ff * 4) as u32;
    let col_bytes = (cfg.d_model * 4) as u32;

    let mut t = clock.now();
    rt.initialize(&build_module(
        &["sgemmNN", "softmax_rows", "layernorm_rows", "vec_add"],
        0,
    ))?;
    rt.thread_synchronize()?;
    t = mark_phase(obs, clock, "init", t);

    let px = rt.malloc(x_bytes)?;
    let pln = rt.malloc(x_bytes)?;
    let ph1 = rt.malloc(h1_bytes)?;
    let ph2 = rt.malloc(x_bytes)?;
    let pw1 = rt.malloc((cfg.d_model * cfg.d_ff * 4) as u32)?;
    let pw2 = rt.malloc((cfg.d_ff * cfg.d_model * 4) as u32)?;
    let pgamma = rt.malloc(col_bytes)?;
    let pbeta = rt.malloc(col_bytes)?;
    rt.memcpy_h2d(pw1, &f32_bytes(&d.w1))?;
    rt.memcpy_h2d(pw2, &f32_bytes(&d.w2))?;
    rt.memcpy_h2d(pgamma, &f32_bytes(&d.gamma))?;
    rt.memcpy_h2d(pbeta, &f32_bytes(&d.beta))?;
    rt.thread_synchronize()?;
    t = mark_phase(obs, clock, "weights", t);

    rt.memcpy_h2d(px, &f32_bytes(&d.x))?;
    rt.thread_synchronize()?;
    t = mark_phase(obs, clock, "input", t);

    let grid = Dim3::x((cfg.seq as u32).div_ceil(4).max(1));
    let block = Dim3::x(64);
    for _ in 0..cfg.layers {
        rt.memcpy_d2d(pln, px, x_bytes)?;
        let args = ArgPack::new()
            .push_ptr(pln)
            .push_ptr(pgamma)
            .push_ptr(pbeta)
            .push_u32(cfg.seq as u32)
            .push_u32(cfg.d_model as u32)
            .push_f32(LN_EPS)
            .into_bytes();
        rt.launch("layernorm_rows", grid, block, 0, 0, &args)?;
        let args = ArgPack::new()
            .push_ptr(pln)
            .push_ptr(pw1)
            .push_ptr(ph1)
            .push_u32(cfg.seq as u32)
            .push_u32(cfg.d_ff as u32)
            .push_u32(cfg.d_model as u32)
            .into_bytes();
        rt.launch("sgemmNN", grid, block, 0, 0, &args)?;
        let args = ArgPack::new()
            .push_ptr(ph1)
            .push_u32(cfg.seq as u32)
            .push_u32(cfg.d_ff as u32)
            .into_bytes();
        rt.launch("softmax_rows", grid, block, 0, 0, &args)?;
        let args = ArgPack::new()
            .push_ptr(ph1)
            .push_ptr(pw2)
            .push_ptr(ph2)
            .push_u32(cfg.seq as u32)
            .push_u32(cfg.d_model as u32)
            .push_u32(cfg.d_ff as u32)
            .into_bytes();
        rt.launch("sgemmNN", grid, block, 0, 0, &args)?;
        let args = ArgPack::new()
            .push_ptr(px)
            .push_ptr(ph2)
            .push_ptr(px)
            .push_u32(cfg.x_len() as u32)
            .into_bytes();
        rt.launch("vec_add", grid, block, 0, 0, &args)?;
    }
    rt.thread_synchronize()?;
    t = mark_phase(obs, clock, "block", t);

    let out = rt.memcpy_d2h(px, x_bytes)?;
    for p in [px, pln, ph1, ph2, pw1, pw2, pgamma, pbeta] {
        rt.free(p)?;
    }
    rt.finalize()?;
    mark_phase(obs, clock, "output", t);

    Ok(bytes_f32(&out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::LocalRuntime;
    use rcuda_core::time::wall_clock;
    use rcuda_gpu::GpuDevice;
    use rcuda_obs::Recorder;

    #[test]
    fn local_run_matches_the_reference_bitwise() {
        let clock = wall_clock();
        let mut rt = LocalRuntime::new(GpuDevice::tesla_c1060_functional(), clock.clone());
        let cfg = TransformerConfig::small(7);
        let got = run_transformer(&mut rt, &*clock, &ObsHandle::none(), &cfg).unwrap();
        assert_eq!(got, reference_transformer(&cfg));
    }

    #[test]
    fn reference_is_deterministic_per_seed_and_finite() {
        let cfg = TransformerConfig::small(11);
        let a = reference_transformer(&cfg);
        let b = reference_transformer(&cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
        let other = reference_transformer(&TransformerConfig::small(12));
        assert_ne!(a, other, "distinct seeds produce distinct activations");
    }

    #[test]
    fn phase_markers_cover_every_call() {
        let rec = Recorder::new();
        let mut sess = crate::sessions::channel_session(rec.handle(), 0);
        let clock = sess.clock.clone();
        let cfg = TransformerConfig::small(3);
        run_transformer(&mut sess.runtime, &*clock, &rec.handle(), &cfg).unwrap();
        sess.finish();
        let report = rec.report();
        let rows = report.phase_rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["init", "weights", "input", "block", "output"]);
        // Every non-marker span lands in exactly one phase window.
        let phased: u64 = rows.iter().map(|(_, s)| s.calls).sum();
        let spans = report
            .spans
            .iter()
            .filter(|s| s.op.as_phase().is_none())
            .count() as u64;
        assert_eq!(phased, spans, "no call escapes its phase");
        // The block phase carries the launches: 5 per layer plus the sync.
        let block = rows.iter().find(|(n, _)| *n == "block").unwrap().1;
        assert_eq!(block.calls, 5 * cfg.layers as u64 + cfg.layers as u64 + 1);
    }
}
