//! AI-inference workload suite with closed-loop §V model validation.
//!
//! The paper validates its estimation model (§V) on two bulk-transfer case
//! studies — MM and FFT — whose traffic is a handful of large copies. This
//! crate adds the workload family the model was *not* built for, then closes
//! the loop on the extended model of `rcuda_model::workloads`:
//!
//! * [`transformer`] — a transformer-block microbenchmark: a GEMM chain
//!   interleaved with the row-wise softmax/layernorm kernels of
//!   `rcuda_kernels::transformer`, driven through the pipelined client with
//!   one [`rcuda_obs::Op::Phase`] marker span per phase.
//! * [`smallcalls`] — a batched-small-calls stress profile: thousands of
//!   sub-4 KiB launches and memcpys, the call-rate-bound regime where
//!   per-message latency (not bandwidth) dominates.
//! * [`traffic`] — a seeded open/closed-loop traffic generator: Poisson
//!   arrivals over configurable tenant personas (echoing the chaos species
//!   of the multi-tenant soak suite), replayable against an in-process
//!   session or the sharded reactor daemon.
//!
//! [`harness`] ties them together: each workload is measured on the
//! simulated network and over loopback TCP against a live daemon, estimated
//! by the extended model (call-rate terms priced per round trip, queueing
//! wait under concurrency), and the relative error is asserted under a
//! per-workload bound. [`calibrate`] fits the loopback-TCP link model the
//! TCP estimates price against.

pub mod calibrate;
pub mod harness;
pub mod sessions;
pub mod smallcalls;
pub mod traffic;
pub mod transformer;

pub use calibrate::{calibrate_channel, calibrate_loopback, CalibratedLink};
pub use harness::{run_sim_rows, run_suite, SuiteConfig, SuiteReport, ValidationRow};
pub use sessions::{channel_session, sim_session, HarnessChannelSession, HarnessSimSession};
pub use smallcalls::{run_smallcalls, SmallCallsConfig};
pub use traffic::{
    build_schedule, replay_closed_loop, replay_open_loop, Arrival, Persona, Schedule,
    TrafficConfig, TrafficOp,
};
pub use transformer::{reference_transformer, run_transformer, TransformerConfig};
