//! Seeded open/closed-loop traffic generator over tenant personas.
//!
//! Tenants are drawn from the persona catalog of the multi-tenant soak
//! suite (well-behaved, chatty, greedy, leaky); each persona shapes an
//! operation mix and payload sizes. A [`Schedule`] is built *once*,
//! deterministically from the seed — Poisson arrivals (exponential
//! inter-arrival times) per tenant, merged by arrival time — and can then
//! be replayed two ways:
//!
//! * **closed loop** ([`replay_closed_loop`]): each tenant issues its
//!   operation sequence back-to-back, the next call leaving when the
//!   previous one returns — the regime the paper's synchronous protocol
//!   (§III) and the closed-loop wait term of the extended model describe;
//! * **open loop** ([`replay_open_loop`]): operations are released at their
//!   scheduled arrival instants on a virtual clock, so queueing builds up
//!   when service lags the arrival rate.
//!
//! Determinism contract (property-tested): the same seed yields an
//! identical schedule — same arrival instants, same per-tenant operation
//! sequence — and distinct seeds diverge.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rcuda_api::CudaRuntime;
use rcuda_core::{ArgPack, Clock, CudaResult, DevicePtr, Dim3, SimTime};
use rcuda_gpu::module::build_module;
use rcuda_obs::ObsHandle;

use crate::transformer::mark_phase;

/// Tenant species, echoing the chaos personas of the server soak suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persona {
    /// Balanced mix of moderate allocations, copies, and launches; frees
    /// everything it allocates.
    WellBehaved,
    /// Many tiny copies and launches — a call-rate-bound tenant.
    Chatty,
    /// Few, large allocations and copies — a bandwidth-bound tenant.
    Greedy,
    /// Allocates and never frees (bounded), leaning on the server's
    /// reclamation ledger.
    Leaky,
}

impl Persona {
    /// Every persona, in catalog order.
    pub fn all() -> [Persona; 4] {
        [
            Persona::WellBehaved,
            Persona::Chatty,
            Persona::Greedy,
            Persona::Leaky,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Persona::WellBehaved => "well-behaved",
            Persona::Chatty => "chatty",
            Persona::Greedy => "greedy",
            Persona::Leaky => "leaky",
        }
    }

    /// Payload bounds `(min, max)` for this persona's copies, bytes.
    fn payload_range(self) -> (u32, u32) {
        match self {
            Persona::WellBehaved => (256, 16 << 10),
            Persona::Chatty => (16, 1 << 10),
            Persona::Greedy => (256 << 10, 1 << 20),
            Persona::Leaky => (4 << 10, 64 << 10),
        }
    }

    /// Draw one operation for this persona.
    fn draw_op(self, rng: &mut StdRng, live_allocs: usize) -> TrafficOp {
        let (lo, hi) = self.payload_range();
        let size = rng.gen_range(lo..=hi) & !3; // word-aligned
        let roll = rng.gen_range(0u32..100);
        match self {
            Persona::WellBehaved => match roll {
                0..=19 => TrafficOp::Malloc(size),
                20..=44 => TrafficOp::H2D(size),
                45..=69 => TrafficOp::D2H(size),
                70..=84 => TrafficOp::Launch,
                _ if live_allocs > 1 => TrafficOp::Free,
                _ => TrafficOp::Launch,
            },
            Persona::Chatty => match roll {
                0..=4 => TrafficOp::Malloc(size),
                5..=44 => TrafficOp::H2D(size),
                45..=84 => TrafficOp::D2H(size),
                _ => TrafficOp::Launch,
            },
            Persona::Greedy => match roll {
                0..=24 => TrafficOp::Malloc(size),
                25..=59 => TrafficOp::H2D(size),
                60..=84 => TrafficOp::D2H(size),
                _ if live_allocs > 1 => TrafficOp::Free,
                _ => TrafficOp::Launch,
            },
            Persona::Leaky => match roll {
                0..=29 => TrafficOp::Malloc(size),
                30..=59 => TrafficOp::H2D(size),
                60..=84 => TrafficOp::D2H(size),
                _ => TrafficOp::Launch,
            },
        }
    }
}

/// One CUDA operation in a tenant's stream. Copies and launches target the
/// tenant's most recent allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficOp {
    /// Allocate `size` bytes (becomes the current buffer).
    Malloc(u32),
    /// Free the current buffer (skipped if none is live).
    Free,
    /// Copy `size` bytes host → device (clamped to the current buffer).
    H2D(u32),
    /// Copy `size` bytes device → host (clamped to the current buffer).
    D2H(u32),
    /// A `fill` launch over the current buffer.
    Launch,
}

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant on the schedule's virtual timeline.
    pub at: SimTime,
    /// Index into the tenant list.
    pub tenant: usize,
    /// Position within the tenant's own sequence.
    pub seq: usize,
    /// The operation.
    pub op: TrafficOp,
}

/// A deterministic multi-tenant schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// All arrivals, sorted by time (ties broken by tenant index).
    pub arrivals: Vec<Arrival>,
    /// The tenant personas, in index order.
    pub tenants: Vec<Persona>,
}

impl Schedule {
    /// The operation sequence of one tenant, in arrival order.
    pub fn tenant_ops(&self, tenant: usize) -> Vec<TrafficOp> {
        self.arrivals
            .iter()
            .filter(|a| a.tenant == tenant)
            .map(|a| a.op)
            .collect()
    }

    /// Arrivals of one tenant, in order.
    pub fn tenant_arrivals(&self, tenant: usize) -> Vec<Arrival> {
        self.arrivals
            .iter()
            .copied()
            .filter(|a| a.tenant == tenant)
            .collect()
    }
}

/// Traffic-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Tenant mix.
    pub tenants: Vec<Persona>,
    /// Operations per tenant.
    pub ops_per_tenant: usize,
    /// Mean arrival rate per tenant, operations per second (Poisson).
    pub rate_per_s: f64,
    /// Master seed; every tenant derives its own stream from it.
    pub seed: u64,
}

impl TrafficConfig {
    /// Fast-mode mix: one tenant per persona, a short stream each.
    pub fn small(seed: u64) -> Self {
        TrafficConfig {
            tenants: Persona::all().to_vec(),
            ops_per_tenant: 40,
            rate_per_s: 2_000.0,
            seed,
        }
    }
}

/// Build the deterministic schedule for `cfg`: per-tenant exponential
/// inter-arrival draws (rate `cfg.rate_per_s`) and persona-shaped
/// operations, merged into one timeline.
pub fn build_schedule(cfg: &TrafficConfig) -> Schedule {
    assert!(!cfg.tenants.is_empty(), "at least one tenant");
    assert!(cfg.rate_per_s > 0.0, "arrival rate must be positive");
    let mut arrivals = Vec::with_capacity(cfg.tenants.len() * cfg.ops_per_tenant);
    for (tenant, persona) in cfg.tenants.iter().enumerate() {
        // Independent stream per tenant: same master seed, disjoint
        // substreams (SplitMix64 walks the whole 2^64 state space, so a
        // large odd stride keeps streams far apart).
        let sub = cfg
            .seed
            .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(sub);
        let mut t = 0.0f64;
        let mut live = 1usize; // replay pre-opens one buffer
        for seq in 0..cfg.ops_per_tenant {
            // Exponential inter-arrival: -ln(1 - U) / λ.
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / cfg.rate_per_s;
            let op = persona.draw_op(&mut rng, live);
            match op {
                TrafficOp::Malloc(_) => live += 1,
                TrafficOp::Free => live = live.saturating_sub(1),
                _ => {}
            }
            arrivals.push(Arrival {
                at: SimTime::from_secs_f64(t),
                tenant,
                seq,
                op,
            });
        }
    }
    arrivals.sort_by_key(|a| (a.at, a.tenant, a.seq));
    Schedule {
        arrivals,
        tenants: cfg.tenants.clone(),
    }
}

/// Replay state for one tenant: a stack of live allocations, copies and
/// launches targeting the top.
struct TenantState {
    ptrs: Vec<(DevicePtr, u32)>,
    buf: Vec<u8>,
}

impl TenantState {
    fn open(rt: &mut dyn CudaRuntime) -> CudaResult<Self> {
        rt.initialize(&build_module(&["fill"], 0))?;
        // A guaranteed buffer so copies/launches always have a target.
        let base = rt.malloc(4096)?;
        Ok(TenantState {
            ptrs: vec![(base, 4096)],
            buf: Vec::new(),
        })
    }

    fn step(&mut self, rt: &mut dyn CudaRuntime, op: TrafficOp) -> CudaResult<()> {
        match op {
            TrafficOp::Malloc(size) => {
                let p = rt.malloc(size.max(4))?;
                self.ptrs.push((p, size.max(4)));
            }
            TrafficOp::Free => {
                // Keep the base buffer alive.
                if self.ptrs.len() > 1 {
                    let (p, _) = self.ptrs.pop().expect("len checked");
                    rt.free(p)?;
                }
            }
            TrafficOp::H2D(size) => {
                let &(p, cap) = self.ptrs.last().expect("base buffer");
                let n = size.clamp(4, cap) as usize;
                if self.buf.len() < n {
                    self.buf.resize(n, 0x5A);
                }
                rt.memcpy_h2d(p, &self.buf[..n])?;
            }
            TrafficOp::D2H(size) => {
                let &(p, cap) = self.ptrs.last().expect("base buffer");
                let n = size.clamp(4, cap);
                rt.memcpy_d2h(p, n)?;
            }
            TrafficOp::Launch => {
                let &(p, cap) = self.ptrs.last().expect("base buffer");
                let args = ArgPack::new()
                    .push_ptr(p)
                    .push_u32(cap / 4)
                    .push_f32(1.5)
                    .into_bytes();
                rt.launch("fill", Dim3::x(1), Dim3::x(64), 0, 0, &args)?;
            }
        }
        Ok(())
    }

    fn close(mut self, rt: &mut dyn CudaRuntime) -> CudaResult<()> {
        while let Some((p, _)) = self.ptrs.pop() {
            rt.free(p)?;
        }
        rt.finalize()
    }
}

/// Replay one tenant's operation sequence back-to-back (closed loop) on
/// `rt`, bracketed by a phase marker named after the tenant's persona slot.
pub fn replay_closed_loop(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    obs: &ObsHandle,
    phase: &'static str,
    ops: &[TrafficOp],
) -> CudaResult<()> {
    let t = clock.now();
    let mut state = TenantState::open(rt)?;
    for &op in ops {
        state.step(rt, op)?;
    }
    state.close(rt)?;
    mark_phase(obs, clock, phase, t);
    Ok(())
}

/// Replay one tenant's arrivals at their scheduled instants on a *virtual*
/// clock: if an operation's arrival lies in the future, the clock jumps
/// there first (idle time); if service lags, operations queue back-to-back
/// — open-loop semantics.
pub fn replay_open_loop(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    obs: &ObsHandle,
    phase: &'static str,
    arrivals: &[Arrival],
) -> CudaResult<()> {
    assert!(
        clock.is_virtual(),
        "open-loop replay paces a virtual clock; use replay_closed_loop on wall clocks"
    );
    let t = clock.now();
    let mut state = TenantState::open(rt)?;
    for a in arrivals {
        let now = clock.now();
        if a.at > now {
            clock.advance(a.at.saturating_sub(now));
        }
        state.step(rt, a.op)?;
    }
    state.close(rt)?;
    mark_phase(obs, clock, phase, t);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::LocalRuntime;
    use rcuda_core::time::wall_clock;
    use rcuda_gpu::GpuDevice;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = TrafficConfig::small(42);
        assert_eq!(build_schedule(&cfg), build_schedule(&cfg));
        let other = TrafficConfig::small(43);
        assert_ne!(build_schedule(&cfg), build_schedule(&other));
    }

    #[test]
    fn arrivals_are_sorted_and_complete() {
        let cfg = TrafficConfig::small(7);
        let s = build_schedule(&cfg);
        assert_eq!(s.arrivals.len(), cfg.tenants.len() * cfg.ops_per_tenant);
        assert!(s.arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        for tenant in 0..cfg.tenants.len() {
            let ops = s.tenant_ops(tenant);
            assert_eq!(ops.len(), cfg.ops_per_tenant);
            // Per-tenant sequence positions stay ordered after the merge.
            let seqs: Vec<usize> = s
                .arrivals
                .iter()
                .filter(|a| a.tenant == tenant)
                .map(|a| a.seq)
                .collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn personas_shape_the_mix() {
        let cfg = TrafficConfig {
            tenants: vec![Persona::Chatty, Persona::Greedy],
            ops_per_tenant: 200,
            rate_per_s: 1000.0,
            seed: 3,
        };
        let s = build_schedule(&cfg);
        let max_copy = |tenant: usize| {
            s.tenant_ops(tenant)
                .iter()
                .filter_map(|op| match op {
                    TrafficOp::H2D(n) | TrafficOp::D2H(n) => Some(*n),
                    _ => None,
                })
                .max()
                .unwrap()
        };
        assert!(max_copy(0) <= 1 << 10, "chatty stays tiny");
        assert!(max_copy(1) >= 256 << 10, "greedy goes big");
    }

    #[test]
    fn closed_loop_replay_runs_clean_on_a_local_runtime() {
        let clock = wall_clock();
        let cfg = TrafficConfig::small(11);
        let s = build_schedule(&cfg);
        for (tenant, persona) in cfg.tenants.iter().enumerate() {
            let mut rt = LocalRuntime::new(GpuDevice::tesla_c1060_functional(), clock.clone());
            replay_closed_loop(
                &mut rt,
                &*clock,
                &ObsHandle::none(),
                persona.name(),
                &s.tenant_ops(tenant),
            )
            .unwrap();
        }
    }

    #[test]
    fn open_loop_replay_paces_the_virtual_clock() {
        use rcuda_core::time::virtual_clock;
        let clock = virtual_clock();
        let mut rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
        let cfg = TrafficConfig {
            tenants: vec![Persona::WellBehaved],
            ops_per_tenant: 10,
            rate_per_s: 100.0,
            seed: 5,
        };
        let s = build_schedule(&cfg);
        let arrivals = s.tenant_arrivals(0);
        let last = arrivals.last().unwrap().at;
        replay_open_loop(&mut rt, &*clock, &ObsHandle::none(), "open", &arrivals).unwrap();
        use rcuda_core::Clock as _;
        assert!(
            clock.now() >= last,
            "the clock reached the final arrival instant"
        );
    }
}
