//! Batched-small-calls stress profile: the call-rate-bound regime.
//!
//! Thousands of sub-4 KiB launches and memcpys against a small device
//! buffer. Each operation's payload is far below the size where bandwidth
//! matters, so the run's cost is dominated by per-message latency — the
//! regime the paper's bulk-transfer arithmetic (§V) cannot price and the
//! extended model's call-rate term exists for. Phases are bracketed with
//! [`rcuda_obs::Op::Phase`] markers: `init`, `churn`, `cleanup`.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rcuda_api::CudaRuntime;
use rcuda_core::{ArgPack, Clock, CudaResult, Dim3};
use rcuda_gpu::module::build_module;
use rcuda_obs::ObsHandle;

use crate::transformer::mark_phase;

/// Shape of the small-calls stress run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmallCallsConfig {
    /// Churn iterations; each issues an H2D copy, a `fill` launch, and a
    /// D2H copy (three synchronous round trips).
    pub iterations: usize,
    /// Upper payload bound per copy, bytes (kept under 4 KiB).
    pub max_payload: u32,
    /// Seed for the payload-size draws.
    pub seed: u64,
}

impl SmallCallsConfig {
    /// Fast-mode shape.
    pub fn small(seed: u64) -> Self {
        SmallCallsConfig {
            iterations: 150,
            max_payload: 2048,
            seed,
        }
    }

    /// Default benchmark shape: thousands of sub-4 KiB calls.
    pub fn bench(seed: u64) -> Self {
        SmallCallsConfig {
            iterations: 1_000,
            max_payload: 4_096,
            seed,
        }
    }

    /// Synchronous calls the churn phase issues (3 per iteration).
    pub fn churn_calls(&self) -> u64 {
        3 * self.iterations as u64
    }
}

/// Drive the stress profile through `rt`. Returns a checksum of every byte
/// read back, so functional backends can be compared for identity.
pub fn run_smallcalls(
    rt: &mut dyn CudaRuntime,
    clock: &dyn Clock,
    obs: &ObsHandle,
    cfg: &SmallCallsConfig,
) -> CudaResult<u64> {
    assert!(cfg.iterations > 0, "empty stress run");
    assert!(
        (4..=4096).contains(&cfg.max_payload),
        "payloads must stay sub-4 KiB (got {})",
        cfg.max_payload
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut t = clock.now();
    rt.initialize(&build_module(&["fill"], 0))?;
    let p = rt.malloc(cfg.max_payload)?;
    t = mark_phase(obs, clock, "init", t);

    let mut checksum = 0u64;
    let mut buf = vec![0u8; cfg.max_payload as usize];
    for i in 0..cfg.iterations {
        // Word-aligned payload in [4, max_payload]: the fill kernel writes
        // whole f32 slots.
        let words = rng.gen_range(1..=(cfg.max_payload / 4));
        let bytes = words * 4;
        let pattern = (i % 251) as u8;
        buf[..bytes as usize].fill(pattern);
        rt.memcpy_h2d(p, &buf[..bytes as usize])?;
        let args = ArgPack::new()
            .push_ptr(p)
            .push_u32(words)
            .push_f32(f32::from(pattern))
            .into_bytes();
        rt.launch("fill", Dim3::x(1), Dim3::x(64), 0, 0, &args)?;
        rt.memcpy_d2h_into(p, &mut buf[..bytes as usize])?;
        checksum = buf[..bytes as usize]
            .iter()
            .fold(checksum, |acc, &b| acc.rotate_left(7) ^ u64::from(b));
    }
    t = mark_phase(obs, clock, "churn", t);

    rt.free(p)?;
    rt.finalize()?;
    mark_phase(obs, clock, "cleanup", t);
    Ok(checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::LocalRuntime;
    use rcuda_core::time::wall_clock;
    use rcuda_gpu::GpuDevice;
    use rcuda_obs::Recorder;

    #[test]
    fn checksum_is_deterministic_per_seed() {
        let clock = wall_clock();
        let cfg = SmallCallsConfig {
            iterations: 20,
            max_payload: 256,
            seed: 5,
        };
        let run = |cfg: &SmallCallsConfig| {
            let mut rt = LocalRuntime::new(GpuDevice::tesla_c1060_functional(), clock.clone());
            run_smallcalls(&mut rt, &*clock, &ObsHandle::none(), cfg).unwrap()
        };
        assert_eq!(run(&cfg), run(&cfg));
        let other = SmallCallsConfig { seed: 6, ..cfg };
        assert_ne!(run(&cfg), run(&other), "seed changes the payload stream");
    }

    #[test]
    fn churn_phase_is_call_rate_bound_traffic() {
        let rec = Recorder::new();
        let mut sess = crate::sessions::channel_session(rec.handle(), 0);
        let clock = sess.clock.clone();
        let cfg = SmallCallsConfig {
            iterations: 25,
            max_payload: 512,
            seed: 9,
        };
        run_smallcalls(&mut sess.runtime, &*clock, &rec.handle(), &cfg).unwrap();
        sess.finish();
        let rows = rec.report().phase_rows();
        let names: Vec<&str> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["init", "churn", "cleanup"]);
        let churn = rows.iter().find(|(n, _)| *n == "churn").unwrap().1;
        assert_eq!(churn.calls, cfg.churn_calls());
        // Every payload stays sub-4 KiB.
        let avg = churn.bytes_sent / churn.calls;
        assert!(avg < 4096, "avg request {avg} B");
    }
}
