//! Minimal in-process session plumbing for the harness.
//!
//! The `rcuda` facade's `Session::builder` lives in the root crate, which
//! depends on this one — so the harness assembles its sessions from the
//! same lower-level parts the facade uses: a transport pair, a served GPU
//! context on a thread, and a `RemoteRuntime` on the client end. Both
//! constructors run the device *functionally* (kernels really execute), so
//! remote results stay bit-identical to the CPU reference.

use std::sync::Arc;
use std::thread::JoinHandle;

use rcuda_client::RemoteRuntime;
use rcuda_core::time::{virtual_clock, wall_clock};
use rcuda_core::{SharedClock, VirtualClock};
use rcuda_gpu::GpuDevice;
use rcuda_netsim::NetworkModel;
use rcuda_obs::ObsHandle;
use rcuda_server::{serve_connection, ServerConfig, SessionReport};
use rcuda_transport::{channel_pair, sim_pair, ChannelTransport, SimTransport, Transport};

fn server_config(observer: ObsHandle) -> ServerConfig {
    ServerConfig {
        preinitialize_context: true,
        phantom_memory: false,
        observer,
        ..ServerConfig::default()
    }
}

fn spawn_server<T: Transport + 'static>(
    transport: T,
    clock: SharedClock,
    config: ServerConfig,
) -> JoinHandle<std::io::Result<SessionReport>> {
    let device = GpuDevice::tesla_c1060_functional();
    std::thread::Builder::new()
        .name("rcuda-workload-server".into())
        .spawn(move || serve_connection(transport, &device, clock, &config))
        .expect("spawn workload session server")
}

/// An in-process session over a simulated network on a shared virtual
/// clock: the harness's deterministic measurement rig.
pub struct HarnessSimSession {
    /// Client-side runtime.
    pub runtime: RemoteRuntime<SimTransport>,
    /// The shared virtual clock; `clock.now()` after a run is the simulated
    /// execution time.
    pub clock: Arc<VirtualClock>,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl HarnessSimSession {
    /// Join the server side and return its report.
    pub fn finish(mut self) -> SessionReport {
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

/// A functional in-process session over the network `model`, with
/// `observer` installed on client runtime, transport, and server worker
/// (one recorder sees both sides on the shared virtual clock).
pub fn sim_session(
    model: Arc<dyn NetworkModel>,
    observer: ObsHandle,
    pipeline_depth: usize,
) -> HarnessSimSession {
    let clock = virtual_clock();
    let shared: SharedClock = clock.clone();
    let (client_side, server_side) = sim_pair(model, shared.clone());
    let server = spawn_server(server_side, shared.clone(), server_config(observer.clone()));
    let mut runtime = RemoteRuntime::new(client_side, shared);
    runtime
        .set_pipeline_depth(pipeline_depth)
        .expect("fresh session");
    runtime.set_observer(observer);
    HarnessSimSession {
        runtime,
        clock,
        server: Some(server),
    }
}

/// An in-process session over a channel transport on the wall clock: the
/// harness's near-zero-network baseline for TCP estimates.
pub struct HarnessChannelSession {
    /// Client-side runtime.
    pub runtime: RemoteRuntime<ChannelTransport>,
    /// The session's wall clock. Phase markers must be stamped on *this*
    /// clock — a `WallClock` measures from its own construction instant, so
    /// spans from a different instance would not align with the runtime's.
    pub clock: SharedClock,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl HarnessChannelSession {
    /// Join the server side and return its report.
    pub fn finish(mut self) -> SessionReport {
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

/// A functional in-process channel session (wall clock) with `observer`
/// installed across the stack.
pub fn channel_session(observer: ObsHandle, pipeline_depth: usize) -> HarnessChannelSession {
    let clock: SharedClock = wall_clock();
    let (client_side, server_side) = channel_pair();
    let server = spawn_server(server_side, clock.clone(), server_config(observer.clone()));
    let mut runtime = RemoteRuntime::new(client_side, clock.clone());
    runtime
        .set_pipeline_depth(pipeline_depth)
        .expect("fresh session");
    runtime.set_observer(observer);
    HarnessChannelSession {
        runtime,
        clock,
        server: Some(server),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::CudaRuntime;
    use rcuda_core::Clock as _;
    use rcuda_gpu::module::build_module;
    use rcuda_netsim::NetworkId;

    #[test]
    fn sim_session_round_trips_and_advances_the_clock() {
        let mut sess = sim_session(Arc::from(NetworkId::GigaE.model()), ObsHandle::none(), 0);
        sess.runtime
            .initialize(&build_module(&["fill"], 0))
            .unwrap();
        let p = sess.runtime.malloc(64).unwrap();
        sess.runtime.memcpy_h2d(p, &[5u8; 64]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 64).unwrap(), vec![5u8; 64]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        assert!(sess.clock.now().as_micros_f64() > 0.0);
        let report = sess.finish();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn channel_session_round_trips() {
        let mut sess = channel_session(ObsHandle::none(), 2);
        sess.runtime.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.runtime.malloc(16).unwrap();
        sess.runtime.memcpy_h2d(p, &[9u8; 16]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 16).unwrap(), vec![9u8; 16]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        assert!(sess.finish().orderly_shutdown);
    }
}
