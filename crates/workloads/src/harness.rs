//! Closed-loop §V validation harness: measure, estimate, assert.
//!
//! The paper validates its model (§V, Tables IV–VI) by measuring a case
//! study on one network, extracting the network-independent fixed time,
//! re-pricing the traffic onto a second network, and comparing against a
//! real measurement there. This harness repeats that loop for the three
//! AI-inference workloads, twice per workload:
//!
//! * **sim row** — measured over the simulated GigaE, fixed time extracted
//!   with the extended model (call-rate phases priced per round trip, bulk
//!   phases per transfer), estimated onto 40G InfiniBand, and compared
//!   against a fresh measurement over the simulated 40GI link;
//! * **tcp row** — measured for real over loopback TCP against a live
//!   [`rcuda_server::RcudaDaemon`], and compared against an estimate built
//!   from a near-zero-network channel baseline plus the marginal cost of the
//!   calibrated loopback link ([`crate::calibrate`]). The traffic workload
//!   runs its tenants *concurrently* here, so its estimate adds the
//!   closed-loop queueing term ([`rcuda_model::closed_loop_wait`]).
//!
//! Every row asserts `|estimated − measured| / measured` under a
//! per-workload bound — tight for the deterministic simulation, generous
//! for wall-clock TCP. [`SuiteReport::to_json`] is the `BENCH_workloads.json`
//! artifact; [`SuiteReport::table`] is the paper-style summary table.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use rcuda_api::CudaRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::wall_clock;
use rcuda_core::{Clock, CudaResult, SimTime};
use rcuda_model::{
    closed_loop_wait, estimate_workload, fixed_time_workload, PhaseKind, PhaseShape, WorkloadShape,
};
use rcuda_netsim::NetworkId;
use rcuda_obs::{ObsHandle, PhaseStats, Recorder};
use rcuda_server::DaemonBuilder;
use rcuda_transport::TcpTransport;
use serde_json::{json, Value};

use crate::calibrate::{calibrate_channel, calibrate_loopback, CalibratedLink};
use crate::smallcalls::{run_smallcalls, SmallCallsConfig};
use crate::traffic::{build_schedule, replay_closed_loop, TrafficConfig, TrafficOp};
use crate::transformer::{run_transformer, TransformerConfig};

/// Reactor shards the TCP daemon runs — also the server count in the
/// traffic row's queueing term.
const DAEMON_SHARDS: usize = 2;

/// Suite configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Shrink shapes and repetitions for CI (`RCUDA_WORKLOADS_FAST=1`).
    /// Both transports still run — the artifact stays complete.
    pub fast: bool,
    /// Master seed for every workload's inputs and schedules.
    pub seed: u64,
    /// Wall-clock repetitions per TCP measurement (best-of, like the
    /// paper's repeated ping-pong runs).
    pub reps: usize,
}

impl SuiteConfig {
    /// Fast mode: small shapes, two repetitions.
    pub fn fast(seed: u64) -> Self {
        SuiteConfig {
            fast: true,
            seed,
            reps: 2,
        }
    }

    /// Full benchmark mode.
    pub fn bench(seed: u64) -> Self {
        SuiteConfig {
            fast: false,
            seed,
            reps: 3,
        }
    }

    /// Bench mode unless `RCUDA_WORKLOADS_FAST=1` is set.
    pub fn from_env(seed: u64) -> Self {
        match std::env::var("RCUDA_WORKLOADS_FAST") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => SuiteConfig::fast(seed),
            _ => SuiteConfig::bench(seed),
        }
    }

    fn transformer(&self) -> TransformerConfig {
        if self.fast {
            TransformerConfig::small(self.seed)
        } else {
            TransformerConfig::bench(self.seed)
        }
    }

    fn smallcalls(&self) -> SmallCallsConfig {
        if self.fast {
            SmallCallsConfig::small(self.seed)
        } else {
            SmallCallsConfig::bench(self.seed)
        }
    }

    fn traffic(&self) -> TrafficConfig {
        let mut cfg = TrafficConfig::small(self.seed);
        if !self.fast {
            cfg.ops_per_tenant = 120;
        }
        cfg
    }
}

/// One measured-vs-estimated comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// Workload name.
    pub workload: &'static str,
    /// Which loop produced the row.
    pub transport: &'static str,
    /// Real (simulated or wall-clock) execution time.
    pub measured: SimTime,
    /// The extended model's prediction.
    pub estimated: SimTime,
    /// `|estimated − measured| / measured`.
    pub rel_error: f64,
    /// The per-workload acceptance bound on `rel_error`.
    pub bound: f64,
}

impl ValidationRow {
    fn new(
        workload: &'static str,
        transport: &'static str,
        measured: SimTime,
        estimated: SimTime,
        bound: f64,
    ) -> Self {
        let m = measured.as_secs_f64();
        let rel_error = if m > 0.0 {
            (estimated.as_secs_f64() - m).abs() / m
        } else {
            f64::INFINITY
        };
        ValidationRow {
            workload,
            transport,
            measured,
            estimated,
            rel_error,
            bound,
        }
    }

    /// Did the model land inside the acceptance bound?
    pub fn within_bound(&self) -> bool {
        self.rel_error <= self.bound
    }
}

/// The suite's full result set.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// All rows, workload-major (sim row then tcp row).
    pub rows: Vec<ValidationRow>,
    /// Whether the suite ran in fast mode.
    pub fast: bool,
}

impl SuiteReport {
    /// Panic unless every row's relative error is inside its bound.
    pub fn assert_bounds(&self) {
        for row in &self.rows {
            assert!(
                row.within_bound(),
                "{} on {}: rel error {:.3} exceeds bound {:.3} \
                 (measured {:.3} ms, estimated {:.3} ms)",
                row.workload,
                row.transport,
                row.rel_error,
                row.bound,
                row.measured.as_millis_f64(),
                row.estimated.as_millis_f64(),
            );
        }
    }

    /// Paper-style summary table (Tables IV/VI layout: measured, estimated,
    /// relative error).
    pub fn table(&self) -> String {
        let mut out = String::from(
            "| workload    | loop            | measured     | estimated    | error  | bound  |\n\
             |-------------|-----------------|--------------|--------------|--------|--------|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {:<11} | {:<15} | {:>9.3} ms | {:>9.3} ms | {:>5.1}% | {:>5.1}% |\n",
                r.workload,
                r.transport,
                r.measured.as_millis_f64(),
                r.estimated.as_millis_f64(),
                r.rel_error * 100.0,
                r.bound * 100.0,
            ));
        }
        out
    }

    /// The `BENCH_workloads.json` payload.
    pub fn to_json(&self) -> Value {
        json!({
            "suite": "rcuda-workloads",
            "fast": self.fast,
            "rows": self.rows.iter().map(|r| json!({
                "workload": r.workload,
                "transport": r.transport,
                "measured_ms": r.measured.as_millis_f64(),
                "estimated_ms": r.estimated.as_millis_f64(),
                "rel_error": r.rel_error,
                "bound": r.bound,
                "within_bound": r.within_bound(),
            })).collect::<Vec<_>>(),
            "table": self.table(),
        })
    }
}

/// Classify a phase for the extended model's pricing rules.
fn phase_kind(workload: &str, phase: &str) -> PhaseKind {
    match (workload, phase) {
        // The transformer's weight/activation copies are the paper's bulk
        // regime: a handful of large transfers. Everything else — including
        // the greedy tenant, whose ~hundred moderate copies are many enough
        // that per-message latency still matters — is priced per round trip.
        ("transformer", "weights" | "input" | "output") => PhaseKind::BulkTransfer,
        _ => PhaseKind::CallRate,
    }
}

/// Convert observed phase rows into the extended model's workload shape.
fn shape_from(workload: &'static str, rows: &[(&'static str, PhaseStats)]) -> WorkloadShape {
    WorkloadShape {
        name: workload,
        phases: rows
            .iter()
            .map(|(name, s)| PhaseShape {
                name,
                kind: phase_kind(workload, name),
                calls: s.calls,
                bytes_sent: s.bytes_sent,
                bytes_received: s.bytes_received,
            })
            .collect(),
    }
}

/// A workload as the harness drives it: a closure over any runtime.
type Driver<'a> = &'a dyn Fn(&mut dyn CudaRuntime, &dyn Clock, &ObsHandle) -> CudaResult<()>;

/// Measure `run` over the simulated `net`: returns virtual elapsed time and
/// the observed phase rows.
fn measure_sim(net: NetworkId, run: Driver) -> (SimTime, Vec<(&'static str, PhaseStats)>) {
    let rec = Recorder::new();
    let mut sess = crate::sessions::sim_session(Arc::from(net.model()), rec.handle(), 0);
    let clock = sess.clock.clone();
    // The server thread pushes its compute-capability hello (and charges
    // its latency to the shared clock) as soon as it starts — at a racy
    // wall-clock instant. Wait it out so every span start and t0 below sit
    // at reproducible virtual times; the workload itself is synchronous
    // RPC, so no other cross-thread advance can interleave.
    while clock.now() == SimTime::ZERO {
        std::thread::yield_now();
    }
    let t0 = clock.now();
    run(&mut sess.runtime, &*clock, &rec.handle()).expect("sim workload run");
    let measured = clock.now().saturating_sub(t0);
    sess.finish();
    (measured, rec.report().phase_rows())
}

/// Measure `run` over the in-process channel transport (wall clock): the
/// near-zero-network baseline.
fn measure_channel(run: Driver) -> (SimTime, Vec<(&'static str, PhaseStats)>) {
    let rec = Recorder::new();
    let mut sess = crate::sessions::channel_session(rec.handle(), 0);
    let clock = sess.clock.clone();
    let t0 = clock.now();
    run(&mut sess.runtime, &*clock, &rec.handle()).expect("channel workload run");
    let measured = clock.now().saturating_sub(t0);
    sess.finish();
    (measured, rec.report().phase_rows())
}

/// Measure `run` once over loopback TCP against the daemon at `addr`.
fn measure_tcp(addr: SocketAddr, run: Driver) -> io::Result<SimTime> {
    let clock = wall_clock();
    let mut rt = RemoteRuntime::new(TcpTransport::connect(addr)?, clock.clone());
    let t0 = clock.now();
    run(&mut rt, &*clock, &ObsHandle::none())
        .map_err(|e| io::Error::other(format!("tcp workload run failed: {e:?}")))?;
    Ok(clock.now().saturating_sub(t0))
}

/// Best (minimum) of `reps` TCP measurements — the paper's defense against
/// wall-clock noise.
fn measure_tcp_best(addr: SocketAddr, reps: usize, run: Driver) -> io::Result<SimTime> {
    let mut best = SimTime::from_nanos(u64::MAX);
    for _ in 0..reps {
        best = best.min(measure_tcp(addr, run)?);
    }
    Ok(best)
}

/// The marginal network share of `shape` on the calibrated loopback link,
/// over the channel software baseline already inside a channel measurement.
fn link_delta(
    shape: &WorkloadShape,
    loopback: &CalibratedLink,
    channel: &CalibratedLink,
) -> SimTime {
    shape
        .network_time(loopback)
        .saturating_sub(shape.network_time(channel))
}

/// One cross-network sim validation row: measure on GigaE, extract the
/// fixed time, estimate 40GI, measure 40GI, compare.
fn sim_row(workload: &'static str, bound: f64, run: Driver) -> ValidationRow {
    let gige = NetworkId::GigaE.model();
    let ib = NetworkId::Ib40G.model();
    let (measured_gige, phases) = measure_sim(NetworkId::GigaE, run);
    let shape = shape_from(workload, &phases);
    let fixed = fixed_time_workload(measured_gige, &shape, gige.as_ref());
    let estimated = estimate_workload(fixed, &shape, ib.as_ref());
    let (measured_ib, _) = measure_sim(NetworkId::Ib40G, run);
    ValidationRow::new(workload, "sim GigaE->40GI", measured_ib, estimated, bound)
}

/// One loopback-TCP validation row: channel baseline plus calibrated link
/// delta versus a real measurement against the daemon.
fn tcp_row(
    workload: &'static str,
    bound: f64,
    addr: SocketAddr,
    reps: usize,
    loopback: &CalibratedLink,
    channel: &CalibratedLink,
    run: Driver,
) -> io::Result<ValidationRow> {
    // Best-of-reps on the channel baseline too: the estimate should not
    // inherit one unlucky scheduler stall. The phase shape (call and byte
    // counts) is identical across reps, so any rep's rows serve.
    let (mut baseline, phases) = measure_channel(run);
    for _ in 1..reps {
        baseline = baseline.min(measure_channel(run).0);
    }
    let shape = shape_from(workload, &phases);
    let estimated = baseline + link_delta(&shape, loopback, channel);
    let measured = measure_tcp_best(addr, reps, run)?;
    Ok(ValidationRow::new(
        workload,
        "tcp loopback",
        measured,
        estimated,
        bound,
    ))
}

/// Per-tenant closed-loop traffic drivers for `cfg`'s schedule.
fn tenant_runs(cfg: &TrafficConfig) -> Vec<(&'static str, Vec<TrafficOp>)> {
    let schedule = build_schedule(cfg);
    cfg.tenants
        .iter()
        .enumerate()
        .map(|(i, persona)| (persona.name(), schedule.tenant_ops(i)))
        .collect()
}

/// The traffic sim row: tenants replay sequentially (pure closed loop), so
/// measured time and shape are per-tenant sums.
fn traffic_sim_row(cfg: &TrafficConfig, bound: f64) -> ValidationRow {
    let gige = NetworkId::GigaE.model();
    let ib = NetworkId::Ib40G.model();
    let tenants = tenant_runs(cfg);
    let mut measured_gige = SimTime::ZERO;
    let mut measured_ib = SimTime::ZERO;
    let mut estimated = SimTime::ZERO;
    for (name, ops) in &tenants {
        let run = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
            replay_closed_loop(rt, clock, obs, name, ops)
        };
        let (m_gige, phases) = measure_sim(NetworkId::GigaE, &run);
        let shape = shape_from("traffic", &phases);
        let fixed = fixed_time_workload(m_gige, &shape, gige.as_ref());
        estimated += estimate_workload(fixed, &shape, ib.as_ref());
        measured_gige += m_gige;
        let (m_ib, _) = measure_sim(NetworkId::Ib40G, &run);
        measured_ib += m_ib;
    }
    debug_assert!(measured_gige > measured_ib, "GigaE should be the slow leg");
    ValidationRow::new("traffic", "sim GigaE->40GI", measured_ib, estimated, bound)
}

/// The traffic tcp row: tenants replay *concurrently* against the sharded
/// daemon, and the estimate prices the contention with the closed-loop
/// queueing term — `⌈tenants/shards⌉` tenants share each shard, so the
/// expected wall time is the mean per-tenant estimate times that depth.
fn traffic_tcp_row(
    cfg: &TrafficConfig,
    bound: f64,
    addr: SocketAddr,
    reps: usize,
    loopback: &CalibratedLink,
    channel: &CalibratedLink,
) -> io::Result<ValidationRow> {
    let tenants = tenant_runs(cfg);

    // Per-tenant sequential estimates from the channel baseline.
    let mut total_est = SimTime::ZERO;
    let mut max_est = SimTime::ZERO;
    for (name, ops) in &tenants {
        let run = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
            replay_closed_loop(rt, clock, obs, name, ops)
        };
        let (baseline, phases) = measure_channel(&run);
        let shape = shape_from("traffic", &phases);
        let est = baseline + link_delta(&shape, loopback, channel);
        total_est += est;
        max_est = max_est.max(est);
    }
    // The wall clock stops when the heaviest tenant finishes: its own
    // service, plus the closed-loop wait behind the ⌈tenants/shards⌉ − 1
    // average-service peers sharing its shard.
    let mean_est = SimTime::from_nanos(total_est.as_nanos() / tenants.len() as u64);
    let estimated =
        max_est + closed_loop_wait(mean_est, tenants.len() as u64, DAEMON_SHARDS as u64);

    // Concurrent measured wall time, best of `reps`. Every tenant connects
    // before the clock starts — the model prices the replay, not thread
    // spawn or TCP connection setup.
    let mut measured = SimTime::from_nanos(u64::MAX);
    for _ in 0..reps {
        let barrier = Arc::new(std::sync::Barrier::new(tenants.len() + 1));
        let handles: Vec<_> = tenants
            .iter()
            .map(|(name, ops)| {
                let name = *name;
                let ops = ops.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || -> io::Result<()> {
                    let clock = wall_clock();
                    let mut rt = RemoteRuntime::new(TcpTransport::connect(addr)?, clock.clone());
                    barrier.wait();
                    replay_closed_loop(&mut rt, &*clock, &ObsHandle::none(), name, &ops)
                        .map_err(|e| io::Error::other(format!("tenant {name} failed: {e:?}")))
                })
            })
            .collect();
        let t0 = std::time::Instant::now();
        barrier.wait();
        for h in handles {
            h.join().expect("tenant thread panicked")?;
        }
        measured = measured.min(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
    }
    Ok(ValidationRow::new(
        "traffic",
        "tcp loopback",
        measured,
        estimated,
        bound,
    ))
}

/// Run only the simulated cross-network loop: three deterministic rows on
/// the virtual clock. Same seed → bit-identical report, which is what the
/// golden summary table pins.
pub fn run_sim_rows(cfg: &SuiteConfig) -> SuiteReport {
    let transformer_cfg = cfg.transformer();
    let smallcalls_cfg = cfg.smallcalls();
    let traffic_cfg = cfg.traffic();

    let run_tf = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
        run_transformer(rt, clock, obs, &transformer_cfg).map(drop)
    };
    let run_sc = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
        run_smallcalls(rt, clock, obs, &smallcalls_cfg).map(drop)
    };

    // Tight bounds — the only modeling slack is avg-vs-actual message
    // pricing.
    SuiteReport {
        rows: vec![
            sim_row("transformer", 0.15, &run_tf),
            sim_row("smallcalls", 0.15, &run_sc),
            traffic_sim_row(&traffic_cfg, 0.25),
        ],
        fast: cfg.fast,
    }
}

/// Run the whole suite: three workloads, two validation loops each.
pub fn run_suite(cfg: &SuiteConfig) -> io::Result<SuiteReport> {
    let transformer_cfg = cfg.transformer();
    let smallcalls_cfg = cfg.smallcalls();
    let traffic_cfg = cfg.traffic();

    let run_tf = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
        run_transformer(rt, clock, obs, &transformer_cfg).map(drop)
    };
    let run_sc = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
        run_smallcalls(rt, clock, obs, &smallcalls_cfg).map(drop)
    };

    let mut rows = run_sim_rows(cfg).rows;

    // TCP loop: a live sharded daemon on loopback. Generous bounds — the
    // measurements are wall-clock on a shared host — and doubled in fast
    // mode, where the sub-millisecond runs are dominated by scheduler
    // noise rather than the transfer costs the model prices.
    let slack = if cfg.fast { 2.0 } else { 1.0 };
    let mut daemon = DaemonBuilder::new()
        .shards(DAEMON_SHARDS)
        .bind("127.0.0.1:0")?;
    let addr = daemon.local_addr();
    let loopback = calibrate_loopback(addr, cfg.reps.max(2))?;
    let channel = calibrate_channel(cfg.reps.max(2));
    rows.push(tcp_row(
        "transformer",
        0.5 * slack,
        addr,
        cfg.reps,
        &loopback,
        &channel,
        &run_tf,
    )?);
    rows.push(tcp_row(
        "smallcalls",
        0.5 * slack,
        addr,
        cfg.reps,
        &loopback,
        &channel,
        &run_sc,
    )?);
    rows.push(traffic_tcp_row(
        &traffic_cfg,
        0.75 * slack,
        addr,
        cfg.reps,
        &loopback,
        &channel,
    )?);
    daemon.shutdown();

    Ok(SuiteReport {
        rows,
        fast: cfg.fast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_row_validates_the_transformer_cross_network() {
        let cfg = TransformerConfig::small(17);
        let run = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
            run_transformer(rt, clock, obs, &cfg).map(drop)
        };
        let row = sim_row("transformer", 0.15, &run);
        assert!(row.measured > SimTime::ZERO);
        assert!(
            row.within_bound(),
            "rel error {:.4} (measured {:?}, estimated {:?})",
            row.rel_error,
            row.measured,
            row.estimated
        );
    }

    #[test]
    fn sim_row_validates_smallcalls_cross_network() {
        let cfg = SmallCallsConfig {
            iterations: 60,
            max_payload: 1024,
            seed: 23,
        };
        let run = |rt: &mut dyn CudaRuntime, clock: &dyn Clock, obs: &ObsHandle| {
            run_smallcalls(rt, clock, obs, &cfg).map(drop)
        };
        let row = sim_row("smallcalls", 0.15, &run);
        assert!(row.within_bound(), "rel error {:.4}", row.rel_error);
    }

    #[test]
    fn report_renders_a_table_and_json() {
        let report = SuiteReport {
            rows: vec![ValidationRow::new(
                "transformer",
                "sim GigaE->40GI",
                SimTime::from_millis_f64(10.0),
                SimTime::from_millis_f64(10.5),
                0.15,
            )],
            fast: true,
        };
        report.assert_bounds();
        let table = report.table();
        assert!(table.contains("transformer"));
        assert!(table.contains("5.0%"));
        let j = report.to_json();
        assert_eq!(j["rows"][0]["within_bound"], Value::Bool(true));
        assert_eq!(j["suite"].as_str(), Some("rcuda-workloads"));
    }

    #[test]
    fn out_of_bound_rows_fail_the_assertion() {
        let report = SuiteReport {
            rows: vec![ValidationRow::new(
                "smallcalls",
                "tcp loopback",
                SimTime::from_millis_f64(10.0),
                SimTime::from_millis_f64(30.0),
                0.5,
            )],
            fast: true,
        };
        assert!(!report.rows[0].within_bound());
        let failed = std::panic::catch_unwind(|| report.assert_bounds());
        assert!(failed.is_err());
    }
}
