//! Loopback-link calibration: fit a [`NetworkModel`] to what the harness
//! can actually measure.
//!
//! The paper's network models are fitted to ping-pong measurements on real
//! interconnects (§VI: "the bandwidth is extracted from the measured
//! round-trip time divided by two"). The harness has no Gigabit Ethernet or
//! InfiniBand NIC — its "real" transport is loopback TCP against a live
//! daemon — so it runs the same methodology in miniature: probe the link
//! with H2D/D2H copies across a ladder of payload sizes, take the best of
//! `reps` round trips per size, and interpolate one-way times through a
//! [`PiecewiseLinear`] curve exactly like the builtin models do.
//!
//! Two probes matter:
//!
//! * [`calibrate_loopback`] measures the full client-observed cost over TCP
//!   — wire time *plus* the software path (serialization, syscalls, server
//!   dispatch);
//! * [`calibrate_channel`] measures the same ladder over the in-process
//!   channel transport — the software path *alone*.
//!
//! Pricing a phase on both links and subtracting isolates the transport's
//! marginal cost, which is what the §V estimator adds to a near-zero-network
//! baseline.

use std::io;
use std::net::SocketAddr;
use std::time::Instant;

use rcuda_api::CudaRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::wall_clock;
use rcuda_core::{CudaResult, SimTime};
use rcuda_gpu::module::build_module;
use rcuda_netsim::{NetworkId, NetworkModel, PiecewiseLinear};
use rcuda_obs::ObsHandle;
use rcuda_transport::TcpTransport;

/// Payload ladder, bytes. Spans the sub-4 KiB call-rate regime through the
/// bulk sizes the transformer's weight copies use.
const PROBE_SIZES: [u32; 5] = [64, 1024, 4096, 65536, 1 << 20];

/// A [`NetworkModel`] fitted from measured round trips.
#[derive(Debug, Clone)]
pub struct CalibratedLink {
    curve: PiecewiseLinear,
    bandwidth_mib_s: f64,
    name: &'static str,
}

impl CalibratedLink {
    /// Build from `(bytes, one-way µs)` anchors. Non-monotone anchors (timer
    /// jitter) are flattened upward before fitting.
    pub fn from_anchors(name: &'static str, anchors: &[(u64, f64)]) -> CalibratedLink {
        assert!(anchors.len() >= 2, "need at least two probe sizes");
        let mut fixed: Vec<(u64, f64)> = Vec::with_capacity(anchors.len());
        let mut floor = 0.0f64;
        for &(bytes, us) in anchors {
            floor = floor.max(us);
            fixed.push((bytes, floor));
        }
        let (x0, y0) = fixed[fixed.len() - 2];
        let (x1, y1) = fixed[fixed.len() - 1];
        let tail_slope = ((y1 - y0) / (x1 - x0) as f64).max(0.0);
        let bandwidth_mib_s = x1 as f64 / (1u64 << 20) as f64 / (y1 / 1e6).max(1e-12);
        CalibratedLink {
            curve: PiecewiseLinear::new(&fixed, tail_slope),
            bandwidth_mib_s,
            name,
        }
    }
}

impl NetworkModel for CalibratedLink {
    fn id(&self) -> NetworkId {
        // Loopback behaves like a (very fast) Ethernet; the id only matters
        // for wire-level tagging, which calibrated links never do.
        NetworkId::GigaE
    }

    fn bandwidth_mib_s(&self) -> f64 {
        self.bandwidth_mib_s
    }

    fn one_way(&self, bytes: u64) -> SimTime {
        SimTime::from_micros_f64(self.curve.eval_us(bytes))
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Run the probe ladder on `rt`: for each size, the best of `reps`
/// H2D+D2H pairs. One H2D round trip carries the payload outbound, one D2H
/// carries it inbound, so a quarter of the pair is the paper's
/// "round trip divided by two" one-way time.
pub fn probe_runtime(rt: &mut dyn CudaRuntime, reps: usize) -> CudaResult<Vec<(u64, f64)>> {
    assert!(reps > 0, "need at least one probe rep");
    let max = *PROBE_SIZES.last().expect("ladder non-empty");
    rt.initialize(&build_module(&[], 0))?;
    let p = rt.malloc(max)?;
    let buf = vec![0xA7u8; max as usize];
    let mut out = vec![0u8; max as usize];
    // Warm the path (page-in, lazy socket setup) before timing.
    rt.memcpy_h2d(p, &buf[..64])?;
    rt.memcpy_d2h_into(p, &mut out[..64])?;
    let mut anchors = Vec::with_capacity(PROBE_SIZES.len());
    for &size in &PROBE_SIZES {
        let n = size as usize;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            rt.memcpy_h2d(p, &buf[..n])?;
            rt.memcpy_d2h_into(p, &mut out[..n])?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        }
        anchors.push((u64::from(size), best / 4.0));
    }
    rt.free(p)?;
    rt.finalize()?;
    Ok(anchors)
}

/// Calibrate the loopback-TCP link against a live daemon at `addr`.
pub fn calibrate_loopback(addr: SocketAddr, reps: usize) -> io::Result<CalibratedLink> {
    let mut rt = RemoteRuntime::new(TcpTransport::connect(addr)?, wall_clock());
    rt.set_observer(ObsHandle::none());
    let anchors = probe_runtime(&mut rt, reps)
        .map_err(|e| io::Error::other(format!("loopback probe failed: {e:?}")))?;
    Ok(CalibratedLink::from_anchors("loopback-tcp", &anchors))
}

/// Calibrate the in-process channel transport — the zero-NIC software
/// baseline the TCP estimate subtracts out.
pub fn calibrate_channel(reps: usize) -> CalibratedLink {
    let mut sess = crate::sessions::channel_session(ObsHandle::none(), 0);
    let anchors = probe_runtime(&mut sess.runtime, reps).expect("channel probe");
    sess.finish();
    CalibratedLink::from_anchors("channel", &anchors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_link_is_monotone_and_prices_round_trips() {
        let link = CalibratedLink::from_anchors(
            "test",
            &[(64, 10.0), (1024, 12.0), (4096, 20.0), (1 << 20, 900.0)],
        );
        assert_eq!(link.name(), "test");
        let mut prev = SimTime::from_nanos(0);
        for bytes in [0u64, 64, 512, 4096, 1 << 16, 1 << 20, 1 << 22] {
            let t = link.one_way(bytes);
            assert!(t >= prev, "non-monotone at {bytes}");
            prev = t;
        }
        assert_eq!(
            link.round_trip(4096, 64),
            link.one_way(4096) + link.one_way(64)
        );
        assert!(link.bandwidth_mib_s() > 0.0);
    }

    #[test]
    fn jittery_anchors_are_flattened_upward() {
        // The 4 KiB probe came back faster than the 1 KiB one; fitting must
        // not panic and must stay monotone.
        let link =
            CalibratedLink::from_anchors("jitter", &[(1024, 15.0), (4096, 11.0), (65536, 40.0)]);
        assert!(link.one_way(4096) >= link.one_way(1024));
    }

    #[test]
    fn channel_probe_yields_a_usable_link() {
        let link = calibrate_channel(2);
        assert!(link.one_way(64).as_nanos() > 0, "probe measured something");
        assert!(link.one_way(1 << 20) >= link.one_way(64));
    }
}
