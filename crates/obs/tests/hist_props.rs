//! Property tests: histogram merge forms a commutative monoid.
//!
//! Fixed log2 buckets make merge an elementwise sum (plus min/max), so it
//! must be associative and commutative with the empty histogram as
//! identity — the algebra that lets per-thread or per-shard histograms be
//! combined in any order without changing the aggregate.

use proptest::prelude::*;
use rcuda_obs::Histogram;

fn from_samples(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &ns in samples {
        h.record_ns(ns);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = *a;
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (a, b) = (from_samples(&xs), from_samples(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..48),
        ys in proptest::collection::vec(any::<u64>(), 0..48),
        zs in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let (a, b, c) = (from_samples(&xs), from_samples(&ys), from_samples(&zs));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn empty_is_the_identity(xs in proptest::collection::vec(any::<u64>(), 0..64)) {
        let a = from_samples(&xs);
        prop_assert_eq!(merged(&a, &Histogram::new()), a);
        prop_assert_eq!(merged(&Histogram::new(), &a), a);
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        // Guard the sum against overflow so both sides saturate identically.
        let xs: Vec<u64> = xs.iter().map(|v| v >> 8).collect();
        let ys: Vec<u64> = ys.iter().map(|v| v >> 8).collect();
        let together: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(
            merged(&from_samples(&xs), &from_samples(&ys)),
            from_samples(&together)
        );
    }

    #[test]
    fn every_sample_lands_in_its_bucket(ns in any::<u64>()) {
        let i = Histogram::bucket_index(ns);
        let (lo, hi) = Histogram::bucket_bounds(i);
        prop_assert!(lo <= ns);
        prop_assert!(ns < hi || hi == u64::MAX);
    }
}
