//! The disarmed observability hot path performs no heap allocation.
//!
//! A counting `#[global_allocator]` wraps the system allocator; emitting
//! every event kind through a disarmed [`ObsHandle`] must leave the
//! allocation counter untouched. This is the overhead guarantee the
//! instrumented layers rely on: with no observer installed, per-call
//! bookkeeping is a `None` check over `Copy` payloads.

use rcuda_core::SimTime;
use rcuda_obs::{CallSpan, Dir, ObsHandle, Op, ServerSpan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disarmed_emissions_never_allocate() {
    let handle = ObsHandle::none();
    let span = CallSpan {
        op: Op::Named("cudaMemcpyH2D"),
        bytes_sent: 1_048_596,
        bytes_received: 4,
        start: SimTime::from_nanos(10),
        end: SimTime::from_nanos(900),
        retries: 0,
    };
    let server = ServerSpan {
        op: Op::Named("cudaMemcpyH2D"),
        queue_wait: SimTime::ZERO,
        start: SimTime::from_nanos(200),
        end: SimTime::from_nanos(700),
    };

    // Warm anything lazily initialized before the measured window.
    handle.emit_call(&span);

    let before = allocations();
    for i in 0..10_000u64 {
        handle.emit_call(&span);
        handle.emit_message(Dir::Sent, 1_048_596 + i);
        handle.emit_message(Dir::Received, 4);
        handle.emit_retry(Op::Named("cudaLaunch"), (i % 3) as u32);
        handle.emit_reconnect();
        handle.emit_server(&server);
        let clone = handle.clone();
        clone.emit_call(&span);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disarmed ObsHandle allocated on the hot path"
    );
}

#[test]
fn op_labels_are_copy_and_allocation_free() {
    let before = allocations();
    for _ in 0..1_000 {
        let op = Op::Named("cudaThreadSynchronize");
        let copy = op;
        assert_eq!(copy.group(), "cudaThreadSynchronize");
        let batch = Op::Batch(16);
        assert_eq!(batch.group(), "batch");
    }
    let after = allocations();
    assert_eq!(after - before, 0, "Op handling allocated");
}
