//! [`SessionMetrics`]: the one-stop counter snapshot of a session.
//!
//! Replaces the ad-hoc `transport_stats()` getter surface: a single plain
//! struct combining the transport's byte/message counters with the client
//! runtime's call accounting, cheap to copy and to serialize.

use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of a session's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Payload bytes written client → server (before transport framing).
    pub bytes_sent: u64,
    /// Payload bytes read server → client.
    pub bytes_received: u64,
    /// Protocol messages sent (flushes with pending data) — the quantity
    /// pipelining exists to reduce.
    pub messages_sent: u64,
    /// Protocol messages received (peer flushes consumed).
    pub messages_received: u64,
    /// Times the connection was re-established (all counters above span
    /// reconnects — nothing resets).
    pub reconnects: u64,
    /// Completed client calls, where one batch frame counts once (the
    /// initialization exchange included).
    pub calls: u64,
    /// Deferred calls that crossed inside batch frames (0 with pipelining
    /// off).
    pub batched_calls: u64,
    /// Transport-fault replays across all calls.
    pub retries: u64,
}

/// A point-in-time snapshot of a [`BufferPool`]'s counters.
///
/// The pool itself lives in `rcuda-proto` (next to the payload types it
/// recycles); this snapshot lives here so the observability layer can report
/// pool behaviour without a dependency cycle.
///
/// `hits / (hits + misses)` is the recycle rate: in a steady-state memcpy
/// loop it converges to 1.0, which is exactly the "zero allocations per
/// call" property the counting-allocator tests assert.
///
/// [`BufferPool`]: https://docs.rs/rcuda-proto
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// `get()` calls satisfied by a recycled buffer (no heap allocation).
    pub hits: u64,
    /// `get()` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the pool on drop.
    pub returns: u64,
    /// Buffers dropped on return because their size class was full.
    pub discards: u64,
    /// Buffers currently held by the pool, across all size classes.
    pub pooled: u64,
    /// Capacity (bytes) of all buffers currently held by the pool.
    pub pooled_bytes: u64,
    /// Buffers currently held per power-of-two size class, smallest class
    /// first (class `i` holds buffers of capacity `2^(6+i)`, 64 B up to
    /// 16 MiB). Lets the compression scratch buffers — which cluster in the
    /// large classes — be told apart from small header pools at a glance.
    pub class_occupancy: [u64; POOL_CLASS_COUNT],
}

/// Number of size classes a `BufferPool` maintains (64 B .. 16 MiB in
/// power-of-two steps). `rcuda-proto` compile-time-asserts its class count
/// against this, so the snapshot and the pool cannot drift apart.
pub const POOL_CLASS_COUNT: usize = 19;

impl PoolStats {
    /// Fraction of `get()` calls served without allocating (1.0 when the
    /// pool has never been asked for anything).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_zero() {
        assert_eq!(SessionMetrics::default().bytes_sent, 0);
        assert_eq!(SessionMetrics::default(), SessionMetrics::default());
    }

    #[test]
    fn pool_stats_hit_rate() {
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
        let s = PoolStats {
            hits: 3,
            misses: 1,
            ..PoolStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn pool_stats_serde_round_trip() {
        let mut occ = [0u64; POOL_CLASS_COUNT];
        occ[0] = 7;
        occ[POOL_CLASS_COUNT - 1] = 9;
        let s = PoolStats {
            hits: 1,
            misses: 2,
            returns: 3,
            discards: 4,
            pooled: 5,
            pooled_bytes: 6,
            class_occupancy: occ,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: PoolStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn serde_round_trip() {
        let m = SessionMetrics {
            bytes_sent: 1,
            bytes_received: 2,
            messages_sent: 3,
            messages_received: 4,
            reconnects: 5,
            calls: 6,
            batched_calls: 7,
            retries: 8,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: SessionMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
