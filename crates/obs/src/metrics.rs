//! [`SessionMetrics`]: the one-stop counter snapshot of a session.
//!
//! Replaces the ad-hoc `transport_stats()` getter surface: a single plain
//! struct combining the transport's byte/message counters with the client
//! runtime's call accounting, cheap to copy and to serialize.

use serde::{Deserialize, Serialize};

/// A point-in-time snapshot of a session's cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Payload bytes written client → server (before transport framing).
    pub bytes_sent: u64,
    /// Payload bytes read server → client.
    pub bytes_received: u64,
    /// Protocol messages sent (flushes with pending data) — the quantity
    /// pipelining exists to reduce.
    pub messages_sent: u64,
    /// Protocol messages received (peer flushes consumed).
    pub messages_received: u64,
    /// Times the connection was re-established (all counters above span
    /// reconnects — nothing resets).
    pub reconnects: u64,
    /// Completed client calls, where one batch frame counts once (the
    /// initialization exchange included).
    pub calls: u64,
    /// Deferred calls that crossed inside batch frames (0 with pipelining
    /// off).
    pub batched_calls: u64,
    /// Transport-fault replays across all calls.
    pub retries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_zero() {
        assert_eq!(SessionMetrics::default().bytes_sent, 0);
        assert_eq!(SessionMetrics::default(), SessionMetrics::default());
    }

    #[test]
    fn serde_round_trip() {
        let m = SessionMetrics {
            bytes_sent: 1,
            bytes_received: 2,
            messages_sent: 3,
            messages_received: 4,
            reconnects: 5,
            calls: 6,
            batched_calls: 7,
            retries: 8,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: SessionMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
