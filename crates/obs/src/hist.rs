//! Fixed-bucket (log2) latency histograms.
//!
//! Buckets are powers of two in nanoseconds: bucket `i` covers
//! `[2^(i-1), 2^i)` ns (bucket 0 holds exact zeros, bucket 1 holds 1 ns).
//! 48 buckets reach ~78 hours — far beyond any call. Fixed buckets keep the
//! struct `Copy`, recording allocation-free, and merging a pure elementwise
//! sum, which makes merge associative and commutative (property-tested).

use rcuda_core::SimTime;

/// Number of log2 buckets.
pub const BUCKETS: usize = 48;

/// A log2-bucketed latency histogram over nanosecond samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    /// `u64::MAX` when empty (the identity for `min`).
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket a nanosecond sample falls into.
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` in nanoseconds
    /// (the last bucket is open-ended: `hi = u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ if i >= BUCKETS - 1 => (1u64 << (BUCKETS - 2), u64::MAX),
            _ => (1u64 << (i - 1), 1u64 << i),
        }
    }

    pub fn record_ns(&mut self, ns: u64) {
        self.counts[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn record(&mut self, t: SimTime) {
        self.record_ns(t.as_nanos());
    }

    /// Fold another histogram in. Elementwise sums plus min/max, so for any
    /// histograms `a ∘ (b ∘ c) == (a ∘ b) ∘ c` and `a ∘ b == b ∘ a`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> SimTime {
        SimTime::from_nanos(self.sum_ns)
    }

    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> Option<SimTime> {
        (self.count > 0).then(|| SimTime::from_nanos(self.min_ns))
    }

    pub fn max(&self) -> Option<SimTime> {
        (self.count > 0).then(|| SimTime::from_nanos(self.max_ns))
    }

    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Upper bound (ns) of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 for an empty histogram. Log2 buckets bound the
    /// relative error at 2x — good enough for the order-of-magnitude
    /// latency questions the paper asks.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                // Exact at the extremes where a single sample defines the
                // bucket's contribution.
                return hi.saturating_sub(1).clamp(lo, self.max_ns);
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_cover_every_sample() {
        for ns in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(ns);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= ns, "{ns} below bucket {i}");
            assert!(ns < hi || hi == u64::MAX, "{ns} above bucket {i}");
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        for ns in [10, 20, 30] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), SimTime::from_nanos(60));
        assert_eq!(h.mean_ns(), 20.0);
        assert_eq!(h.min(), Some(SimTime::from_nanos(10)));
        assert_eq!(h.max(), Some(SimTime::from_nanos(30)));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record_ns(42);
        let snapshot = h;
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for ns in 1..=1000u64 {
            h.record_ns(ns);
        }
        let p50 = h.quantile_ns(0.5);
        assert!((256..=1000).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile_ns(1.0), 1000, "clamped to the observed max");
        assert_eq!(Histogram::new().quantile_ns(0.5), 0);
    }
}
