//! Plain-text and JSON summaries of a recorded run.
//!
//! [`summary_table`] reproduces the paper's Table I byte accounting from a
//! live run: one row per operation group with call counts, request/response
//! bytes, and client/server/network time splits. [`summary_json`] is the
//! same data machine-readable. Both renders are byte-deterministic for a
//! deterministic run, so they can be golden-filed.

use crate::record::Report;
use serde::Content;
use std::fmt::Write as _;

/// Fixed-precision µs rendering of a nanosecond quantity.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render `report` as a fixed-width text table: per-operation byte and
/// timing accounting followed by session totals.
pub fn summary_table(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "op", "calls", "sent B", "recv B", "client us", "server us", "network us"
    );
    let _ = writeln!(out, "{}", "-".repeat(24 + 1 + 6 + 6 * 13));
    for (op, stats) in report.per_op() {
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
            op,
            stats.calls,
            stats.bytes_sent,
            stats.bytes_received,
            us(stats.total_time.as_nanos()),
            us(stats.server_service.as_nanos()),
            us(stats.network_time().as_nanos()),
        );
    }
    let (sent, received) = report.totals();
    let _ = writeln!(out, "{}", "-".repeat(24 + 1 + 6 + 6 * 13));
    let _ = writeln!(
        out,
        "total: {} calls, {} B sent, {} B received over {} us",
        report.spans.len(),
        sent,
        received,
        us(report.span().as_nanos()),
    );
    let _ = writeln!(
        out,
        "transport: {} msgs sent ({} B), {} msgs received ({} B), {} retries, {} reconnects",
        report.messages.sent_count,
        report.messages.sent_bytes,
        report.messages.received_count,
        report.messages.received_bytes,
        report.retries,
        report.reconnects,
    );
    out
}

/// Render `report` as pretty-printed JSON with the same per-operation and
/// total accounting as [`summary_table`], plus latency quantiles.
pub fn summary_json(report: &Report) -> String {
    let ops: Vec<Content> = report
        .per_op()
        .iter()
        .map(|(op, stats)| {
            Content::Map(vec![
                ("op".into(), Content::Str((*op).into())),
                ("calls".into(), Content::U64(stats.calls)),
                ("bytes_sent".into(), Content::U64(stats.bytes_sent)),
                ("bytes_received".into(), Content::U64(stats.bytes_received)),
                ("retries".into(), Content::U64(stats.retries)),
                (
                    "client_time_ns".into(),
                    Content::U64(stats.total_time.as_nanos()),
                ),
                (
                    "server_service_ns".into(),
                    Content::U64(stats.server_service.as_nanos()),
                ),
                (
                    "server_queue_wait_ns".into(),
                    Content::U64(stats.server_queue_wait.as_nanos()),
                ),
                (
                    "network_time_ns".into(),
                    Content::U64(stats.network_time().as_nanos()),
                ),
                (
                    "latency_p50_ns".into(),
                    Content::U64(stats.latency.quantile_ns(0.5)),
                ),
                (
                    "latency_max_ns".into(),
                    Content::U64(stats.latency.max().map_or(0, |t| t.as_nanos())),
                ),
            ])
        })
        .collect();
    let (sent, received) = report.totals();
    let root = Content::Map(vec![
        ("ops".into(), Content::Seq(ops)),
        (
            "totals".into(),
            Content::Map(vec![
                ("calls".into(), Content::U64(report.spans.len() as u64)),
                ("bytes_sent".into(), Content::U64(sent)),
                ("bytes_received".into(), Content::U64(received)),
                ("span_ns".into(), Content::U64(report.span().as_nanos())),
                (
                    "messages_sent".into(),
                    Content::U64(report.messages.sent_count),
                ),
                (
                    "messages_received".into(),
                    Content::U64(report.messages.received_count),
                ),
                ("retries".into(), Content::U64(report.retries)),
                ("reconnects".into(), Content::U64(report.reconnects)),
            ]),
        ),
    ]);
    let mut json = serde_json::to_string_pretty(&root).expect("summary content serializes");
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CallSpan;
    use crate::op::Op;
    use crate::record::Recorder;
    use rcuda_core::SimTime;

    fn report() -> Report {
        let rec = Recorder::new();
        let h = rec.handle();
        h.emit_call(&CallSpan {
            op: Op::Named("cudaMalloc"),
            bytes_sent: 8,
            bytes_received: 8,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(2_500),
            retries: 0,
        });
        h.emit_call(&CallSpan {
            op: Op::Named("cudaMemcpyH2D"),
            bytes_sent: 1_044,
            bytes_received: 4,
            start: SimTime::from_nanos(2_500),
            end: SimTime::from_nanos(10_000),
            retries: 1,
        });
        rec.report()
    }

    #[test]
    fn table_lists_every_group_and_totals() {
        let table = summary_table(&report());
        assert!(table.contains("cudaMalloc"), "{table}");
        assert!(table.contains("cudaMemcpyH2D"), "{table}");
        assert!(table.contains("total: 2 calls, 1052 B sent, 12 B received"));
    }

    #[test]
    fn json_parses_and_carries_byte_accounting() {
        let json = summary_json(&report());
        let root: serde_json::Value = serde_json::from_str(&json).unwrap();
        let ops = root.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].get("bytes_sent").unwrap().as_u64(), Some(1_044));
        assert_eq!(ops[1].get("retries").unwrap().as_u64(), Some(1));
        let totals = root.get("totals").unwrap();
        assert_eq!(totals.get("bytes_sent").unwrap().as_u64(), Some(1_052));
    }
}
