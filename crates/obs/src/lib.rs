//! Observability for the rCUDA stack: per-call spans, per-message byte
//! events, server-side service accounting, and the exports that turn a live
//! run into the paper's own artifacts.
//!
//! The source paper is a measurement study: Tables I–IV exist because every
//! wire byte and every millisecond could be attributed to an individual
//! CUDA call, and the §V model was then validated against those
//! measurements. This crate is that attribution machinery for our runtime:
//!
//! * [`Observer`] — the sink trait. The client runtime reports one
//!   [`CallSpan`] per CUDA call (and per batch), the transports report one
//!   [`MessageEvent`] per protocol message, the server worker reports one
//!   [`ServerSpan`] per dispatched request (service time + queue wait), and
//!   retry/reconnect episodes are reported as they happen.
//! * [`ObsHandle`] — the nullable handle the instrumented layers hold. With
//!   no observer installed every emission is an inlined `None` check over
//!   `Copy` event payloads: **no heap allocation, no locking** on the hot
//!   path (asserted by a counting-allocator test).
//! * [`Recorder`] — the batteries-included [`Observer`]: aggregates
//!   [`Histogram`]s and per-call-id byte counters, and renders
//!   [`chrome_trace`] timelines and [`summary_table`] byte accounting.
//!
//! Under the `sim`/`channel` transports every event is deterministic (the
//! shared virtual clock is the only time source), so exports can be
//! golden-filed byte-for-byte.

pub mod chrome;
pub mod event;
pub mod hist;
pub mod metrics;
pub mod op;
pub mod record;
pub mod summary;

pub use chrome::{chrome_trace, validate_chrome_trace};
pub use event::{
    BrokerEvent, CallSpan, DaemonEvent, Dir, MessageEvent, ObsHandle, Observer, ServerSpan,
    ShardSpan, StreamFrameEvent,
};
pub use hist::{Histogram, BUCKETS};
pub use metrics::{PoolStats, SessionMetrics, POOL_CLASS_COUNT};
pub use op::Op;
pub use record::{MessageTotals, OpStats, PhaseStats, Recorder, Report};
pub use summary::{summary_json, summary_table};
