//! Chrome `trace_event` export.
//!
//! Renders a [`Report`] in the Trace Event Format consumed by
//! `chrome://tracing` and Perfetto: client call spans on track 1, server
//! dispatch spans on track 2, and per-message instant events on the client
//! track. Timestamps are microseconds (the format's native unit) printed
//! with fixed nanosecond precision, so the output is byte-deterministic
//! for a deterministic run and can be golden-filed.

use crate::event::Dir;
use crate::record::Report;
use std::fmt::Write as _;

/// Process/thread ids used in the exported trace.
const PID: u32 = 1;
const CLIENT_TID: u32 = 1;
const SERVER_TID: u32 = 2;

/// Fixed-precision µs rendering of a nanosecond stamp (`1234` → `1.234`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `report` as Chrome `trace_event` JSON.
///
/// Every client [`CallSpan`](crate::CallSpan) becomes a complete (`"X"`)
/// event carrying byte counts and retries in `args`; server spans likewise
/// on their own thread with queue-wait; each transport message becomes an
/// instant (`"i"`) event. Load the result in `chrome://tracing`, Perfetto,
/// or `about:tracing`.
pub fn chrome_trace(report: &Report) -> String {
    let mut events: Vec<String> = Vec::new();
    for span in &report.spans {
        events.push(format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"client\",\"ph\":\"X\",",
                "\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},",
                "\"args\":{{\"bytes_sent\":{},\"bytes_received\":{},\"retries\":{}}}}}"
            ),
            escape(&span.op.to_string()),
            us(span.start.as_nanos()),
            us(span.duration().as_nanos()),
            PID,
            CLIENT_TID,
            span.bytes_sent,
            span.bytes_received,
            span.retries,
        ));
    }
    for span in &report.server_spans {
        events.push(format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"server\",\"ph\":\"X\",",
                "\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},",
                "\"args\":{{\"queue_wait_ns\":{}}}}}"
            ),
            escape(&span.op.to_string()),
            us(span.start.as_nanos()),
            us(span.service().as_nanos()),
            PID,
            SERVER_TID,
            span.queue_wait.as_nanos(),
        ));
    }
    for (dir, bytes, at) in &report.message_events {
        let (name, dir_str) = match dir {
            Dir::Sent => ("msg_sent", "sent"),
            Dir::Received => ("msg_received", "received"),
        };
        events.push(format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",",
                "\"ts\":{},\"pid\":{},\"tid\":{},",
                "\"args\":{{\"bytes\":{},\"dir\":\"{}\"}}}}"
            ),
            name,
            us(at.as_nanos()),
            PID,
            CLIENT_TID,
            bytes,
            dir_str,
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str(event);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Schema-check a Chrome trace produced by [`chrome_trace`] (or by hand).
///
/// Verifies the JSON parses, the root carries a non-empty `traceEvents`
/// array, and every event has the fields the Trace Event Format requires:
/// string `name`/`ph`, numeric `ts`/`pid`/`tid`, and `dur` for complete
/// (`"X"`) events. Returns a description of the first violation.
pub fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let root: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("root object is missing \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    if events.is_empty() {
        return Err("\"traceEvents\" is empty".into());
    }
    for (i, event) in events.iter().enumerate() {
        let field = |name: &str| {
            event
                .get(name)
                .ok_or_else(|| format!("event {i} is missing \"{name}\""))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?
            .to_string();
        field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"name\" is not a string"))?;
        for numeric in ["ts", "pid", "tid"] {
            let v = field(numeric)?;
            if v.as_f64().is_none() {
                return Err(format!("event {i}: \"{numeric}\" is not a number"));
            }
        }
        if ph == "X" && field("dur")?.as_f64().is_none() {
            return Err(format!("event {i}: complete event without numeric \"dur\""));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallSpan, Dir, ServerSpan};
    use crate::op::Op;
    use rcuda_core::SimTime;

    fn report() -> Report {
        Report {
            spans: vec![CallSpan {
                op: Op::Named("cudaMalloc"),
                bytes_sent: 8,
                bytes_received: 8,
                start: SimTime::from_nanos(1_500),
                end: SimTime::from_nanos(4_750),
                retries: 0,
            }],
            server_spans: vec![ServerSpan {
                op: Op::Named("cudaMalloc"),
                queue_wait: SimTime::ZERO,
                start: SimTime::from_nanos(2_000),
                end: SimTime::from_nanos(4_000),
            }],
            message_events: vec![
                (Dir::Sent, 8, SimTime::from_nanos(1_500)),
                (Dir::Received, 8, SimTime::from_nanos(4_750)),
            ],
            ..Report::default()
        }
    }

    #[test]
    fn trace_is_valid_and_microsecond_scaled() {
        let json = chrome_trace(&report());
        validate_chrome_trace(&json).unwrap();
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":3.250"), "{json}");
        assert!(json.contains("\"cat\":\"server\""));
        assert!(json.contains("\"name\":\"msg_sent\""));
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}").is_err()
        );
        let no_dur = concat!(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",",
            "\"ts\":0,\"pid\":1,\"tid\":1}]}"
        );
        let err = validate_chrome_trace(no_dur).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn batch_names_render_structurally() {
        let mut r = report();
        r.spans[0].op = Op::Batch(3);
        let json = chrome_trace(&r);
        validate_chrome_trace(&json).unwrap();
        assert!(json.contains("\"name\":\"batch[3]\""));
    }
}
