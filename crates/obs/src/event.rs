//! Event types and the [`Observer`] sink.
//!
//! Every payload is `Copy` and every emission goes through [`ObsHandle`],
//! whose disarmed form is a `None` check — the instrumented layers pay
//! nothing (no allocation, no locking, no virtual dispatch) when no
//! observer is installed.

use crate::op::Op;
use rcuda_core::SimTime;
use std::fmt;
use std::sync::Arc;

/// Message direction, from the instrumented endpoint's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Sent,
    Received,
}

/// One protocol message crossing the transport (reported at flush time for
/// sends, at consumption time for receives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageEvent {
    pub dir: Dir,
    /// Payload bytes of the message (before transport framing).
    pub bytes: u64,
}

/// One multiplexed-transport frame crossing a sub-stream (reported per DATA
/// chunk by the mux layer, in both directions). Stream 0 is the trunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFrameEvent {
    /// The sub-stream the frame belongs to.
    pub stream: u32,
    pub dir: Dir,
    /// Payload bytes of the frame (headers excluded).
    pub bytes: u64,
    /// Whether this frame closed a protocol message (flush boundary).
    pub end_of_message: bool,
}

/// One client-side CUDA call: request/response byte counts and monotonic
/// clock timestamps (wall for real runs, virtual for simulated ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSpan {
    pub op: Op,
    /// Request bytes on the wire (Table I's send column).
    pub bytes_sent: u64,
    /// Response bytes on the wire (Table I's receive column).
    pub bytes_received: u64,
    pub start: SimTime,
    pub end: SimTime,
    /// Transport-fault replays this call needed (0 on the happy path).
    pub retries: u32,
}

impl CallSpan {
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// One request dispatched on the server worker: GPU service time plus the
/// queue wait it spent behind earlier elements of the same batch frame.
/// Subtracting the per-group service sum from the matching client spans
/// splits call time into network and GPU-service components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerSpan {
    pub op: Op,
    /// Time between the frame arriving and this element starting.
    pub queue_wait: SimTime,
    /// Dispatch start on the server's clock.
    pub start: SimTime,
    /// Dispatch end (service time = `end - start`).
    pub end: SimTime,
}

impl ServerSpan {
    pub fn service(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// A daemon lifecycle event: admission decisions, resource reclamation, and
/// failures that are invisible from any single session's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonEvent {
    /// A connection was shed at the handshake (over admission limits); the
    /// client was told to retry after this many milliseconds.
    SessionRejected { retry_after_ms: u32 },
    /// `listener.incoming()` yielded an error (no session involved).
    AcceptError,
    /// A dispatch panicked; the session was killed, the daemon survived.
    SessionPanicked,
    /// A parked session was evicted from the resume registry to make room.
    SessionEvicted { session: u64 },
    /// Device bytes returned to the allocator when a session's context was
    /// released (worker exit, eviction, or drain).
    BytesReclaimed { bytes: u64 },
    /// The accept loop hit a transient error (e.g. `EMFILE`) and backed off
    /// instead of retrying hot: it slept `backoff_ms` after
    /// `consecutive_errors` failures in a row.
    AcceptThrottled {
        consecutive_errors: u32,
        backoff_ms: u64,
    },
}

/// A cluster-broker event: membership transitions, placement decisions and
/// migrations. Daemons are identified by the numeric id the broker assigned
/// at registration (the broker's directory maps ids to addresses) so the
/// payload stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokerEvent {
    /// A daemon registered (or re-registered) with the directory.
    DaemonJoined { daemon: u64 },
    /// A daemon missed enough heartbeats to be considered suspect.
    DaemonSuspect { daemon: u64 },
    /// A suspect daemon recovered (enough consecutive heartbeats arrived).
    DaemonRecovered { daemon: u64 },
    /// A daemon was declared down (heartbeat timeout expired or its
    /// registration trunk died) and its sessions became orphans.
    DaemonDown { daemon: u64, orphaned_sessions: u64 },
    /// A placement decision was served: the chosen daemon and how many
    /// candidates were considered.
    Placed { daemon: u64, candidates: u32 },
    /// A placement request could not be satisfied (no live daemon).
    PlacementFailed,
    /// The broker ordered a session migrated between daemons.
    MigrationOrdered { session: u64, from: u64, to: u64 },
}

/// One readiness pass of a reactor shard that did useful work: how loaded
/// the shard was and how much it moved. Idle passes are not reported, so
/// the stream's density tracks actual activity, not spin rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpan {
    /// Which shard (0-based, stable for the daemon's lifetime).
    pub shard: u32,
    /// Connections registered on the shard at the end of the pass.
    pub sessions: u32,
    /// Freshly-admitted connections waiting in the shard's injector queue
    /// when the pass began (queue depth).
    pub queue_depth: u32,
    /// Frames dispatched during the pass.
    pub frames: u32,
    /// Pass start on the shard's clock.
    pub start: SimTime,
    /// Pass end.
    pub end: SimTime,
}

impl ShardSpan {
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// A sink for observability events. All methods default to no-ops so
/// observers implement only what they need. Implementations must be
/// thread-safe: client, transport, and server layers may report from
/// different threads.
pub trait Observer: Send + Sync {
    fn call_span(&self, _span: &CallSpan) {}
    fn message(&self, _event: &MessageEvent) {}
    fn stream_frame(&self, _event: &StreamFrameEvent) {}
    fn retry(&self, _op: Op, _attempt: u32) {}
    fn reconnect(&self) {}
    fn server_span(&self, _span: &ServerSpan) {}
    fn daemon_event(&self, _event: &DaemonEvent) {}
    fn shard_span(&self, _span: &ShardSpan) {}
    fn broker_event(&self, _event: &BrokerEvent) {}
}

/// The nullable observer handle held by instrumented layers.
///
/// Cloning shares the same observer. The default (disarmed) handle makes
/// every `emit_*` an inlined `None` check over `Copy` arguments — zero
/// allocation on the per-call hot path, as the counting-allocator test in
/// this crate asserts.
#[derive(Clone, Default)]
pub struct ObsHandle {
    observer: Option<Arc<dyn Observer>>,
}

impl ObsHandle {
    /// The disarmed handle (all emissions are no-ops).
    pub const fn none() -> Self {
        ObsHandle { observer: None }
    }

    /// Arm the handle with an observer.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        ObsHandle {
            observer: Some(observer),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.observer.is_some()
    }

    #[inline]
    pub fn emit_call(&self, span: &CallSpan) {
        if let Some(obs) = &self.observer {
            obs.call_span(span);
        }
    }

    #[inline]
    pub fn emit_message(&self, dir: Dir, bytes: u64) {
        if let Some(obs) = &self.observer {
            obs.message(&MessageEvent { dir, bytes });
        }
    }

    #[inline]
    pub fn emit_stream_frame(&self, stream: u32, dir: Dir, bytes: u64, end_of_message: bool) {
        if let Some(obs) = &self.observer {
            obs.stream_frame(&StreamFrameEvent {
                stream,
                dir,
                bytes,
                end_of_message,
            });
        }
    }

    #[inline]
    pub fn emit_retry(&self, op: Op, attempt: u32) {
        if let Some(obs) = &self.observer {
            obs.retry(op, attempt);
        }
    }

    #[inline]
    pub fn emit_reconnect(&self) {
        if let Some(obs) = &self.observer {
            obs.reconnect();
        }
    }

    #[inline]
    pub fn emit_server(&self, span: &ServerSpan) {
        if let Some(obs) = &self.observer {
            obs.server_span(span);
        }
    }

    #[inline]
    pub fn emit_daemon(&self, event: DaemonEvent) {
        if let Some(obs) = &self.observer {
            obs.daemon_event(&event);
        }
    }

    #[inline]
    pub fn emit_shard(&self, span: &ShardSpan) {
        if let Some(obs) = &self.observer {
            obs.shard_span(span);
        }
    }

    #[inline]
    pub fn emit_broker(&self, event: BrokerEvent) {
        if let Some(obs) = &self.observer {
            obs.broker_event(&event);
        }
    }
}

impl From<Arc<dyn Observer>> for ObsHandle {
    fn from(observer: Arc<dyn Observer>) -> Self {
        ObsHandle::new(observer)
    }
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "ObsHandle(armed)"
        } else {
            "ObsHandle(none)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting {
        calls: AtomicU64,
        messages: AtomicU64,
        retries: AtomicU64,
        reconnects: AtomicU64,
        server: AtomicU64,
        daemon: AtomicU64,
        broker: AtomicU64,
    }

    impl Observer for Counting {
        fn call_span(&self, _: &CallSpan) {
            self.calls.fetch_add(1, Ordering::Relaxed);
        }
        fn message(&self, _: &MessageEvent) {
            self.messages.fetch_add(1, Ordering::Relaxed);
        }
        fn retry(&self, _: Op, _: u32) {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        fn reconnect(&self) {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        fn server_span(&self, _: &ServerSpan) {
            self.server.fetch_add(1, Ordering::Relaxed);
        }
        fn daemon_event(&self, _: &DaemonEvent) {
            self.daemon.fetch_add(1, Ordering::Relaxed);
        }
        fn broker_event(&self, _: &BrokerEvent) {
            self.broker.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn span() -> CallSpan {
        CallSpan {
            op: Op::Named("cudaMalloc"),
            bytes_sent: 8,
            bytes_received: 8,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(10),
            retries: 0,
        }
    }

    #[test]
    fn armed_handle_forwards_every_event() {
        let obs = Arc::new(Counting::default());
        let handle = ObsHandle::new(obs.clone());
        assert!(handle.is_enabled());
        handle.emit_call(&span());
        handle.emit_message(Dir::Sent, 8);
        handle.emit_retry(Op::Named("cudaFree"), 1);
        handle.emit_reconnect();
        handle.emit_server(&ServerSpan {
            op: Op::Named("cudaMalloc"),
            queue_wait: SimTime::ZERO,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(3),
        });
        handle.emit_daemon(DaemonEvent::SessionRejected { retry_after_ms: 25 });
        handle.emit_broker(BrokerEvent::Placed {
            daemon: 1,
            candidates: 3,
        });
        assert_eq!(obs.broker.load(Ordering::Relaxed), 1);
        assert_eq!(obs.calls.load(Ordering::Relaxed), 1);
        assert_eq!(obs.messages.load(Ordering::Relaxed), 1);
        assert_eq!(obs.retries.load(Ordering::Relaxed), 1);
        assert_eq!(obs.reconnects.load(Ordering::Relaxed), 1);
        assert_eq!(obs.server.load(Ordering::Relaxed), 1);
        assert_eq!(obs.daemon.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disarmed_handle_is_silent_and_clonable() {
        let handle = ObsHandle::none();
        assert!(!handle.is_enabled());
        handle.emit_call(&span());
        handle.emit_reconnect();
        let clone = handle.clone();
        assert!(!clone.is_enabled());
        assert_eq!(format!("{handle:?}"), "ObsHandle(none)");
    }

    #[test]
    fn clones_share_the_observer() {
        let obs = Arc::new(Counting::default());
        let a = ObsHandle::new(obs.clone());
        let b = a.clone();
        a.emit_reconnect();
        b.emit_reconnect();
        assert_eq!(obs.reconnects.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn span_durations_saturate() {
        let s = CallSpan {
            start: SimTime::from_nanos(5),
            end: SimTime::ZERO,
            ..span()
        };
        assert_eq!(s.duration(), SimTime::ZERO);
    }
}
