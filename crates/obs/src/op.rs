//! Call identifiers: copyable operation labels that never allocate.
//!
//! The client used to label trace events with `String`s — one heap
//! allocation per CUDA call, even when nobody was reading the trace. [`Op`]
//! replaces that with a `Copy` enum over `&'static str` names (plus a
//! structured case for batched frames), so recording a call costs nothing
//! beyond the struct copy.

use serde::{Content, Deserialize, Error, Serialize};
use std::fmt;

/// The operation names the client runtime emits. Deserialization interns
/// against this table so round-tripped traces stay allocation-free too.
static KNOWN_OPS: &[&str] = &[
    "initialization",
    "finalization",
    "cudaGetDeviceProperties",
    "cudaMalloc",
    "cudaFree",
    "cudaMemcpyH2D",
    "cudaMemcpyD2H",
    "cudaMemcpyD2D",
    "cudaMemset",
    "cudaLaunch",
    "cudaThreadSynchronize",
    "cudaStreamCreate",
    "cudaStreamSynchronize",
    "cudaStreamDestroy",
    "cudaMemcpyAsyncH2D",
    "cudaMemcpyAsyncD2H",
    "cudaEventCreate",
    "cudaEventRecord",
    "cudaEventSynchronize",
    "cudaEventElapsedTime",
    "cudaEventDestroy",
];

/// A call identifier: a named CUDA operation, a batched frame, or a
/// workload-phase marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// A single named operation (`cudaMalloc`, `initialization`, ...).
    Named(&'static str),
    /// A pipelined batch frame of `n` deferred calls.
    Batch(u32),
    /// A workload-phase marker span: the driver brackets a group of calls
    /// (e.g. a transformer block's GEMM chain) with one span whose start/end
    /// cover the whole phase. Carries no bytes of its own; aggregation folds
    /// the ordinary call spans inside its window (see `Report::phase_rows`).
    Phase(&'static str),
}

impl Op {
    /// Parse a display form back into an [`Op`]. `batch[n]` becomes
    /// [`Op::Batch`], `phase:name` becomes [`Op::Phase`]; known names intern
    /// to their static string; unknown names are leaked once (trace
    /// deserialization is a cold path).
    pub fn parse(s: &str) -> Op {
        if let Some(n) = s
            .strip_prefix("batch[")
            .and_then(|rest| rest.strip_suffix(']'))
            .and_then(|n| n.parse::<u32>().ok())
        {
            return Op::Batch(n);
        }
        if let Some(name) = s.strip_prefix("phase:") {
            return Op::Phase(Box::leak(name.to_string().into_boxed_str()));
        }
        match KNOWN_OPS.iter().find(|k| **k == s) {
            Some(k) => Op::Named(k),
            None => Op::Named(Box::leak(s.to_string().into_boxed_str())),
        }
    }

    /// The static name, for single operations.
    pub fn as_named(&self) -> Option<&'static str> {
        match self {
            Op::Named(name) => Some(name),
            Op::Batch(_) | Op::Phase(_) => None,
        }
    }

    /// The phase label, for phase-marker spans.
    pub fn as_phase(&self) -> Option<&'static str> {
        match self {
            Op::Phase(name) => Some(name),
            Op::Named(_) | Op::Batch(_) => None,
        }
    }

    /// The aggregation key: the operation name, with every batch size
    /// folding into one `batch` group and phase markers keeping their label.
    pub fn group(&self) -> &'static str {
        match self {
            Op::Named(name) => name,
            Op::Batch(_) => "batch",
            Op::Phase(name) => name,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Named(name) => f.write_str(name),
            Op::Batch(n) => write!(f, "batch[{n}]"),
            Op::Phase(name) => write!(f, "phase:{name}"),
        }
    }
}

impl PartialEq<str> for Op {
    fn eq(&self, other: &str) -> bool {
        match self {
            Op::Named(name) => *name == other,
            Op::Batch(n) => {
                other
                    .strip_prefix("batch[")
                    .and_then(|rest| rest.strip_suffix(']'))
                    .and_then(|m| m.parse::<u32>().ok())
                    == Some(*n)
            }
            Op::Phase(name) => other.strip_prefix("phase:") == Some(name),
        }
    }
}

impl PartialEq<&str> for Op {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<Op> for str {
    fn eq(&self, other: &Op) -> bool {
        other == self
    }
}

impl PartialEq<Op> for &str {
    fn eq(&self, other: &Op) -> bool {
        other == *self
    }
}

impl Serialize for Op {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for Op {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(Op::parse(s)),
            other => Err(Error::custom(format!("expected op string, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for op in [Op::Named("cudaMalloc"), Op::Batch(7), Op::Phase("block")] {
            assert_eq!(Op::parse(&op.to_string()), op);
        }
    }

    #[test]
    fn phase_markers_display_compare_and_group() {
        let p = Op::Phase("weights");
        assert_eq!(p.to_string(), "phase:weights");
        assert!(p == "phase:weights");
        assert!(p != "weights");
        assert_eq!(p.group(), "weights");
        assert_eq!(p.as_phase(), Some("weights"));
        assert_eq!(p.as_named(), None);
        assert_eq!(Op::Named("weights").as_phase(), None);
        assert_eq!(Op::from_content(&p.to_content()).unwrap(), p);
    }

    #[test]
    fn known_names_intern_to_the_static_table() {
        let parsed = Op::parse("cudaMemcpyH2D");
        match parsed {
            Op::Named(name) => {
                assert!(std::ptr::eq(name.as_ptr(), KNOWN_OPS[5].as_ptr()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_comparisons_work_both_ways() {
        assert_eq!(Op::Named("cudaFree"), *"cudaFree");
        assert!(Op::Named("cudaFree") == "cudaFree");
        assert!("cudaFree" == Op::Named("cudaFree"));
        assert!(Op::Batch(3) == "batch[3]");
        assert!(Op::Batch(3) != "batch[4]");
        assert!(Op::Named("cudaFree") != "cudaMalloc");
    }

    #[test]
    fn batch_groups_fold_together() {
        assert_eq!(Op::Batch(2).group(), Op::Batch(9).group());
        assert_eq!(Op::Named("cudaLaunch").group(), "cudaLaunch");
    }

    #[test]
    fn serde_round_trip() {
        let op = Op::Batch(12);
        let c = op.to_content();
        assert_eq!(Op::from_content(&c).unwrap(), op);
        let op = Op::Named("cudaLaunch");
        assert_eq!(Op::from_content(&op.to_content()).unwrap(), op);
    }
}
