//! [`Recorder`]: the batteries-included [`Observer`].
//!
//! Collects every span and message event behind one mutex (observers are
//! only installed when someone wants the data — the disarmed hot path never
//! touches this), then aggregates into a [`Report`]: per-call-id byte
//! counters and latency [`Histogram`]s, with client and server views joined
//! by operation group so call time can be split into network and
//! GPU-service components.

use crate::event::{
    CallSpan, DaemonEvent, Dir, MessageEvent, ObsHandle, Observer, ServerSpan, ShardSpan,
    StreamFrameEvent,
};
use crate::hist::Histogram;
use crate::op::Op;
use parking_lot::Mutex;
use rcuda_core::{SharedClock, SimTime};
use std::sync::Arc;

#[derive(Default)]
struct RecState {
    spans: Vec<CallSpan>,
    server_spans: Vec<ServerSpan>,
    /// `(dir, bytes, clock stamp)` per message, in arrival order.
    messages: Vec<(Dir, u64, SimTime)>,
    retries: u64,
    reconnects: u64,
    daemon_events: Vec<DaemonEvent>,
    shard_spans: Vec<ShardSpan>,
    stream_frames: Vec<StreamFrameEvent>,
}

/// An [`Observer`] that records everything for later aggregation.
///
/// Construct with [`Recorder::with_clock`] to stamp message events on the
/// session's clock (deterministic under a shared virtual clock); plain
/// [`Recorder::new`] stamps them at zero.
pub struct Recorder {
    clock: Mutex<Option<SharedClock>>,
    state: Mutex<RecState>,
}

impl Recorder {
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder {
            clock: Mutex::new(None),
            state: Mutex::new(RecState::default()),
        })
    }

    /// A recorder that stamps message events on `clock`.
    pub fn with_clock(clock: SharedClock) -> Arc<Recorder> {
        Arc::new(Recorder {
            clock: Mutex::new(Some(clock)),
            state: Mutex::new(RecState::default()),
        })
    }

    /// Stamp message events on `clock` from now on. Lets a recorder built
    /// before the session join the session's clock — e.g. the virtual clock
    /// a `Session::builder().connect(Endpoint::Simulated(..))` call creates internally.
    pub fn attach_clock(&self, clock: SharedClock) {
        *self.clock.lock() = Some(clock);
    }

    /// An [`ObsHandle`] armed with this recorder, ready for
    /// `Session::builder().observer(..)` or `RemoteRuntime::set_observer`.
    pub fn handle(self: &Arc<Self>) -> ObsHandle {
        ObsHandle::new(Arc::clone(self) as Arc<dyn Observer>)
    }

    /// Snapshot and aggregate everything recorded so far.
    pub fn report(&self) -> Report {
        let state = self.state.lock();
        let mut messages = MessageTotals::default();
        for (dir, bytes, _) in &state.messages {
            match dir {
                Dir::Sent => {
                    messages.sent_count += 1;
                    messages.sent_bytes += bytes;
                }
                Dir::Received => {
                    messages.received_count += 1;
                    messages.received_bytes += bytes;
                }
            }
        }
        Report {
            spans: state.spans.clone(),
            server_spans: state.server_spans.clone(),
            message_events: state.messages.clone(),
            messages,
            retries: state.retries,
            reconnects: state.reconnects,
            daemon_events: state.daemon_events.clone(),
            shard_spans: state.shard_spans.clone(),
            stream_frames: state.stream_frames.clone(),
        }
    }
}

impl Observer for Recorder {
    fn call_span(&self, span: &CallSpan) {
        self.state.lock().spans.push(*span);
    }

    fn message(&self, event: &MessageEvent) {
        let at = self
            .clock
            .lock()
            .as_ref()
            .map(|c| c.now())
            .unwrap_or(SimTime::ZERO);
        self.state
            .lock()
            .messages
            .push((event.dir, event.bytes, at));
    }

    fn retry(&self, _op: Op, _attempt: u32) {
        self.state.lock().retries += 1;
    }

    fn reconnect(&self) {
        self.state.lock().reconnects += 1;
    }

    fn server_span(&self, span: &ServerSpan) {
        self.state.lock().server_spans.push(*span);
    }

    fn daemon_event(&self, event: &DaemonEvent) {
        self.state.lock().daemon_events.push(*event);
    }

    fn shard_span(&self, span: &ShardSpan) {
        self.state.lock().shard_spans.push(*span);
    }

    fn stream_frame(&self, event: &StreamFrameEvent) {
        self.state.lock().stream_frames.push(*event);
    }
}

/// Message counts and bytes by direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageTotals {
    pub sent_count: u64,
    pub sent_bytes: u64,
    pub received_count: u64,
    pub received_bytes: u64,
}

/// Aggregated per-operation statistics (one row of the summary table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Client calls in this group.
    pub calls: u64,
    /// Request bytes summed over the group's calls.
    pub bytes_sent: u64,
    /// Response bytes summed over the group's calls.
    pub bytes_received: u64,
    /// Transport-fault replays within the group.
    pub retries: u64,
    /// Client-side call latency distribution.
    pub latency: Histogram,
    /// Summed client-side call time.
    pub total_time: SimTime,
    /// Server dispatches attributed to this group.
    pub server_calls: u64,
    /// Summed server service (dispatch) time.
    pub server_service: SimTime,
    /// Summed batch-queue wait on the server.
    pub server_queue_wait: SimTime,
}

impl OpStats {
    /// Client time not accounted to GPU service: the network + middleware
    /// share of the group's calls.
    pub fn network_time(&self) -> SimTime {
        self.total_time.saturating_sub(self.server_service)
    }
}

/// Aggregated per-phase statistics: one workload phase (bracketed by an
/// [`Op::Phase`] marker span) and the ordinary client calls whose start
/// falls inside its window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Ordinary client calls inside the phase window.
    pub calls: u64,
    /// Request bytes summed over those calls.
    pub bytes_sent: u64,
    /// Response bytes summed over those calls.
    pub bytes_received: u64,
    /// Summed client-side call time of those calls.
    pub call_time: SimTime,
    /// Wall time of the phase marker itself (end − start).
    pub wall: SimTime,
    /// Server service time attributed to the phase window (by span start).
    pub server_service: SimTime,
}

impl PhaseStats {
    /// Phase call time not accounted to GPU service: the network +
    /// middleware share of the phase.
    pub fn network_time(&self) -> SimTime {
        self.call_time.saturating_sub(self.server_service)
    }
}

/// Everything a run's recorder captured, plus aggregation views.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub spans: Vec<CallSpan>,
    pub server_spans: Vec<ServerSpan>,
    /// `(dir, bytes, clock stamp)` per message, in arrival order.
    pub message_events: Vec<(Dir, u64, SimTime)>,
    pub messages: MessageTotals,
    pub retries: u64,
    pub reconnects: u64,
    /// Daemon lifecycle events (admission, reclamation, panics), in order.
    pub daemon_events: Vec<DaemonEvent>,
    /// Reactor readiness-loop passes that did work, in order.
    pub shard_spans: Vec<ShardSpan>,
    /// Multiplexed-transport frames per sub-stream, in arrival order.
    pub stream_frames: Vec<StreamFrameEvent>,
}

impl Report {
    /// Per-sub-stream byte totals of the multiplexed transport, keyed by
    /// stream id in first-appearance order: `(stream, sent, received)`.
    pub fn per_stream(&self) -> Vec<(u32, MessageTotals)> {
        let mut rows: Vec<(u32, MessageTotals)> = Vec::new();
        for f in &self.stream_frames {
            let i = match rows.iter().position(|(s, _)| *s == f.stream) {
                Some(i) => i,
                None => {
                    rows.push((f.stream, MessageTotals::default()));
                    rows.len() - 1
                }
            };
            let t = &mut rows[i].1;
            match f.dir {
                Dir::Sent => {
                    t.sent_count += 1;
                    t.sent_bytes += f.bytes;
                }
                Dir::Received => {
                    t.received_count += 1;
                    t.received_bytes += f.bytes;
                }
            }
        }
        rows
    }

    /// Per-operation aggregation, keyed by [`Op::group`], ordered by first
    /// appearance (client spans first, then server-only groups). The order
    /// is deterministic for a deterministic run, so renders of this view
    /// can be golden-filed.
    pub fn per_op(&self) -> Vec<(&'static str, OpStats)> {
        let mut rows: Vec<(&'static str, OpStats)> = Vec::new();
        let row = |key: &'static str, rows: &mut Vec<(&'static str, OpStats)>| -> usize {
            match rows.iter().position(|(k, _)| *k == key) {
                Some(i) => i,
                None => {
                    rows.push((key, OpStats::default()));
                    rows.len() - 1
                }
            }
        };
        for span in &self.spans {
            if span.op.as_phase().is_some() {
                continue; // phase markers are meta-spans, not calls
            }
            let i = row(span.op.group(), &mut rows);
            let stats = &mut rows[i].1;
            stats.calls += 1;
            stats.bytes_sent += span.bytes_sent;
            stats.bytes_received += span.bytes_received;
            stats.retries += span.retries as u64;
            stats.latency.record(span.duration());
            stats.total_time += span.duration();
        }
        for span in &self.server_spans {
            let i = row(span.op.group(), &mut rows);
            let stats = &mut rows[i].1;
            stats.server_calls += 1;
            stats.server_service += span.service();
            stats.server_queue_wait += span.queue_wait;
        }
        rows
    }

    /// Per-phase aggregation, in phase-marker emission order.
    ///
    /// Workload drivers bracket each phase with one [`Op::Phase`] marker
    /// span (emitted via `ObsHandle::emit_call` after the phase completes).
    /// Every ordinary client span whose *start* falls inside a marker's
    /// `[start, end)` window is folded into that phase; a span is charged to
    /// the first matching phase, so nested or overlapping markers should be
    /// avoided by drivers. Server spans are attributed the same way, which
    /// is only meaningful when client and server share one clock (the
    /// simulated and in-process channel transports).
    pub fn phase_rows(&self) -> Vec<(&'static str, PhaseStats)> {
        let markers: Vec<&CallSpan> = self
            .spans
            .iter()
            .filter(|s| s.op.as_phase().is_some())
            .collect();
        let mut rows: Vec<(&'static str, PhaseStats)> = markers
            .iter()
            .map(|m| {
                let stats = PhaseStats {
                    wall: m.duration(),
                    ..PhaseStats::default()
                };
                (m.op.group(), stats)
            })
            .collect();
        let slot = |start: SimTime, markers: &[&CallSpan]| -> Option<usize> {
            markers
                .iter()
                .position(|m| m.start <= start && start < m.end)
        };
        for span in &self.spans {
            if span.op.as_phase().is_some() {
                continue;
            }
            if let Some(i) = slot(span.start, &markers) {
                let stats = &mut rows[i].1;
                stats.calls += 1;
                stats.bytes_sent += span.bytes_sent;
                stats.bytes_received += span.bytes_received;
                stats.call_time += span.duration();
            }
        }
        for span in &self.server_spans {
            if let Some(i) = slot(span.start, &markers) {
                rows[i].1.server_service += span.service();
            }
        }
        rows
    }

    /// Total bytes `(sent, received)` across all client spans.
    pub fn totals(&self) -> (u64, u64) {
        self.spans
            .iter()
            .fold((0, 0), |(s, r), e| (s + e.bytes_sent, r + e.bytes_received))
    }

    /// Time from first span start to last span end.
    pub fn span(&self) -> SimTime {
        match (self.spans.first(), self.spans.last()) {
            (Some(first), Some(last)) => last.end.saturating_sub(first.start),
            _ => SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(op: Op, sent: u64, received: u64, start: u64, end: u64) -> CallSpan {
        CallSpan {
            op,
            bytes_sent: sent,
            bytes_received: received,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            retries: 0,
        }
    }

    #[test]
    fn recorder_aggregates_by_group_in_first_seen_order() {
        let rec = Recorder::new();
        let h = rec.handle();
        h.emit_call(&span(Op::Named("cudaMalloc"), 8, 8, 0, 100));
        h.emit_call(&span(Op::Named("cudaMemcpyH2D"), 1044, 4, 100, 500));
        h.emit_call(&span(Op::Named("cudaMalloc"), 8, 8, 500, 550));
        h.emit_server(&ServerSpan {
            op: Op::Named("cudaMalloc"),
            queue_wait: SimTime::ZERO,
            start: SimTime::from_nanos(10),
            end: SimTime::from_nanos(40),
        });
        let report = rec.report();
        let rows = report.per_op();
        assert_eq!(rows[0].0, "cudaMalloc");
        assert_eq!(rows[1].0, "cudaMemcpyH2D");
        let malloc = &rows[0].1;
        assert_eq!(malloc.calls, 2);
        assert_eq!((malloc.bytes_sent, malloc.bytes_received), (16, 16));
        assert_eq!(malloc.total_time, SimTime::from_nanos(150));
        assert_eq!(malloc.server_calls, 1);
        assert_eq!(malloc.server_service, SimTime::from_nanos(30));
        assert_eq!(malloc.network_time(), SimTime::from_nanos(120));
        assert_eq!(report.totals(), (8 + 1044 + 8, 8 + 4 + 8));
        assert_eq!(report.span(), SimTime::from_nanos(550));
    }

    #[test]
    fn batches_fold_into_one_group() {
        let rec = Recorder::new();
        let h = rec.handle();
        h.emit_call(&span(Op::Batch(2), 100, 8, 0, 10));
        h.emit_call(&span(Op::Batch(5), 200, 20, 10, 30));
        let rows = rec.report().per_op();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "batch");
        assert_eq!(rows[0].1.calls, 2);
    }

    #[test]
    fn messages_and_episodes_are_counted() {
        let rec = Recorder::new();
        let h = rec.handle();
        h.emit_message(Dir::Sent, 8);
        h.emit_message(Dir::Sent, 1044);
        h.emit_message(Dir::Received, 4);
        h.emit_retry(Op::Named("cudaFree"), 0);
        h.emit_reconnect();
        h.emit_daemon(DaemonEvent::BytesReclaimed { bytes: 4096 });
        h.emit_daemon(DaemonEvent::SessionPanicked);
        let report = rec.report();
        assert_eq!(report.messages.sent_count, 2);
        assert_eq!(report.messages.sent_bytes, 1052);
        assert_eq!(report.messages.received_count, 1);
        assert_eq!(report.messages.received_bytes, 4);
        assert_eq!(report.retries, 1);
        assert_eq!(report.reconnects, 1);
        assert_eq!(
            report.daemon_events,
            vec![
                DaemonEvent::BytesReclaimed { bytes: 4096 },
                DaemonEvent::SessionPanicked,
            ]
        );
    }

    #[test]
    fn clock_stamps_message_events() {
        let clock = rcuda_core::time::virtual_clock();
        let rec = Recorder::with_clock(clock.clone());
        let h = rec.handle();
        use rcuda_core::Clock as _;
        clock.advance(SimTime::from_nanos(500));
        h.emit_message(Dir::Sent, 8);
        let report = rec.report();
        assert_eq!(report.message_events[0].2, SimTime::from_nanos(500));
    }

    #[test]
    fn empty_report_is_harmless() {
        let report = Recorder::new().report();
        assert!(report.per_op().is_empty());
        assert!(report.phase_rows().is_empty());
        assert_eq!(report.totals(), (0, 0));
        assert_eq!(report.span(), SimTime::ZERO);
    }

    #[test]
    fn phase_rows_fold_spans_by_time_window() {
        let rec = Recorder::new();
        let h = rec.handle();
        // Phase "weights": two H2D copies, then the marker bracketing them.
        h.emit_call(&span(Op::Named("cudaMemcpyH2D"), 1024, 4, 0, 100));
        h.emit_call(&span(Op::Named("cudaMemcpyH2D"), 2048, 4, 100, 300));
        h.emit_call(&span(Op::Phase("weights"), 0, 0, 0, 300));
        // Phase "block": one launch; the sync at t=500 is outside any phase.
        h.emit_call(&span(Op::Named("cudaLaunch"), 64, 4, 300, 450));
        h.emit_call(&span(Op::Phase("block"), 0, 0, 300, 500));
        h.emit_call(&span(Op::Named("cudaThreadSynchronize"), 8, 4, 500, 520));
        h.emit_server(&ServerSpan {
            op: Op::Named("cudaLaunch"),
            queue_wait: SimTime::ZERO,
            start: SimTime::from_nanos(350),
            end: SimTime::from_nanos(430),
        });
        let report = rec.report();
        let rows = report.phase_rows();
        assert_eq!(rows.len(), 2);
        let (name, weights) = rows[0];
        assert_eq!(name, "weights");
        assert_eq!(weights.calls, 2);
        assert_eq!((weights.bytes_sent, weights.bytes_received), (3072, 8));
        assert_eq!(weights.call_time, SimTime::from_nanos(300));
        assert_eq!(weights.wall, SimTime::from_nanos(300));
        assert_eq!(weights.server_service, SimTime::ZERO);
        let (name, block) = rows[1];
        assert_eq!(name, "block");
        assert_eq!(block.calls, 1);
        assert_eq!(block.server_service, SimTime::from_nanos(80));
        assert_eq!(block.network_time(), SimTime::from_nanos(70));
        // The marker itself never shows up as a per-op row.
        assert!(report.per_op().iter().all(|(k, _)| *k != "weights"));
        let launch = report
            .per_op()
            .into_iter()
            .find(|(k, _)| *k == "cudaLaunch")
            .unwrap()
            .1;
        assert_eq!(launch.calls, 1);
    }
}
