//! Property tests on the device-memory allocator's invariants under
//! arbitrary allocate/free interleavings.

use proptest::prelude::*;
use rcuda_core::DevicePtr;
use rcuda_gpu::alloc::DeviceAllocator;
use rcuda_gpu::memory::DeviceMemory;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u32),
    /// Free the i-th oldest live allocation (mod live count).
    FreeLive(usize),
    /// Free a pointer that was never allocated.
    FreeGarbage(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u32..200_000).prop_map(Op::Alloc),
        3 => (0usize..64).prop_map(Op::FreeLive),
        1 => any::<u32>().prop_map(Op::FreeGarbage),
    ]
}

proptest! {
    /// Accounting invariant: used + free == capacity at every step; spans
    /// never overlap; full cleanup returns all memory.
    #[test]
    fn allocator_conserves_memory(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let capacity = 8 << 20;
        let mut a = DeviceAllocator::new(capacity);
        let total = a.free_bytes();
        let mut live: Vec<(DevicePtr, u32)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(p) = a.alloc(size) {
                        // The new span must not overlap any live span.
                        let rounded = size.div_ceil(256) * 256;
                        for &(q, qlen) in &live {
                            prop_assert!(
                                p.addr() + rounded <= q.addr() || q.addr() + qlen <= p.addr(),
                                "overlap: {p} len {rounded} with {q} len {qlen}"
                            );
                        }
                        live.push((p, rounded));
                    }
                }
                Op::FreeLive(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(i % live.len());
                        prop_assert!(a.free(p).is_ok());
                        prop_assert!(a.free(p).is_err(), "double free must fail");
                    }
                }
                Op::FreeGarbage(addr) => {
                    let p = DevicePtr::new(addr);
                    if !live.iter().any(|&(q, _)| q == p) {
                        prop_assert!(a.free(p).is_err());
                    }
                }
            }
            prop_assert_eq!(a.used_bytes() + a.free_bytes(), total);
            prop_assert_eq!(a.live_count(), live.len());
        }

        for (p, _) in live {
            a.free(p).unwrap();
        }
        prop_assert_eq!(a.free_bytes(), total, "all memory recovered");
        prop_assert_eq!(a.live_count(), 0);
    }

    /// Data written to one allocation never leaks into another, for
    /// arbitrary write offsets and sizes.
    #[test]
    fn writes_stay_inside_their_allocation(
        sizes in proptest::collection::vec(16u32..4096, 2..8),
        write_idx in 0usize..8,
        offset_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut mem = DeviceMemory::new(16 << 20);
        let ptrs: Vec<(DevicePtr, u32)> = sizes
            .iter()
            .map(|&s| (mem.malloc(s).unwrap(), s))
            .collect();
        let (target, tsize) = ptrs[write_idx % ptrs.len()];
        let offset = ((tsize - 8) as f64 * offset_frac) as u32;
        mem.write(target.offset(offset), &[byte; 8]).unwrap();

        for &(p, s) in &ptrs {
            if p == target {
                let got = mem.read(p.offset(offset), 8).unwrap();
                prop_assert_eq!(got, vec![byte; 8]);
            } else {
                let got = mem.read(p, s).unwrap();
                prop_assert!(got.iter().all(|&b| b == 0), "cross-allocation leak");
            }
        }
    }

    /// check_range accepts exactly the in-bounds ranges.
    #[test]
    fn check_range_is_exact(size in 1u32..10_000, probe_off in 0u32..20_000, probe_len in 0u32..20_000) {
        let mut a = DeviceAllocator::new(1 << 20);
        let p = a.alloc(size).unwrap();
        let rounded = size.div_ceil(256) * 256;
        let ok = a.check_range(p.offset(probe_off.min(rounded)), probe_len).is_ok();
        let within = probe_off.min(rounded) as u64 + probe_len as u64 <= rounded as u64
            && probe_off.min(rounded) < rounded || (probe_len == 0 && probe_off.min(rounded) < rounded);
        // A zero-length probe at a valid offset is fine; anything exceeding
        // the rounded span must fail.
        if probe_off.min(rounded) as u64 + probe_len as u64 > rounded as u64 {
            prop_assert!(!ok, "accepted out-of-bounds range");
        } else if probe_off.min(rounded) < rounded {
            prop_assert!(ok, "rejected in-bounds range");
        }
        let _ = within;
    }
}
