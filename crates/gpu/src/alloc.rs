//! Device-memory allocator: first-fit over a 32-bit address space with
//! free-block coalescing.
//!
//! Addresses are `u32` because the paper's wire protocol carries device
//! pointers as 4 bytes (Table I). The null page is never handed out, so
//! `DevicePtr::NULL` stays an unambiguous error value.

use rcuda_core::{CudaError, CudaResult, DevicePtr};
use std::collections::BTreeMap;

/// CUDA-style allocation alignment.
const ALIGN: u32 = 256;

/// First address ever handed out (keeps the null page unmapped).
const BASE: u32 = 0x1000;

/// Free-block selection policy.
///
/// First-fit is the classic low-overhead choice; best-fit trades a full
/// free-list scan for tighter packing under fragmentation. The ablation
/// test below demonstrates the difference; CUDA's own allocator behavior
/// is closest to first-fit with coalescing, which is the default here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Lowest-address block that fits.
    #[default]
    FirstFit,
    /// Smallest block that fits (ties to the lowest address).
    BestFit,
}

/// A coalescing free-list allocator over device memory.
#[derive(Debug)]
pub struct DeviceAllocator {
    /// Total manageable bytes.
    capacity: u32,
    /// Free blocks: start → length. Invariant: no two blocks adjacent
    /// (coalesced), none zero-length, all within [BASE, BASE+capacity).
    free: BTreeMap<u32, u32>,
    /// Live allocations: start → length.
    live: BTreeMap<u32, u32>,
    policy: AllocPolicy,
}

impl DeviceAllocator {
    /// An allocator managing `capacity` bytes of device memory (first-fit).
    pub fn new(capacity: u32) -> Self {
        Self::with_policy(capacity, AllocPolicy::FirstFit)
    }

    /// An allocator with an explicit placement policy.
    pub fn with_policy(capacity: u32, policy: AllocPolicy) -> Self {
        assert!(capacity > 0, "device must have memory");
        let mut free = BTreeMap::new();
        free.insert(BASE, capacity);
        DeviceAllocator {
            capacity,
            free,
            live: BTreeMap::new(),
            policy,
        }
    }

    /// Allocate `size` bytes (rounded up to the alignment). Mirrors
    /// `cudaMalloc`: zero-size requests are invalid; exhaustion reports
    /// `cudaErrorMemoryAllocation`.
    pub fn alloc(&mut self, size: u32) -> CudaResult<DevicePtr> {
        if size == 0 {
            return Err(CudaError::InvalidValue);
        }
        let size = size
            .checked_add(ALIGN - 1)
            .ok_or(CudaError::MemoryAllocation)?
            / ALIGN
            * ALIGN;
        let found = match self.policy {
            AllocPolicy::FirstFit => self
                .free
                .iter()
                .find(|(_, &len)| len >= size)
                .map(|(&start, &len)| (start, len)),
            AllocPolicy::BestFit => self
                .free
                .iter()
                .filter(|(_, &len)| len >= size)
                .min_by_key(|&(&start, &len)| (len, start))
                .map(|(&start, &len)| (start, len)),
        };
        let (start, len) = found.ok_or(CudaError::MemoryAllocation)?;
        self.free.remove(&start);
        if len > size {
            self.free.insert(start + size, len - size);
        }
        self.live.insert(start, size);
        Ok(DevicePtr::new(start))
    }

    /// Release an allocation. Mirrors `cudaFree`: freeing a pointer that was
    /// never allocated (or double-freeing) reports
    /// `cudaErrorInvalidDevicePointer`.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        let start = ptr.addr();
        let len = self
            .live
            .remove(&start)
            .ok_or(CudaError::InvalidDevicePointer)?;
        // Coalesce with the block after...
        let mut merged_len = len;
        if let Some(&next_len) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            merged_len += next_len;
        }
        // ...and the block before.
        let mut merged_start = start;
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                merged_start = prev_start;
                merged_len += prev_len;
            }
        }
        self.free.insert(merged_start, merged_len);
        Ok(())
    }

    /// The live allocation containing `ptr` (which may point inside it), as
    /// `(base, length)`.
    pub fn containing(&self, ptr: DevicePtr) -> CudaResult<(DevicePtr, u32)> {
        let addr = ptr.addr();
        let (&start, &len) = self
            .live
            .range(..=addr)
            .next_back()
            .ok_or(CudaError::InvalidDevicePointer)?;
        if addr < start + len {
            Ok((DevicePtr::new(start), len))
        } else {
            Err(CudaError::InvalidDevicePointer)
        }
    }

    /// Validate that `[ptr, ptr + size)` lies inside one live allocation.
    pub fn check_range(&self, ptr: DevicePtr, size: u32) -> CudaResult<()> {
        let (base, len) = self.containing(ptr)?;
        let offset = ptr.addr() - base.addr();
        if offset.checked_add(size).is_some_and(|end| end <= len) {
            Ok(())
        } else {
            Err(CudaError::InvalidDevicePointer)
        }
    }

    /// Bytes currently allocated (after alignment rounding).
    pub fn used_bytes(&self) -> u64 {
        self.live.values().map(|&l| l as u64).sum()
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().map(|&l| l as u64).sum()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity as u64
    }

    /// The placement policy in use.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Size of the largest free block — the fragmentation metric the
    /// policy ablation reports (a request larger than this fails even if
    /// total free space would suffice).
    pub fn largest_free_block(&self) -> u32 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Live allocations as `(base, rounded_length)` pairs in address order —
    /// the walk a migration snapshot serializes.
    pub fn live_blocks(&self) -> Vec<(u32, u32)> {
        self.live.iter().map(|(&s, &l)| (s, l)).collect()
    }

    /// Rebuild an allocator whose live set is exactly `blocks` (the
    /// migration restore path). The free map is reconstructed as the
    /// coalesced complement of the live blocks over `[BASE, BASE+capacity)`,
    /// which is byte-identical to the state the source allocator was in —
    /// its free list is always coalesced, so the complement of its live set
    /// *is* its free set. Blocks must be aligned, disjoint, and in range.
    pub fn restore(capacity: u32, blocks: &[(u32, u32)]) -> CudaResult<Self> {
        assert!(capacity > 0, "device must have memory");
        let mut sorted = blocks.to_vec();
        sorted.sort_unstable();
        let mut free = BTreeMap::new();
        let mut live = BTreeMap::new();
        let mut cursor = BASE as u64;
        let end = BASE as u64 + capacity as u64;
        for &(start, len) in &sorted {
            let (s, l) = (start as u64, len as u64);
            if len == 0 || start % ALIGN != 0 || len % ALIGN != 0 || s < cursor || s + l > end {
                return Err(CudaError::InvalidValue);
            }
            if s > cursor {
                free.insert(cursor as u32, (s - cursor) as u32);
            }
            live.insert(start, len);
            cursor = s + l;
        }
        if cursor < end {
            free.insert(cursor as u32, (end - cursor) as u32);
        }
        Ok(DeviceAllocator {
            capacity,
            free,
            live,
            policy: AllocPolicy::FirstFit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_1mib() -> DeviceAllocator {
        DeviceAllocator::new(1 << 20)
    }

    #[test]
    fn alloc_free_cycle_returns_all_memory() {
        let mut a = alloc_1mib();
        let total_free = a.free_bytes();
        let p1 = a.alloc(1000).unwrap();
        let p2 = a.alloc(2000).unwrap();
        let p3 = a.alloc(3000).unwrap();
        assert_eq!(a.live_count(), 3);
        // Free out of order to exercise both coalescing directions.
        a.free(p2).unwrap();
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.used_bytes(), 0);
        assert_eq!(a.free_bytes(), total_free);
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = alloc_1mib();
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for size in [1u32, 255, 256, 257, 4096, 10_000] {
            let p = a.alloc(size).unwrap();
            assert_eq!(p.addr() % ALIGN, 0, "misaligned");
            let rounded = size.div_ceil(ALIGN) * ALIGN;
            for &(s, l) in &spans {
                assert!(p.addr() + rounded <= s || s + l <= p.addr(), "overlap");
            }
            spans.push((p.addr(), rounded));
        }
    }

    #[test]
    fn null_is_never_allocated() {
        let mut a = alloc_1mib();
        for _ in 0..100 {
            let p = a.alloc(64).unwrap();
            assert!(!p.is_null());
        }
    }

    #[test]
    fn oom_reports_memory_allocation() {
        let mut a = DeviceAllocator::new(4096);
        assert_eq!(a.alloc(8192), Err(CudaError::MemoryAllocation));
        let p = a.alloc(4096).unwrap();
        assert_eq!(a.alloc(1), Err(CudaError::MemoryAllocation));
        a.free(p).unwrap();
        assert!(a.alloc(4096).is_ok(), "memory recovered after free");
    }

    #[test]
    fn zero_size_is_invalid_value() {
        let mut a = alloc_1mib();
        assert_eq!(a.alloc(0), Err(CudaError::InvalidValue));
    }

    #[test]
    fn double_free_is_invalid_pointer() {
        let mut a = alloc_1mib();
        let p = a.alloc(128).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn freeing_garbage_is_invalid_pointer() {
        let mut a = alloc_1mib();
        assert_eq!(
            a.free(DevicePtr::new(0xDEAD)),
            Err(CudaError::InvalidDevicePointer)
        );
        assert_eq!(
            a.free(DevicePtr::NULL),
            Err(CudaError::InvalidDevicePointer)
        );
    }

    #[test]
    fn containing_resolves_interior_pointers() {
        let mut a = alloc_1mib();
        let p = a.alloc(1024).unwrap();
        let (base, len) = a.containing(p.offset(100)).unwrap();
        assert_eq!(base, p);
        assert_eq!(len, 1024);
        assert!(a.containing(p.offset(1024)).is_err(), "one past the end");
    }

    #[test]
    fn check_range_enforces_bounds() {
        let mut a = alloc_1mib();
        let p = a.alloc(1000).unwrap(); // rounds to 1024
        a.check_range(p, 1024).unwrap();
        a.check_range(p.offset(512), 512).unwrap();
        assert_eq!(a.check_range(p, 1025), Err(CudaError::InvalidDevicePointer));
        assert_eq!(
            a.check_range(p.offset(1020), 8),
            Err(CudaError::InvalidDevicePointer)
        );
    }

    #[test]
    fn best_fit_keeps_big_holes_intact() {
        // Discriminating layout: a big hole before a small hole. A small
        // request under first-fit carves the big hole; best-fit takes the
        // small one and preserves the big block.
        let mut ff = DeviceAllocator::with_policy(64 * 1024, AllocPolicy::FirstFit);
        let mut bf = DeviceAllocator::with_policy(64 * 1024, AllocPolicy::BestFit);
        for a in [&mut ff, &mut bf] {
            let big = a.alloc(8 * 1024).unwrap();
            let _keep = a.alloc(256).unwrap();
            let small = a.alloc(256).unwrap();
            let _keep2 = a.alloc(256).unwrap();
            // Consume the tail so the crafted holes are the only free space.
            let _filler = a.alloc(64 * 1024 - 8 * 1024 - 3 * 256).unwrap();
            a.free(big).unwrap();
            a.free(small).unwrap();
            a.alloc(256).unwrap();
        }
        assert!(
            bf.largest_free_block() > ff.largest_free_block(),
            "best-fit keeps the big hole: bf {} vs ff {}",
            bf.largest_free_block(),
            ff.largest_free_block()
        );
        assert_eq!(bf.policy(), AllocPolicy::BestFit);
    }

    #[test]
    fn restore_reproduces_allocator_state_exactly() {
        let mut a = alloc_1mib();
        let p1 = a.alloc(1000).unwrap();
        let p2 = a.alloc(2000).unwrap();
        let _p3 = a.alloc(3000).unwrap();
        a.free(p2).unwrap();
        let blocks = a.live_blocks();
        let mut b = DeviceAllocator::restore(1 << 20, &blocks).unwrap();
        assert_eq!(b.live_blocks(), a.live_blocks());
        assert_eq!(b.used_bytes(), a.used_bytes());
        assert_eq!(b.free_bytes(), a.free_bytes());
        // The next allocation lands at the same address on both sides — the
        // determinism migration and journal-replay failover rely on.
        assert_eq!(a.alloc(512).unwrap(), b.alloc(512).unwrap());
        a.free(p1).unwrap();
        b.free(p1).unwrap();
        assert_eq!(a.live_blocks(), b.live_blocks());
    }

    #[test]
    fn restore_rejects_malformed_block_lists() {
        assert!(DeviceAllocator::restore(1 << 20, &[(BASE, 0)]).is_err());
        assert!(DeviceAllocator::restore(1 << 20, &[(BASE + 1, 256)]).is_err());
        assert!(
            DeviceAllocator::restore(1 << 20, &[(BASE, 512), (BASE + 256, 256)]).is_err(),
            "overlapping blocks rejected"
        );
        assert!(DeviceAllocator::restore(4096, &[(BASE, 8192)]).is_err());
    }

    #[test]
    fn fragmentation_then_coalesce_allows_big_alloc() {
        let mut a = DeviceAllocator::new(64 * 1024);
        let ptrs: Vec<_> = (0..16).map(|_| a.alloc(4096).unwrap()).collect();
        assert_eq!(a.alloc(4096), Err(CudaError::MemoryAllocation));
        // Free every other block: a 32 KiB request must still fail...
        for p in ptrs.iter().step_by(2) {
            a.free(*p).unwrap();
        }
        assert_eq!(a.alloc(32 * 1024), Err(CudaError::MemoryAllocation));
        // ...until the gaps coalesce.
        for p in ptrs.iter().skip(1).step_by(2) {
            a.free(*p).unwrap();
        }
        assert!(a.alloc(64 * 1024).is_ok());
    }
}
