//! The device's kernel registry: name → executable function.
//!
//! A kernel is an ordinary Rust function operating on device memory — the
//! functional stand-in for the CUDA machine code the paper's GPU executes.
//! Launch geometry is passed through (kernels validate it where it matters)
//! and arguments arrive as the packed block shipped in the `cudaLaunch`
//! message (decoded with [`ArgReader`]).

use rcuda_core::{ArgReader, CudaError, CudaResult, Dim3};
use rcuda_kernels::complex::{bytes_to_complex, complex_to_bytes};
use rcuda_kernels::fft::fft_batch_512;
use rcuda_kernels::matrix::sgemm_tiled_gpu;
use rcuda_kernels::nbody::{nbody_accelerations, ACCEL_STRIDE, BODY_STRIDE};
use rcuda_kernels::transformer::{layernorm_rows, softmax_rows};
use std::collections::HashMap;

use crate::memory::DeviceMemory;

/// A launchable device function.
pub type KernelFn =
    fn(mem: &mut DeviceMemory, grid: Dim3, block: Dim3, args: &[u8]) -> CudaResult<()>;

/// Name → kernel lookup for one device.
#[derive(Default)]
pub struct KernelRegistry {
    map: HashMap<String, KernelFn>,
}

impl KernelRegistry {
    pub fn new() -> Self {
        KernelRegistry::default()
    }

    /// Register (or replace) a kernel.
    pub fn register(&mut self, name: &str, f: KernelFn) {
        self.map.insert(name.to_string(), f);
    }

    /// Resolve a kernel by name; unknown names report
    /// `cudaErrorInvalidDeviceFunction`, as CUDA does.
    pub fn resolve(&self, name: &str) -> CudaResult<KernelFn> {
        self.map
            .get(name)
            .copied()
            .ok_or(CudaError::InvalidDeviceFunction)
    }

    /// Whether a kernel is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Registered kernel names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

/// The registry every simulated device ships with: the two case-study
/// kernels plus small utility kernels used by tests and examples.
pub fn builtin_registry() -> KernelRegistry {
    let mut r = KernelRegistry::new();
    r.register("sgemmNN", k_sgemm_nn);
    r.register("fft512_batch", k_fft512_batch);
    r.register("nbody_accel", k_nbody_accel);
    r.register("vec_add", k_vec_add);
    r.register("saxpy", k_saxpy);
    r.register("fill", k_fill);
    r.register("softmax_rows", k_softmax_rows);
    r.register("layernorm_rows", k_layernorm_rows);
    r
}

/// `sgemmNN(a, b, c, m, n, k)` — C = A·B, row-major f32 (the Volkov-kernel
/// stand-in; §IV-B).
fn k_sgemm_nn(mem: &mut DeviceMemory, _grid: Dim3, _block: Dim3, args: &[u8]) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let a_ptr = r.ptr()?;
    let b_ptr = r.ptr()?;
    let c_ptr = r.ptr()?;
    let m = r.u32()? as usize;
    let n = r.u32()? as usize;
    let k = r.u32()? as usize;
    r.finish()?;
    if m == 0 || n == 0 || k == 0 {
        return Err(CudaError::InvalidValue);
    }
    let a = mem.read_f32(a_ptr, (m * k) as u32)?;
    let b = mem.read_f32(b_ptr, (k * n) as u32)?;
    let mut c = vec![0.0f32; m * n];
    sgemm_tiled_gpu(m, n, k, &a, &b, &mut c);
    mem.write_f32(c_ptr, &c)
}

/// `fft512_batch(data, batch)` — in-place forward FFT of `batch` 512-point
/// complex signals.
fn k_fft512_batch(
    mem: &mut DeviceMemory,
    _grid: Dim3,
    _block: Dim3,
    args: &[u8],
) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let ptr = r.ptr()?;
    let batch = r.u32()? as usize;
    r.finish()?;
    if batch == 0 {
        return Err(CudaError::InvalidValue);
    }
    let bytes = mem.read(ptr, (batch * 512 * 8) as u32)?;
    let mut data = bytes_to_complex(&bytes).ok_or(CudaError::InvalidValue)?;
    fft_batch_512(&mut data);
    mem.write(ptr, &complex_to_bytes(&data))
}

/// `nbody_accel(bodies, accel, n, softening)` — direct-summation gravity
/// over `n` packed bodies (third workload family; see
/// `rcuda_kernels::nbody`).
fn k_nbody_accel(mem: &mut DeviceMemory, _grid: Dim3, _block: Dim3, args: &[u8]) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let bodies_ptr = r.ptr()?;
    let accel_ptr = r.ptr()?;
    let n = r.u32()? as usize;
    let softening = r.f32()?;
    r.finish()?;
    if n == 0 || softening <= 0.0 {
        return Err(CudaError::InvalidValue);
    }
    let bodies = mem.read_f32(bodies_ptr, (n * BODY_STRIDE) as u32)?;
    let mut accel = vec![0.0f32; n * ACCEL_STRIDE];
    nbody_accelerations(&bodies, &mut accel, softening);
    mem.write_f32(accel_ptr, &accel)
}

/// `softmax_rows(x, rows, cols)` — in-place row-wise softmax over a
/// row-major `rows × cols` f32 matrix (transformer-block primitive; see
/// `rcuda_kernels::transformer`).
fn k_softmax_rows(
    mem: &mut DeviceMemory,
    _grid: Dim3,
    _block: Dim3,
    args: &[u8],
) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let ptr = r.ptr()?;
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    r.finish()?;
    if rows == 0 || cols == 0 {
        return Err(CudaError::InvalidValue);
    }
    let mut x = mem.read_f32(ptr, (rows * cols) as u32)?;
    softmax_rows(rows, cols, &mut x);
    mem.write_f32(ptr, &x)
}

/// `layernorm_rows(x, gamma, beta, rows, cols, eps)` — in-place row-wise
/// layer normalization with per-column scale `gamma` and shift `beta`.
fn k_layernorm_rows(
    mem: &mut DeviceMemory,
    _grid: Dim3,
    _block: Dim3,
    args: &[u8],
) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let x_ptr = r.ptr()?;
    let gamma_ptr = r.ptr()?;
    let beta_ptr = r.ptr()?;
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let eps = r.f32()?;
    r.finish()?;
    if rows == 0 || cols == 0 || eps.is_nan() || eps <= 0.0 {
        return Err(CudaError::InvalidValue);
    }
    let mut x = mem.read_f32(x_ptr, (rows * cols) as u32)?;
    let gamma = mem.read_f32(gamma_ptr, cols as u32)?;
    let beta = mem.read_f32(beta_ptr, cols as u32)?;
    layernorm_rows(rows, cols, &mut x, &gamma, &beta, eps);
    mem.write_f32(x_ptr, &x)
}

/// `vec_add(a, b, c, n)` — c[i] = a[i] + b[i].
fn k_vec_add(mem: &mut DeviceMemory, _grid: Dim3, _block: Dim3, args: &[u8]) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let a_ptr = r.ptr()?;
    let b_ptr = r.ptr()?;
    let c_ptr = r.ptr()?;
    let n = r.u32()?;
    r.finish()?;
    let a = mem.read_f32(a_ptr, n)?;
    let b = mem.read_f32(b_ptr, n)?;
    let c: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    mem.write_f32(c_ptr, &c)
}

/// `saxpy(alpha, x, y, n)` — y[i] += alpha · x[i].
fn k_saxpy(mem: &mut DeviceMemory, _grid: Dim3, _block: Dim3, args: &[u8]) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let alpha = r.f32()?;
    let x_ptr = r.ptr()?;
    let y_ptr = r.ptr()?;
    let n = r.u32()?;
    r.finish()?;
    let x = mem.read_f32(x_ptr, n)?;
    let mut y = mem.read_f32(y_ptr, n)?;
    for (yi, xi) in y.iter_mut().zip(&x) {
        *yi += alpha * xi;
    }
    mem.write_f32(y_ptr, &y)
}

/// `fill(ptr, n, value)` — ptr[i] = value.
///
/// Writes in place through `buffer_mut` rather than staging a `Vec`: this
/// kernel runs inside the steady-state memcpy loop the counting-allocator
/// tests measure, so it must not touch the heap.
fn k_fill(mem: &mut DeviceMemory, _grid: Dim3, _block: Dim3, args: &[u8]) -> CudaResult<()> {
    let mut r = ArgReader::new(args);
    let ptr = r.ptr()?;
    let n = r.u32()?;
    let value = r.f32()?;
    r.finish()?;
    let bytes = mem.buffer_mut(ptr, n.checked_mul(4).ok_or(CudaError::InvalidValue)?)?;
    let le = value.to_le_bytes();
    for slot in bytes.chunks_exact_mut(4) {
        slot.copy_from_slice(&le);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::ArgPack;

    fn geometry() -> (Dim3, Dim3) {
        (Dim3::x(1), Dim3::x(64))
    }

    #[test]
    fn registry_resolves_builtins() {
        let r = builtin_registry();
        for name in [
            "sgemmNN",
            "fft512_batch",
            "nbody_accel",
            "vec_add",
            "saxpy",
            "fill",
            "softmax_rows",
            "layernorm_rows",
        ] {
            assert!(r.contains(name), "{name}");
            r.resolve(name).unwrap();
        }
        assert_eq!(
            r.resolve("nonexistent").err(),
            Some(CudaError::InvalidDeviceFunction)
        );
        assert_eq!(r.names().len(), 8);
    }

    #[test]
    fn softmax_kernel_matches_reference_bitwise() {
        let rows = 3usize;
        let cols = 5usize;
        let input: Vec<f32> = (0..rows * cols).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let mut mem = DeviceMemory::new(1 << 16);
        let p = mem.malloc((rows * cols * 4) as u32).unwrap();
        mem.write_f32(p, &input).unwrap();
        let args = ArgPack::new()
            .push_ptr(p)
            .push_u32(rows as u32)
            .push_u32(cols as u32)
            .into_bytes();
        let (g, b) = geometry();
        k_softmax_rows(&mut mem, g, b, &args).unwrap();
        let got = mem.read_f32(p, (rows * cols) as u32).unwrap();
        let mut expect = input;
        softmax_rows(rows, cols, &mut expect);
        assert_eq!(got, expect, "device softmax must be bit-identical");
    }

    #[test]
    fn layernorm_kernel_matches_reference_bitwise() {
        let rows = 2usize;
        let cols = 7usize;
        let input: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 13 % 9) as f32) - 4.0)
            .collect();
        let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + i as f32 * 0.1).collect();
        let beta: Vec<f32> = (0..cols).map(|i| i as f32 * -0.2).collect();
        let mut mem = DeviceMemory::new(1 << 16);
        let px = mem.malloc((rows * cols * 4) as u32).unwrap();
        let pg = mem.malloc((cols * 4) as u32).unwrap();
        let pb = mem.malloc((cols * 4) as u32).unwrap();
        mem.write_f32(px, &input).unwrap();
        mem.write_f32(pg, &gamma).unwrap();
        mem.write_f32(pb, &beta).unwrap();
        let args = ArgPack::new()
            .push_ptr(px)
            .push_ptr(pg)
            .push_ptr(pb)
            .push_u32(rows as u32)
            .push_u32(cols as u32)
            .push_f32(1e-5)
            .into_bytes();
        let (g, b) = geometry();
        k_layernorm_rows(&mut mem, g, b, &args).unwrap();
        let got = mem.read_f32(px, (rows * cols) as u32).unwrap();
        let mut expect = input;
        layernorm_rows(rows, cols, &mut expect, &gamma, &beta, 1e-5);
        assert_eq!(got, expect, "device layernorm must be bit-identical");
    }

    #[test]
    fn nbody_kernel_matches_reference() {
        use rcuda_kernels::nbody::nbody_input;
        let n = 16usize;
        let bodies = nbody_input(n, 9);
        let mut mem = DeviceMemory::new(1 << 20);
        let pb = mem.malloc((n * BODY_STRIDE * 4) as u32).unwrap();
        let pa = mem.malloc((n * ACCEL_STRIDE * 4) as u32).unwrap();
        mem.write_f32(pb, &bodies).unwrap();
        let args = ArgPack::new()
            .push_ptr(pb)
            .push_ptr(pa)
            .push_u32(n as u32)
            .push_f32(0.01)
            .into_bytes();
        let (g, b) = geometry();
        k_nbody_accel(&mut mem, g, b, &args).unwrap();
        let got = mem.read_f32(pa, (n * ACCEL_STRIDE) as u32).unwrap();
        let mut expect = vec![0.0f32; n * ACCEL_STRIDE];
        nbody_accelerations(&bodies, &mut expect, 0.01);
        assert_eq!(got, expect, "kernel must be bit-identical to reference");
    }

    #[test]
    fn vec_add_computes() {
        let mut mem = DeviceMemory::new(1 << 16);
        let a = mem.malloc(16).unwrap();
        let b = mem.malloc(16).unwrap();
        let c = mem.malloc(16).unwrap();
        mem.write_f32(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        mem.write_f32(b, &[10.0, 20.0, 30.0, 40.0]).unwrap();
        let args = ArgPack::new()
            .push_ptr(a)
            .push_ptr(b)
            .push_ptr(c)
            .push_u32(4)
            .into_bytes();
        let (g, bk) = geometry();
        k_vec_add(&mut mem, g, bk, &args).unwrap();
        assert_eq!(mem.read_f32(c, 4).unwrap(), vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn saxpy_computes_in_place() {
        let mut mem = DeviceMemory::new(1 << 16);
        let x = mem.malloc(8).unwrap();
        let y = mem.malloc(8).unwrap();
        mem.write_f32(x, &[1.0, 2.0]).unwrap();
        mem.write_f32(y, &[5.0, 5.0]).unwrap();
        let args = ArgPack::new()
            .push_f32(2.0)
            .push_ptr(x)
            .push_ptr(y)
            .push_u32(2)
            .into_bytes();
        let (g, b) = geometry();
        k_saxpy(&mut mem, g, b, &args).unwrap();
        assert_eq!(mem.read_f32(y, 2).unwrap(), vec![7.0, 9.0]);
    }

    #[test]
    fn fill_writes_constant() {
        let mut mem = DeviceMemory::new(1 << 16);
        let p = mem.malloc(40).unwrap();
        let args = ArgPack::new()
            .push_ptr(p)
            .push_u32(10)
            .push_f32(3.5)
            .into_bytes();
        let (g, b) = geometry();
        k_fill(&mut mem, g, b, &args).unwrap();
        assert_eq!(mem.read_f32(p, 10).unwrap(), vec![3.5; 10]);
    }

    #[test]
    fn sgemm_kernel_matches_reference() {
        use rcuda_kernels::matrix::sgemm_naive;
        use rcuda_kernels::workload::matrix_pair;
        let m = 12;
        let (a, b) = matrix_pair(m, 5);
        let mut mem = DeviceMemory::new(1 << 20);
        let pa = mem.malloc((m * m * 4) as u32).unwrap();
        let pb = mem.malloc((m * m * 4) as u32).unwrap();
        let pc = mem.malloc((m * m * 4) as u32).unwrap();
        mem.write_f32(pa, a.as_slice()).unwrap();
        mem.write_f32(pb, b.as_slice()).unwrap();
        let args = ArgPack::new()
            .push_ptr(pa)
            .push_ptr(pb)
            .push_ptr(pc)
            .push_u32(m as u32)
            .push_u32(m as u32)
            .push_u32(m as u32)
            .into_bytes();
        let (g, bk) = geometry();
        k_sgemm_nn(&mut mem, g, bk, &args).unwrap();
        let got = mem.read_f32(pc, (m * m * 4 / 4) as u32).unwrap();
        let mut expect = vec![0.0f32; m * m];
        sgemm_naive(m, m, m, a.as_slice(), b.as_slice(), &mut expect);
        let diff = got
            .iter()
            .zip(&expect)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4, "diff {diff}");
    }

    #[test]
    fn fft_kernel_matches_reference() {
        use rcuda_kernels::fft::fft_batch_512;
        use rcuda_kernels::workload::fft_input;
        let batch = 2;
        let input = fft_input(batch, 3);
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.malloc((batch * 512 * 8) as u32).unwrap();
        mem.write(p, &complex_to_bytes(&input)).unwrap();
        let args = ArgPack::new()
            .push_ptr(p)
            .push_u32(batch as u32)
            .into_bytes();
        let (g, b) = geometry();
        k_fft512_batch(&mut mem, g, b, &args).unwrap();
        let got = bytes_to_complex(&mem.read(p, (batch * 512 * 8) as u32).unwrap()).unwrap();
        let mut expect = input;
        fft_batch_512(&mut expect);
        assert_eq!(got, expect, "remote kernel must be bit-identical");
    }

    #[test]
    fn bad_args_are_rejected_not_panicking() {
        let mut mem = DeviceMemory::new(1 << 16);
        let (g, b) = geometry();
        // Truncated arg block.
        assert!(k_vec_add(&mut mem, g, b, &[0u8; 3]).is_err());
        // Dangling pointers.
        let args = ArgPack::new()
            .push_ptr(rcuda_core::DevicePtr::new(0xDEAD))
            .push_u32(4)
            .push_f32(0.0)
            .into_bytes();
        assert_eq!(
            k_fill(&mut mem, g, b, &args),
            Err(CudaError::InvalidDevicePointer)
        );
        // Zero-size sgemm.
        let args = ArgPack::new()
            .push_ptr(rcuda_core::DevicePtr::new(0x1000))
            .push_ptr(rcuda_core::DevicePtr::new(0x1000))
            .push_ptr(rcuda_core::DevicePtr::new(0x1000))
            .push_u32(0)
            .push_u32(0)
            .push_u32(0)
            .into_bytes();
        assert_eq!(
            k_sgemm_nn(&mut mem, g, b, &args),
            Err(CudaError::InvalidValue)
        );
        // Trailing garbage after valid args.
        let mut args = ArgPack::new().push_u32(1).into_bytes();
        args.push(0xFF);
        assert!(k_fill(&mut mem, g, b, &args).is_err());
    }
}
