//! CUDA streams: asynchronous-work bookkeeping per context.
//!
//! The paper models synchronous transfers only and leaves asynchronous ones
//! to future work (§II); we implement them as an extension. A stream is a
//! FIFO of operations with completion deadlines on the context's clock:
//! enqueueing charges no caller time, synchronizing advances the clock to
//! the stream's drain point. On a virtual clock this gives real
//! compute/transfer overlap semantics; on a wall clock everything completes
//! immediately (the functional path executes operations inline).

use crate::snapshot::{EventSnapshot, StreamSnapshot};
use rcuda_core::{Clock, CudaError, CudaResult, SimTime};
use std::collections::HashMap;

/// The always-present default stream handle (CUDA's stream 0).
pub const DEFAULT_STREAM: u32 = 0;

#[derive(Debug, Default)]
struct StreamState {
    /// Clock time at which all enqueued work completes.
    completes_at: SimTime,
}

/// Per-context stream table.
#[derive(Debug)]
pub struct StreamTable {
    streams: HashMap<u32, StreamState>,
    next_handle: u32,
}

impl StreamTable {
    pub fn new() -> Self {
        let mut streams = HashMap::new();
        streams.insert(DEFAULT_STREAM, StreamState::default());
        StreamTable {
            streams,
            next_handle: 1,
        }
    }

    /// `cudaStreamCreate`.
    pub fn create(&mut self) -> u32 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.streams.insert(h, StreamState::default());
        h
    }

    /// `cudaStreamDestroy`. The default stream cannot be destroyed.
    pub fn destroy(&mut self, handle: u32) -> CudaResult<()> {
        if handle == DEFAULT_STREAM {
            return Err(CudaError::InvalidResourceHandle);
        }
        self.streams
            .remove(&handle)
            .map(|_| ())
            .ok_or(CudaError::InvalidResourceHandle)
    }

    /// Whether `handle` names a live stream.
    pub fn contains(&self, handle: u32) -> bool {
        self.streams.contains_key(&handle)
    }

    /// Enqueue `duration` of asynchronous work on a stream (FIFO): it starts
    /// when the stream's previous work finishes (or now) and completes
    /// `duration` later. Returns the completion deadline.
    pub fn enqueue(
        &mut self,
        handle: u32,
        duration: SimTime,
        clock: &dyn Clock,
    ) -> CudaResult<SimTime> {
        let now = clock.now();
        let s = self
            .streams
            .get_mut(&handle)
            .ok_or(CudaError::InvalidResourceHandle)?;
        let start = s.completes_at.max(now);
        s.completes_at = start + duration;
        Ok(s.completes_at)
    }

    /// `cudaStreamSynchronize`: block (advance the clock) until the stream
    /// drains.
    pub fn synchronize(&mut self, handle: u32, clock: &dyn Clock) -> CudaResult<()> {
        let s = self
            .streams
            .get(&handle)
            .ok_or(CudaError::InvalidResourceHandle)?;
        let now = clock.now();
        if s.completes_at > now {
            clock.advance(s.completes_at - now);
        }
        Ok(())
    }

    /// `cudaStreamQuery`: `Ok` if drained, `Err(NotReady)` otherwise.
    pub fn query(&self, handle: u32, clock: &dyn Clock) -> CudaResult<()> {
        let s = self
            .streams
            .get(&handle)
            .ok_or(CudaError::InvalidResourceHandle)?;
        if s.completes_at <= clock.now() {
            Ok(())
        } else {
            Err(CudaError::NotReady)
        }
    }

    /// Serialize for migration: handles, completion deadlines, and the
    /// next-handle counter (handle determinism survives the move).
    pub fn snapshot(&self) -> StreamSnapshot {
        let mut streams: Vec<(u32, u64)> = self
            .streams
            .iter()
            .map(|(&h, s)| (h, s.completes_at.as_nanos()))
            .collect();
        streams.sort_unstable();
        StreamSnapshot {
            streams,
            next_handle: self.next_handle,
        }
    }

    /// Rebuild a stream table from a snapshot.
    pub fn restore(snap: &StreamSnapshot) -> StreamTable {
        StreamTable {
            streams: snap
                .streams
                .iter()
                .map(|&(h, at)| {
                    (
                        h,
                        StreamState {
                            completes_at: SimTime::from_nanos(at),
                        },
                    )
                })
                .collect(),
            next_handle: snap.next_handle,
        }
    }

    /// `cudaThreadSynchronize`: drain every stream.
    pub fn synchronize_all(&mut self, clock: &dyn Clock) {
        let target = self
            .streams
            .values()
            .map(|s| s.completes_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let now = clock.now();
        if target > now {
            clock.advance(target - now);
        }
    }
}

impl Default for StreamTable {
    fn default() -> Self {
        StreamTable::new()
    }
}

/// CUDA events: named points on a context's timeline.
///
/// `cudaEventRecord(e, s)` timestamps the event at the moment every
/// operation enqueued on stream `s` so far completes; `ElapsedTime` then
/// measures device-side durations — the mechanism CUDA applications use to
/// time kernels without host round trips.
#[derive(Debug, Default)]
pub struct EventTable {
    /// `None` = created but not yet recorded.
    events: HashMap<u32, Option<SimTime>>,
    next_handle: u32,
}

impl EventTable {
    pub fn new() -> Self {
        EventTable {
            events: HashMap::new(),
            next_handle: 1,
        }
    }

    /// `cudaEventCreate`.
    pub fn create(&mut self) -> u32 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.events.insert(h, None);
        h
    }

    /// `cudaEventDestroy`.
    pub fn destroy(&mut self, event: u32) -> CudaResult<()> {
        self.events
            .remove(&event)
            .map(|_| ())
            .ok_or(CudaError::InvalidResourceHandle)
    }

    /// Serialize for migration: handles, recorded timestamps, and the
    /// next-handle counter.
    pub fn snapshot(&self) -> EventSnapshot {
        let mut events: Vec<(u32, Option<u64>)> = self
            .events
            .iter()
            .map(|(&h, at)| (h, at.map(|t| t.as_nanos())))
            .collect();
        events.sort_unstable();
        EventSnapshot {
            events,
            next_handle: self.next_handle,
        }
    }

    /// Rebuild an event table from a snapshot.
    pub fn restore(snap: &EventSnapshot) -> EventTable {
        EventTable {
            events: snap
                .events
                .iter()
                .map(|&(h, at)| (h, at.map(SimTime::from_nanos)))
                .collect(),
            next_handle: snap.next_handle,
        }
    }

    /// `cudaEventRecord`: stamp the event at `at` (the recording stream's
    /// current completion deadline, or now for an idle stream).
    pub fn record(&mut self, event: u32, at: SimTime) -> CudaResult<()> {
        let slot = self
            .events
            .get_mut(&event)
            .ok_or(CudaError::InvalidResourceHandle)?;
        *slot = Some(at);
        Ok(())
    }

    /// The recorded timestamp (`NotReady` mirrors CUDA's
    /// `cudaErrorNotReady` for unrecorded events).
    pub fn timestamp(&self, event: u32) -> CudaResult<SimTime> {
        self.events
            .get(&event)
            .ok_or(CudaError::InvalidResourceHandle)?
            .ok_or(CudaError::NotReady)
    }

    /// `cudaEventSynchronize`: advance the clock to the event's timestamp.
    pub fn synchronize(&self, event: u32, clock: &dyn Clock) -> CudaResult<()> {
        let t = self.timestamp(event)?;
        let now = clock.now();
        if t > now {
            clock.advance(t - now);
        }
        Ok(())
    }

    /// `cudaEventElapsedTime`: milliseconds from `start` to `end`.
    /// Negative spans are an `InvalidValue`, as in CUDA.
    pub fn elapsed_ms(&self, start: u32, end: u32) -> CudaResult<f32> {
        let s = self.timestamp(start)?;
        let e = self.timestamp(end)?;
        if e < s {
            return Err(CudaError::InvalidValue);
        }
        Ok((e - s).as_millis_f64() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::VirtualClock;

    #[test]
    fn default_stream_exists() {
        let t = StreamTable::new();
        assert!(t.contains(DEFAULT_STREAM));
    }

    #[test]
    fn create_destroy_cycle() {
        let mut t = StreamTable::new();
        let h = t.create();
        assert_ne!(h, DEFAULT_STREAM);
        assert!(t.contains(h));
        t.destroy(h).unwrap();
        assert!(!t.contains(h));
        assert_eq!(t.destroy(h), Err(CudaError::InvalidResourceHandle));
    }

    #[test]
    fn default_stream_cannot_be_destroyed() {
        let mut t = StreamTable::new();
        assert_eq!(
            t.destroy(DEFAULT_STREAM),
            Err(CudaError::InvalidResourceHandle)
        );
    }

    #[test]
    fn fifo_completion_times() {
        let clock = VirtualClock::new();
        let mut t = StreamTable::new();
        let h = t.create();
        let d1 = t.enqueue(h, SimTime::from_nanos(100), &clock).unwrap();
        let d2 = t.enqueue(h, SimTime::from_nanos(50), &clock).unwrap();
        assert_eq!(d1, SimTime::from_nanos(100));
        assert_eq!(
            d2,
            SimTime::from_nanos(150),
            "second op queues behind first"
        );
    }

    #[test]
    fn synchronize_advances_virtual_clock() {
        let clock = VirtualClock::new();
        let mut t = StreamTable::new();
        let h = t.create();
        t.enqueue(h, SimTime::from_nanos(500), &clock).unwrap();
        assert_eq!(t.query(h, &clock), Err(CudaError::NotReady));
        t.synchronize(h, &clock).unwrap();
        assert_eq!(clock.now(), SimTime::from_nanos(500));
        t.query(h, &clock).unwrap();
        // Synchronizing again is a no-op.
        t.synchronize(h, &clock).unwrap();
        assert_eq!(clock.now(), SimTime::from_nanos(500));
    }

    #[test]
    fn overlap_two_streams() {
        // Work on two streams overlaps: draining both costs max, not sum.
        let clock = VirtualClock::new();
        let mut t = StreamTable::new();
        let h1 = t.create();
        let h2 = t.create();
        t.enqueue(h1, SimTime::from_nanos(300), &clock).unwrap();
        t.enqueue(h2, SimTime::from_nanos(200), &clock).unwrap();
        t.synchronize_all(&clock);
        assert_eq!(clock.now(), SimTime::from_nanos(300));
    }

    #[test]
    fn work_enqueued_after_time_passes_starts_now() {
        let clock = VirtualClock::new();
        let mut t = StreamTable::new();
        let h = t.create();
        t.enqueue(h, SimTime::from_nanos(100), &clock).unwrap();
        t.synchronize(h, &clock).unwrap();
        clock.advance(SimTime::from_nanos(400)); // idle gap
        let d = t.enqueue(h, SimTime::from_nanos(10), &clock).unwrap();
        assert_eq!(
            d,
            SimTime::from_nanos(510),
            "starts at now, not at old deadline"
        );
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let clock = VirtualClock::new();
        let mut t = StreamTable::new();
        assert_eq!(
            t.enqueue(99, SimTime::ZERO, &clock),
            Err(CudaError::InvalidResourceHandle)
        );
        assert_eq!(
            t.synchronize(99, &clock),
            Err(CudaError::InvalidResourceHandle)
        );
        assert_eq!(t.query(99, &clock), Err(CudaError::InvalidResourceHandle));
    }

    #[test]
    fn event_lifecycle_and_elapsed() {
        let clock = VirtualClock::new();
        let mut streams = StreamTable::new();
        let mut events = EventTable::new();
        let s = streams.create();
        let e1 = events.create();
        let e2 = events.create();

        // Record e1, run 2 ms of work on the stream, record e2.
        events.record(e1, clock.now()).unwrap();
        let deadline = streams
            .enqueue(s, SimTime::from_millis_f64(2.0), &clock)
            .unwrap();
        events.record(e2, deadline).unwrap();

        let ms = events.elapsed_ms(e1, e2).unwrap();
        assert!((ms - 2.0).abs() < 1e-6, "{ms}");

        // Synchronizing on e2 advances the clock to the deadline.
        events.synchronize(e2, &clock).unwrap();
        assert_eq!(clock.now(), deadline);

        events.destroy(e1).unwrap();
        assert_eq!(events.destroy(e1), Err(CudaError::InvalidResourceHandle));
    }

    #[test]
    fn unrecorded_event_is_not_ready() {
        let mut events = EventTable::new();
        let e = events.create();
        assert_eq!(events.timestamp(e), Err(CudaError::NotReady));
        let e2 = events.create();
        assert_eq!(events.elapsed_ms(e, e2), Err(CudaError::NotReady));
    }

    #[test]
    fn negative_span_is_invalid() {
        let mut events = EventTable::new();
        let e1 = events.create();
        let e2 = events.create();
        events.record(e1, SimTime::from_nanos(100)).unwrap();
        events.record(e2, SimTime::from_nanos(50)).unwrap();
        assert_eq!(events.elapsed_ms(e1, e2), Err(CudaError::InvalidValue));
        // The reverse span is fine: 50 ns = 5e-5 ms.
        let ms = events.elapsed_ms(e2, e1).unwrap();
        assert!((ms - 5e-5).abs() < 1e-9, "{ms}");
    }

    #[test]
    fn unknown_event_handles_rejected() {
        let clock = VirtualClock::new();
        let mut events = EventTable::new();
        assert_eq!(
            events.record(42, SimTime::ZERO),
            Err(CudaError::InvalidResourceHandle)
        );
        assert_eq!(
            events.synchronize(42, &clock),
            Err(CudaError::InvalidResourceHandle)
        );
        assert_eq!(events.destroy(42), Err(CudaError::InvalidResourceHandle));
    }
}
