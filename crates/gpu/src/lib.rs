//! A functional simulated CUDA device.
//!
//! The paper's testbed GPU is an NVIDIA Tesla C1060 behind PCIe 2.0 x16.
//! No GPU is available here, so this crate substitutes a software device
//! that is **functionally real** — allocations, copies, and kernel launches
//! operate on actual memory and compute actual results — while time is
//! charged through pluggable cost models on a [`rcuda_core::Clock`]
//! (wall-clock for functional runs, virtual for simulated experiments).
//!
//! Layering:
//!
//! * [`alloc`] — first-fit device-memory allocator with coalescing;
//! * [`memory`] — the backing store, addressed by [`rcuda_core::DevicePtr`];
//! * [`module`] — the GPU "module" blob format and its kernel directory
//!   (the paper ships 21 486 / 7 852 byte modules at initialization);
//! * [`kernel`] — the kernel registry: name → executable function;
//! * [`stream`] — stream handles and per-stream completion bookkeeping;
//! * [`context`] — one application's device state (the rCUDA server spawns
//!   one per remote execution, pre-initialized — §III, §VI-B);
//! * [`device`] — the device itself: properties, PCIe link, cost model;
//! * [`timing`] — default kernel/PCIe cost models (C1060-flavored).

pub mod alloc;
pub mod context;
pub mod device;
pub mod kernel;
pub mod ledger;
pub mod memory;
pub mod module;
pub mod snapshot;
pub mod stream;
pub mod timing;

pub use context::GpuContext;
pub use device::GpuDevice;
pub use kernel::{builtin_registry, KernelFn, KernelRegistry};
pub use ledger::MemoryLedger;
pub use module::{build_module, parse_module};
pub use snapshot::ContextSnapshot;
pub use timing::{C1060CostModel, CostModel, NullCostModel};
