//! Device-wide memory accounting shared across contexts.
//!
//! The [`crate::alloc::DeviceAllocator`] is per-context, so it cannot answer
//! the multi-tenant question "how many device bytes are live across *all*
//! sessions on this GPU right now?". The [`MemoryLedger`] does: every
//! [`crate::memory::DeviceMemory`] created through a
//! [`crate::device::GpuDevice`] reports its allocator deltas here, and
//! releases its remainder on drop — so a session that leaks (crashes,
//! panics, is evicted from a parked registry) still returns its bytes the
//! moment its context is dropped. A server can then assert the device is
//! back at baseline after hostile load.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic count of live device bytes across every context on one device.
///
/// Counts the allocator's *rounded* bytes (the same quantity as
/// `DeviceAllocator::used_bytes`), so per-context `used_bytes()` sums equal
/// the ledger exactly.
#[derive(Debug, Default)]
pub struct MemoryLedger {
    live: AtomicU64,
    peak: AtomicU64,
}

impl MemoryLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` newly allocated.
    pub fn add(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let now = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `bytes` freed. Saturates at zero rather than underflowing, so
    /// a double-report bug shows up as a too-low ledger, not a wrap to 2^64.
    pub fn sub(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .live
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Bytes currently live across all contexts on the device.
    pub fn live_bytes(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::live_bytes`] since creation.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_sub_track_live_and_peak() {
        let l = MemoryLedger::new();
        l.add(100);
        l.add(50);
        assert_eq!(l.live_bytes(), 150);
        assert_eq!(l.peak_bytes(), 150);
        l.sub(120);
        assert_eq!(l.live_bytes(), 30);
        assert_eq!(l.peak_bytes(), 150, "peak is sticky");
    }

    #[test]
    fn sub_saturates_instead_of_wrapping() {
        let l = MemoryLedger::new();
        l.add(10);
        l.sub(25);
        assert_eq!(l.live_bytes(), 0);
    }

    #[test]
    fn concurrent_balanced_traffic_returns_to_zero() {
        let l = Arc::new(MemoryLedger::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.add(256);
                        l.sub(256);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(l.live_bytes(), 0);
        assert!(l.peak_bytes() >= 256);
    }
}
