//! The device-memory backing store.
//!
//! Pairs the [`DeviceAllocator`] with actual
//! byte storage so that copies and kernels operate on real data. Buffers are
//! materialized lazily per allocation (a 4 GiB address space costs nothing
//! until used) and zero-initialized, which also gives deterministic results
//! if an application reads memory it never wrote.

use rcuda_core::{CudaError, CudaResult, DevicePtr};
use std::collections::HashMap;
use std::sync::Arc;

use crate::alloc::DeviceAllocator;
use crate::ledger::MemoryLedger;
use crate::snapshot::{BlockSnapshot, MemorySnapshot};

/// Allocator + backing bytes: one application context's device memory.
///
/// In **phantom** mode the allocator bookkeeping (and therefore every error
/// path and timing charge) is identical, but no bytes are stored: writes are
/// validated and discarded, reads return zeros. Phantom contexts let
/// paper-scale problems (gigabytes of traffic) run through the middleware
/// without gigabytes of host memory; kernels are skipped on them.
#[derive(Debug)]
pub struct DeviceMemory {
    alloc: DeviceAllocator,
    /// Backing store per live allocation, keyed by base address.
    buffers: HashMap<u32, Vec<u8>>,
    backed: bool,
    /// Device-wide accounting: every allocator delta is mirrored here, and
    /// the remainder is released on drop (see [`MemoryLedger`]).
    ledger: Option<Arc<MemoryLedger>>,
    /// Per-context cap on `used_bytes` (rounded allocator bytes). Mallocs
    /// that would exceed it fail with `cudaErrorMemoryAllocation`.
    quota: Option<u64>,
}

impl DeviceMemory {
    pub fn new(capacity: u32) -> Self {
        DeviceMemory {
            alloc: DeviceAllocator::new(capacity),
            buffers: HashMap::new(),
            backed: true,
            ledger: None,
            quota: None,
        }
    }

    /// Timing-only memory: full allocator semantics, no storage.
    pub fn phantom(capacity: u32) -> Self {
        DeviceMemory {
            alloc: DeviceAllocator::new(capacity),
            buffers: HashMap::new(),
            backed: false,
            ledger: None,
            quota: None,
        }
    }

    /// Mirror this context's allocator deltas into a device-wide ledger.
    pub fn with_ledger(mut self, ledger: Arc<MemoryLedger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Cap this context's live rounded bytes. `None` removes the cap.
    /// Already-live allocations are unaffected; only new mallocs are checked.
    pub fn set_quota(&mut self, quota: Option<u64>) {
        self.quota = quota;
    }

    /// The current per-context byte quota, if any.
    pub fn quota(&self) -> Option<u64> {
        self.quota
    }

    /// Whether this memory discards data (see [`DeviceMemory::phantom`]).
    pub fn is_phantom(&self) -> bool {
        !self.backed
    }

    /// `cudaMalloc`.
    pub fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr> {
        let before = self.alloc.used_bytes();
        let ptr = self.alloc.alloc(size)?;
        let grew = self.alloc.used_bytes() - before;
        // Quota check *after* the alloc, against the allocator's own rounded
        // accounting — exact, without duplicating its rounding rules here.
        if let Some(quota) = self.quota {
            if self.alloc.used_bytes() > quota {
                self.alloc.free(ptr).expect("just allocated");
                return Err(CudaError::MemoryAllocation);
            }
        }
        if let Some(ledger) = &self.ledger {
            ledger.add(grew);
        }
        if self.backed {
            let (_, rounded) = self.alloc.containing(ptr)?;
            self.buffers.insert(ptr.addr(), vec![0u8; rounded as usize]);
        }
        Ok(ptr)
    }

    /// `cudaFree`.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        let before = self.alloc.used_bytes();
        self.alloc.free(ptr)?;
        if let Some(ledger) = &self.ledger {
            ledger.sub(before - self.alloc.used_bytes());
        }
        self.buffers.remove(&ptr.addr());
        Ok(())
    }

    /// Host→device copy (`ptr` may point inside an allocation).
    pub fn write(&mut self, ptr: DevicePtr, data: &[u8]) -> CudaResult<()> {
        let size = u32::try_from(data.len()).map_err(|_| CudaError::InvalidValue)?;
        self.alloc.check_range(ptr, size)?;
        if !self.backed {
            return Ok(());
        }
        let (base, _) = self.alloc.containing(ptr)?;
        let offset = (ptr.addr() - base.addr()) as usize;
        let buf = self.buffers.get_mut(&base.addr()).expect("buffer exists");
        buf[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Device→host copy.
    pub fn read(&self, ptr: DevicePtr, size: u32) -> CudaResult<Vec<u8>> {
        self.alloc.check_range(ptr, size)?;
        if !self.backed {
            return Ok(vec![0u8; size as usize]);
        }
        let (base, _) = self.alloc.containing(ptr)?;
        let offset = (ptr.addr() - base.addr()) as usize;
        let buf = self.buffers.get(&base.addr()).expect("buffer exists");
        Ok(buf[offset..offset + size as usize].to_vec())
    }

    /// Device→host copy straight into a caller-provided buffer — the
    /// allocation-free sibling of [`DeviceMemory::read`]. `out.len()` is the
    /// transfer size.
    pub fn read_into(&self, ptr: DevicePtr, out: &mut [u8]) -> CudaResult<()> {
        let size = u32::try_from(out.len()).map_err(|_| CudaError::InvalidValue)?;
        self.alloc.check_range(ptr, size)?;
        if !self.backed {
            out.fill(0);
            return Ok(());
        }
        let (base, _) = self.alloc.containing(ptr)?;
        let offset = (ptr.addr() - base.addr()) as usize;
        let buf = self.buffers.get(&base.addr()).expect("buffer exists");
        out.copy_from_slice(&buf[offset..offset + out.len()]);
        Ok(())
    }

    /// Device→device copy (`cudaMemcpyDeviceToDevice`).
    pub fn copy_within(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()> {
        let data = self.read(src, size)?;
        self.write(dst, &data)
    }

    /// `cudaMemset`: fill `size` bytes at `ptr` with `value`'s low byte.
    pub fn memset(&mut self, ptr: DevicePtr, value: u8, size: u32) -> CudaResult<()> {
        self.alloc.check_range(ptr, size)?;
        if !self.backed {
            return Ok(());
        }
        let (base, _) = self.alloc.containing(ptr)?;
        let offset = (ptr.addr() - base.addr()) as usize;
        let buf = self.buffers.get_mut(&base.addr()).expect("buffer exists");
        buf[offset..offset + size as usize].fill(value);
        Ok(())
    }

    /// Borrow an allocation's bytes for in-place kernel work.
    /// `ptr` must be an allocation base (kernels receive base pointers).
    /// Unavailable on phantom memory (kernels are skipped there).
    pub fn buffer_mut(&mut self, ptr: DevicePtr, size: u32) -> CudaResult<&mut [u8]> {
        if !self.backed {
            return Err(CudaError::InvalidValue);
        }
        self.alloc.check_range(ptr, size)?;
        let (base, _) = self.alloc.containing(ptr)?;
        let offset = (ptr.addr() - base.addr()) as usize;
        let buf = self.buffers.get_mut(&base.addr()).expect("buffer exists");
        Ok(&mut buf[offset..offset + size as usize])
    }

    /// Read a device buffer as `f32`s (kernel convenience).
    pub fn read_f32(&self, ptr: DevicePtr, count: u32) -> CudaResult<Vec<f32>> {
        let bytes = self.read(ptr, count.checked_mul(4).ok_or(CudaError::InvalidValue)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Write `f32`s to a device buffer (kernel convenience).
    pub fn write_f32(&mut self, ptr: DevicePtr, data: &[f32]) -> CudaResult<()> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(ptr, &bytes)
    }

    /// Serialize this context's memory for migration: allocator layout,
    /// backing bytes (backed memory only), and the quota.
    pub fn snapshot(&self) -> MemorySnapshot {
        MemorySnapshot {
            capacity: self.alloc.capacity() as u32,
            backed: self.backed,
            quota: self.quota,
            blocks: self
                .alloc
                .live_blocks()
                .into_iter()
                .map(|(base, len)| BlockSnapshot {
                    base,
                    len,
                    data: if self.backed {
                        Some(self.buffers.get(&base).expect("buffer exists").clone())
                    } else {
                        None
                    },
                })
                .collect(),
        }
    }

    /// Rebuild a context memory from a snapshot, charging the restored bytes
    /// to `ledger` (the target device's accounting — the source side
    /// balances through its own [`Drop`]).
    pub fn restore(
        snap: &MemorySnapshot,
        ledger: Option<Arc<MemoryLedger>>,
    ) -> CudaResult<DeviceMemory> {
        let layout: Vec<(u32, u32)> = snap.blocks.iter().map(|b| (b.base, b.len)).collect();
        let alloc = DeviceAllocator::restore(snap.capacity, &layout)?;
        let mut buffers = HashMap::new();
        if snap.backed {
            for b in &snap.blocks {
                let data = b.data.as_ref().ok_or(CudaError::InvalidValue)?;
                if data.len() != b.len as usize {
                    return Err(CudaError::InvalidValue);
                }
                buffers.insert(b.base, data.clone());
            }
        }
        if let Some(l) = &ledger {
            l.add(alloc.used_bytes());
        }
        Ok(DeviceMemory {
            alloc,
            buffers,
            backed: snap.backed,
            ledger,
            quota: snap.quota,
        })
    }

    /// Allocation statistics passthrough.
    pub fn used_bytes(&self) -> u64 {
        self.alloc.used_bytes()
    }

    pub fn free_bytes(&self) -> u64 {
        self.alloc.free_bytes()
    }

    pub fn live_count(&self) -> usize {
        self.alloc.live_count()
    }
}

impl Drop for DeviceMemory {
    /// Return whatever this context still holds to the device ledger — the
    /// reclamation path for sessions that exit without freeing (crash,
    /// panic, registry eviction).
    fn drop(&mut self) {
        if let Some(ledger) = &self.ledger {
            ledger.sub(self.alloc.used_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DeviceMemory {
        DeviceMemory::new(1 << 20)
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem();
        let p = m.malloc(256).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        m.write(p, &data).unwrap();
        assert_eq!(m.read(p, 256).unwrap(), data);
    }

    #[test]
    fn fresh_memory_is_zeroed() {
        let mut m = mem();
        let p = m.malloc(64).unwrap();
        assert_eq!(m.read(p, 64).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn read_into_matches_read() {
        let mut m = mem();
        let p = m.malloc(256).unwrap();
        let data: Vec<u8> = (0..=255).collect();
        m.write(p, &data).unwrap();
        let mut out = vec![0u8; 256];
        m.read_into(p, &mut out).unwrap();
        assert_eq!(out, data);
        // Interior offsets work the same as `read`.
        let mut out = [0u8; 5];
        m.read_into(p.offset(10), &mut out).unwrap();
        assert_eq!(out, [10, 11, 12, 13, 14]);
        // Out-of-bounds is rejected without touching the output buffer.
        let mut out = vec![0u8; 257];
        assert_eq!(
            m.read_into(p, &mut out),
            Err(CudaError::InvalidDevicePointer)
        );
    }

    #[test]
    fn read_into_phantom_zeroes_the_buffer() {
        let mut m = DeviceMemory::phantom(1 << 20);
        let p = m.malloc(64).unwrap();
        let mut out = [0xFFu8; 64];
        m.read_into(p, &mut out).unwrap();
        assert_eq!(out, [0u8; 64]);
    }

    #[test]
    fn interior_offsets_work() {
        let mut m = mem();
        let p = m.malloc(1024).unwrap();
        m.write(p.offset(100), &[1, 2, 3]).unwrap();
        assert_eq!(m.read(p.offset(99), 5).unwrap(), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = mem();
        let p = m.malloc(100).unwrap(); // rounds to the 256-byte alignment
        assert_eq!(
            m.write(p, &vec![0u8; 257]),
            Err(CudaError::InvalidDevicePointer)
        );
        assert_eq!(m.read(p, 257), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn dangling_pointer_rejected_after_free() {
        let mut m = mem();
        let p = m.malloc(64).unwrap();
        m.free(p).unwrap();
        assert_eq!(m.read(p, 4), Err(CudaError::InvalidDevicePointer));
        assert_eq!(m.write(p, &[1]), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn device_to_device_copy() {
        let mut m = mem();
        let a = m.malloc(16).unwrap();
        let b = m.malloc(16).unwrap();
        m.write(a, &[9u8; 16]).unwrap();
        m.copy_within(b, a, 16).unwrap();
        assert_eq!(m.read(b, 16).unwrap(), vec![9u8; 16]);
    }

    #[test]
    fn f32_views_round_trip() {
        let mut m = mem();
        let p = m.malloc(16).unwrap();
        m.write_f32(p, &[1.0, -2.5, 3.25, 0.0]).unwrap();
        assert_eq!(m.read_f32(p, 4).unwrap(), vec![1.0, -2.5, 3.25, 0.0]);
    }

    #[test]
    fn buffer_mut_allows_in_place_kernel_work() {
        let mut m = mem();
        let p = m.malloc(8).unwrap();
        {
            let buf = m.buffer_mut(p, 8).unwrap();
            buf.copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        }
        assert_eq!(m.read(p, 8).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn phantom_memory_validates_but_stores_nothing() {
        let mut m = DeviceMemory::phantom(u32::MAX - 0x1000);
        assert!(m.is_phantom());
        // Paper-scale allocation (1296 MiB) costs no host memory.
        let p = m.malloc(1296 << 20).unwrap();
        m.write(p, &[1, 2, 3]).unwrap();
        assert_eq!(m.read(p, 3).unwrap(), vec![0, 0, 0], "writes discarded");
        // Error paths are identical to backed memory.
        assert_eq!(
            m.write(DevicePtr::new(0xBAD), &[1]),
            Err(CudaError::InvalidDevicePointer)
        );
        assert!(m.buffer_mut(p, 4).is_err());
        m.free(p).unwrap();
        assert_eq!(m.read(p, 1), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn quota_rejects_over_cap_malloc_without_leaking() {
        let mut m = mem();
        m.set_quota(Some(512));
        let a = m.malloc(256).unwrap();
        assert_eq!(m.malloc(512), Err(CudaError::MemoryAllocation));
        assert_eq!(m.used_bytes(), 256, "failed malloc left nothing behind");
        // Freeing makes room again.
        m.free(a).unwrap();
        let b = m.malloc(512).unwrap();
        m.free(b).unwrap();
    }

    #[test]
    fn quota_checks_rounded_bytes() {
        let mut m = mem();
        m.set_quota(Some(256));
        // 100 rounds to the 256-byte alignment: exactly at quota, allowed.
        let p = m.malloc(100).unwrap();
        assert_eq!(m.malloc(1), Err(CudaError::MemoryAllocation));
        m.free(p).unwrap();
    }

    #[test]
    fn ledger_mirrors_alloc_free_and_drop() {
        let ledger = Arc::new(MemoryLedger::new());
        let mut m = mem().with_ledger(Arc::clone(&ledger));
        let a = m.malloc(100).unwrap(); // rounds to 256
        let _b = m.malloc(1024).unwrap();
        assert_eq!(ledger.live_bytes(), m.used_bytes());
        assert_eq!(ledger.live_bytes(), 256 + 1024);
        m.free(a).unwrap();
        assert_eq!(ledger.live_bytes(), 1024);
        drop(m); // leaked `_b` returns via Drop
        assert_eq!(ledger.live_bytes(), 0);
    }

    #[test]
    fn ledger_ignores_failed_and_quota_rejected_mallocs() {
        let ledger = Arc::new(MemoryLedger::new());
        let mut m = DeviceMemory::new(1 << 20).with_ledger(Arc::clone(&ledger));
        m.set_quota(Some(256));
        m.malloc(4096).unwrap_err();
        assert_eq!(ledger.live_bytes(), 0);
    }

    #[test]
    fn snapshot_restore_preserves_bytes_layout_and_ledger() {
        let src_ledger = Arc::new(MemoryLedger::new());
        let mut m = DeviceMemory::new(1 << 20).with_ledger(Arc::clone(&src_ledger));
        let a = m.malloc(300).unwrap();
        let b = m.malloc(1024).unwrap();
        let c = m.malloc(256).unwrap();
        m.free(b).unwrap();
        m.write(a, &[0xA5u8; 300]).unwrap();
        m.write(c, &[0x5Au8; 256]).unwrap();
        let snap = m.snapshot();

        let dst_ledger = Arc::new(MemoryLedger::new());
        let mut r = DeviceMemory::restore(&snap, Some(Arc::clone(&dst_ledger))).unwrap();
        assert_eq!(r.read(a, 300).unwrap(), vec![0xA5u8; 300]);
        assert_eq!(r.read(c, 256).unwrap(), vec![0x5Au8; 256]);
        assert_eq!(r.used_bytes(), m.used_bytes());
        assert_eq!(dst_ledger.live_bytes(), r.used_bytes(), "target charged");
        // Allocation determinism survives the move: the freed hole is
        // re-found at the same address on both sides.
        assert_eq!(m.malloc(1024).unwrap(), r.malloc(1024).unwrap());
        // Source drop releases its side; target drop releases its side.
        drop(m);
        assert_eq!(src_ledger.live_bytes(), 0, "source ledger balanced");
        drop(r);
        assert_eq!(dst_ledger.live_bytes(), 0, "target ledger balanced");
    }

    #[test]
    fn phantom_snapshot_restores_phantom() {
        let mut m = DeviceMemory::phantom(1 << 20);
        let p = m.malloc(4096).unwrap();
        let snap = m.snapshot();
        let r = DeviceMemory::restore(&snap, None).unwrap();
        assert!(r.is_phantom());
        assert_eq!(r.read(p, 16).unwrap(), vec![0u8; 16]);
        assert_eq!(r.used_bytes(), 4096);
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut m = mem();
        let _ = m.malloc(256).unwrap();
        let mut snap = m.snapshot();
        snap.blocks[0].data = None; // backed memory must ship its bytes
        assert!(DeviceMemory::restore(&snap, None).is_err());
        let mut snap = m.snapshot();
        snap.blocks[0].data = Some(vec![0u8; 3]); // wrong length
        assert!(DeviceMemory::restore(&snap, None).is_err());
    }

    #[test]
    fn memory_isolated_between_allocations() {
        let mut m = mem();
        let a = m.malloc(256).unwrap();
        let b = m.malloc(256).unwrap();
        m.write(a, &[0xFFu8; 256]).unwrap();
        assert_eq!(m.read(b, 256).unwrap(), vec![0u8; 256], "B untouched");
    }
}
