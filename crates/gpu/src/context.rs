//! A GPU context: one application's state on the device.
//!
//! Mirrors the CUDA Runtime execution surface the paper remotes (§III,
//! Fig. 2): module load, `cudaMalloc`, `cudaMemcpy` in both directions,
//! `cudaLaunch`, `cudaFree`, plus the stream/async extension. Every
//! operation charges its modeled cost to the context's clock and then
//! executes functionally (unless the context uses phantom memory).
//!
//! The rCUDA server spawns one context per remote execution — "a different
//! server process for each remote execution over a new GPU context" — which
//! is what gives clients time-multiplexed, isolated views of the device.

use rcuda_core::{CudaError, CudaResult, DeviceProperties, DevicePtr, Dim3, SharedClock, SimTime};
use std::sync::Arc;

use crate::device::GpuDevice;
use crate::memory::DeviceMemory;
use crate::snapshot::ContextSnapshot;
use crate::stream::{EventTable, StreamTable, DEFAULT_STREAM};

/// One application's device state.
pub struct GpuContext {
    device: Arc<GpuDevice>,
    mem: DeviceMemory,
    clock: SharedClock,
    streams: StreamTable,
    events: EventTable,
    /// Kernels named by the loaded module (None until initialization).
    module_kernels: Option<Vec<String>>,
}

impl GpuContext {
    pub(crate) fn new(device: Arc<GpuDevice>, mem: DeviceMemory, clock: SharedClock) -> Self {
        GpuContext {
            device,
            mem,
            clock,
            streams: StreamTable::new(),
            events: EventTable::new(),
            module_kernels: None,
        }
    }

    /// Serialize this context's migratable state: allocator layout, backing
    /// bytes, the loaded module's kernel directory, and the stream/event
    /// tables. The clock is deliberately excluded — the restoring daemon
    /// attaches its own, as it would for a fresh connection.
    pub fn snapshot(&self) -> ContextSnapshot {
        ContextSnapshot {
            module_kernels: self.module_kernels.clone(),
            memory: self.mem.snapshot(),
            streams: self.streams.snapshot(),
            events: self.events.snapshot(),
        }
    }

    /// Rebuild a migrated context from its snapshot (see
    /// [`GpuDevice::restore_context`], the public entry point that also
    /// attaches the target device's ledger).
    pub(crate) fn from_snapshot(
        device: Arc<GpuDevice>,
        mem: DeviceMemory,
        clock: SharedClock,
        snap: &ContextSnapshot,
    ) -> Self {
        GpuContext {
            device,
            mem,
            clock,
            streams: StreamTable::restore(&snap.streams),
            events: EventTable::restore(&snap.events),
            module_kernels: snap.module_kernels.clone(),
        }
    }

    /// Initialization phase: register the application's GPU module.
    pub fn load_module(&mut self, blob: &[u8]) -> CudaResult<()> {
        let kernels = crate::module::parse_module(blob)?;
        self.clock
            .advance(self.device.cost_model().module_load_time(blob.len() as u64));
        self.module_kernels = Some(kernels);
        Ok(())
    }

    /// `cudaMalloc`.
    pub fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr> {
        self.mem.malloc(size)
    }

    /// `cudaFree`.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        self.mem.free(ptr)
    }

    /// Synchronous host→device `cudaMemcpy`: charges the PCIe transfer and
    /// stores the data.
    pub fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> CudaResult<()> {
        self.mem.write(dst, data)?;
        self.clock
            .advance(self.device.cost_model().pcie_time(data.len() as u64));
        Ok(())
    }

    /// Synchronous device→host `cudaMemcpy`.
    pub fn memcpy_d2h(&mut self, src: DevicePtr, size: u32) -> CudaResult<Vec<u8>> {
        let data = self.mem.read(src, size)?;
        self.clock
            .advance(self.device.cost_model().pcie_time(size as u64));
        Ok(data)
    }

    /// Synchronous device→host `cudaMemcpy` straight into a caller-provided
    /// buffer (no allocation; `out.len()` is the transfer size).
    pub fn memcpy_d2h_into(&mut self, src: DevicePtr, out: &mut [u8]) -> CudaResult<()> {
        self.mem.read_into(src, out)?;
        self.clock
            .advance(self.device.cost_model().pcie_time(out.len() as u64));
        Ok(())
    }

    /// Device→device `cudaMemcpy`.
    pub fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()> {
        self.mem.copy_within(dst, src, size)?;
        self.clock
            .advance(self.device.cost_model().pcie_time(size as u64));
        Ok(())
    }

    /// `cudaMemset`: on-device fill, charged at device-memory bandwidth.
    pub fn memset(&mut self, dst: DevicePtr, value: u8, size: u32) -> CudaResult<()> {
        self.mem.memset(dst, value, size)?;
        self.clock
            .advance(self.device.cost_model().memset_time(size as u64));
        Ok(())
    }

    /// `cudaEventCreate`.
    pub fn event_create(&mut self) -> CudaResult<u32> {
        Ok(self.events.create())
    }

    /// `cudaEventRecord`: the event is stamped when everything already
    /// enqueued on `stream` completes (now, for an idle stream).
    pub fn event_record(&mut self, event: u32, stream: u32) -> CudaResult<()> {
        let at = if stream == DEFAULT_STREAM {
            self.clock.now()
        } else {
            // Peek the stream's deadline by enqueueing zero work.
            self.streams.enqueue(stream, SimTime::ZERO, &*self.clock)?
        };
        self.events.record(event, at)
    }

    /// `cudaEventSynchronize`.
    pub fn event_synchronize(&mut self, event: u32) -> CudaResult<()> {
        self.events.synchronize(event, &*self.clock)
    }

    /// `cudaEventElapsedTime`, in milliseconds.
    pub fn event_elapsed_ms(&self, start: u32, end: u32) -> CudaResult<f32> {
        self.events.elapsed_ms(start, end)
    }

    /// `cudaEventDestroy`.
    pub fn event_destroy(&mut self, event: u32) -> CudaResult<()> {
        self.events.destroy(event)
    }

    /// Asynchronous host→device copy on a stream: data lands immediately
    /// (functionally), the time charge is enqueued on the stream.
    pub fn memcpy_h2d_async(&mut self, dst: DevicePtr, data: &[u8], stream: u32) -> CudaResult<()> {
        self.mem.write(dst, data)?;
        let cost = self.device.cost_model().pcie_time(data.len() as u64);
        self.streams.enqueue(stream, cost, &*self.clock)?;
        Ok(())
    }

    /// Asynchronous device→host copy on a stream.
    pub fn memcpy_d2h_async(
        &mut self,
        src: DevicePtr,
        size: u32,
        stream: u32,
    ) -> CudaResult<Vec<u8>> {
        let data = self.mem.read(src, size)?;
        let cost = self.device.cost_model().pcie_time(size as u64);
        self.streams.enqueue(stream, cost, &*self.clock)?;
        Ok(data)
    }

    /// Asynchronous device→host copy on a stream, straight into a
    /// caller-provided buffer.
    pub fn memcpy_d2h_async_into(
        &mut self,
        src: DevicePtr,
        out: &mut [u8],
        stream: u32,
    ) -> CudaResult<()> {
        self.mem.read_into(src, out)?;
        let cost = self.device.cost_model().pcie_time(out.len() as u64);
        self.streams.enqueue(stream, cost, &*self.clock)?;
        Ok(())
    }

    /// `cudaLaunch`: resolve the kernel (it must be named by the loaded
    /// module *and* implemented by the device), charge its modeled time,
    /// and execute it — except on phantom memory, where execution is
    /// skipped (the data is not real).
    ///
    /// On the default stream the launch is synchronous from the context's
    /// perspective (the paper's model covers synchronous semantics); on a
    /// user stream the time charge is enqueued instead.
    pub fn launch(
        &mut self,
        name: &str,
        grid: Dim3,
        block: Dim3,
        args: &[u8],
        stream: u32,
    ) -> CudaResult<()> {
        let module = self
            .module_kernels
            .as_ref()
            .ok_or(CudaError::InitializationError)?;
        if !module.iter().any(|k| k == name) {
            return Err(CudaError::InvalidDeviceFunction);
        }
        let f = self.device.registry().resolve(name)?;
        if grid.count() == 0 || block.count() == 0 {
            return Err(CudaError::MissingConfiguration);
        }
        let cost = self.device.cost_model().kernel_time(name, args);
        if stream == DEFAULT_STREAM {
            self.clock.advance(cost);
        } else {
            self.streams.enqueue(stream, cost, &*self.clock)?;
        }
        if self.mem.is_phantom() {
            return Ok(());
        }
        f(&mut self.mem, grid, block, args)
    }

    /// `cudaThreadSynchronize`.
    pub fn synchronize(&mut self) -> CudaResult<()> {
        self.streams.synchronize_all(&*self.clock);
        Ok(())
    }

    /// `cudaStreamCreate`.
    pub fn stream_create(&mut self) -> CudaResult<u32> {
        Ok(self.streams.create())
    }

    /// `cudaStreamSynchronize`.
    pub fn stream_synchronize(&mut self, stream: u32) -> CudaResult<()> {
        self.streams.synchronize(stream, &*self.clock)
    }

    /// `cudaStreamDestroy`.
    pub fn stream_destroy(&mut self, stream: u32) -> CudaResult<()> {
        self.streams.destroy(stream)
    }

    /// `cudaGetDeviceProperties`.
    pub fn properties(&self) -> &DeviceProperties {
        self.device.properties()
    }

    /// The context's clock (shared with the device and, in remote setups,
    /// the transport).
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Current position of the context's clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Allocation statistics (diagnostics / leak tests).
    pub fn live_allocations(&self) -> usize {
        self.mem.live_count()
    }

    pub fn used_bytes(&self) -> u64 {
        self.mem.used_bytes()
    }

    /// Cap this context's live device bytes (rounded allocator accounting);
    /// over-quota mallocs fail with `cudaErrorMemoryAllocation`. `None`
    /// removes the cap.
    pub fn set_mem_quota(&mut self, quota: Option<u64>) {
        self.mem.set_quota(quota);
    }

    /// The per-context byte quota, if any.
    pub fn mem_quota(&self) -> Option<u64> {
        self.mem.quota()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{build_module, mm_module};
    use rcuda_core::time::virtual_clock;
    use rcuda_core::{ArgPack, Clock as _};

    fn functional_ctx() -> GpuContext {
        let d = GpuDevice::tesla_c1060_functional();
        d.create_context(rcuda_core::time::wall_clock(), true)
    }

    #[test]
    fn full_mm_cycle_functional() {
        use rcuda_kernels::matrix::sgemm_naive;
        use rcuda_kernels::workload::matrix_pair;
        let mut ctx = functional_ctx();
        ctx.load_module(&mm_module()).unwrap();
        let m = 16usize;
        let bytes = (m * m * 4) as u32;
        let (a, b) = matrix_pair(m, 1);
        let pa = ctx.malloc(bytes).unwrap();
        let pb = ctx.malloc(bytes).unwrap();
        let pc = ctx.malloc(bytes).unwrap();
        ctx.memcpy_h2d(pa, &to_bytes(a.as_slice())).unwrap();
        ctx.memcpy_h2d(pb, &to_bytes(b.as_slice())).unwrap();
        let args = ArgPack::new()
            .push_ptr(pa)
            .push_ptr(pb)
            .push_ptr(pc)
            .push_u32(m as u32)
            .push_u32(m as u32)
            .push_u32(m as u32)
            .into_bytes();
        ctx.launch("sgemmNN", Dim3::xy(1, 1), Dim3::xy(16, 4), &args, 0)
            .unwrap();
        let c = from_bytes(&ctx.memcpy_d2h(pc, bytes).unwrap());
        let mut expect = vec![0.0f32; m * m];
        sgemm_naive(m, m, m, a.as_slice(), b.as_slice(), &mut expect);
        let diff = c
            .iter()
            .zip(&expect)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-4);
        for p in [pa, pb, pc] {
            ctx.free(p).unwrap();
        }
        assert_eq!(ctx.live_allocations(), 0);
    }

    #[test]
    fn launch_requires_module() {
        let mut ctx = functional_ctx();
        let r = ctx.launch("sgemmNN", Dim3::x(1), Dim3::x(1), &[], 0);
        assert_eq!(r, Err(CudaError::InitializationError));
    }

    #[test]
    fn launch_requires_kernel_in_module() {
        let mut ctx = functional_ctx();
        // Module names only the FFT kernel; sgemm is on the device but not
        // in this application's module.
        ctx.load_module(&build_module(&["fft512_batch"], 0))
            .unwrap();
        let r = ctx.launch("sgemmNN", Dim3::x(1), Dim3::x(1), &[], 0);
        assert_eq!(r, Err(CudaError::InvalidDeviceFunction));
    }

    #[test]
    fn launch_requires_device_implementation() {
        let mut ctx = functional_ctx();
        // Module names a kernel the device does not implement.
        ctx.load_module(&build_module(&["mystery_kernel"], 0))
            .unwrap();
        let r = ctx.launch("mystery_kernel", Dim3::x(1), Dim3::x(1), &[], 0);
        assert_eq!(r, Err(CudaError::InvalidDeviceFunction));
    }

    #[test]
    fn launch_requires_configuration() {
        let mut ctx = functional_ctx();
        ctx.load_module(&mm_module()).unwrap();
        let r = ctx.launch("sgemmNN", Dim3::new(0, 0, 0), Dim3::x(1), &[], 0);
        assert_eq!(r, Err(CudaError::MissingConfiguration));
    }

    #[test]
    fn simulated_mm_charges_pcie_and_kernel_time() {
        let d = GpuDevice::tesla_c1060();
        let clock = virtual_clock();
        let mut ctx = d.create_phantom_context(clock.clone(), true);
        ctx.load_module(&mm_module()).unwrap();
        let m = 4096u32;
        let bytes = m * m * 4;
        let pa = ctx.malloc(bytes).unwrap();
        let pb = ctx.malloc(bytes).unwrap();
        let pc = ctx.malloc(bytes).unwrap();
        // Phantom H2D: pass a small slice but charge by real size via the
        // explicit API? No — charge follows data length, so simulate with
        // zero-filled buffers of the real size.
        let zeros = vec![0u8; bytes as usize];
        ctx.memcpy_h2d(pa, &zeros).unwrap();
        ctx.memcpy_h2d(pb, &zeros).unwrap();
        let args = ArgPack::new()
            .push_ptr(pa)
            .push_ptr(pb)
            .push_ptr(pc)
            .push_u32(m)
            .push_u32(m)
            .push_u32(m)
            .into_bytes();
        ctx.launch("sgemmNN", Dim3::xy(64, 64), Dim3::xy(16, 4), &args, 0)
            .unwrap();
        let _ = ctx.memcpy_d2h(pc, bytes).unwrap();
        // 3 × 64 MiB over PCIe at 5743 MiB/s ≈ 33.4 ms; kernel ≈ 366 ms.
        let t = clock.now().as_secs_f64();
        assert!(t > 0.35 && t < 0.45, "total simulated time {t}");
    }

    #[test]
    fn async_copies_overlap_on_streams() {
        let d = GpuDevice::tesla_c1060();
        let clock = virtual_clock();
        let mut ctx = d.create_phantom_context(clock.clone(), true);
        ctx.load_module(&mm_module()).unwrap();
        let after_load = clock.now();
        let p = ctx.malloc(64 << 20).unwrap();
        let q = ctx.malloc(64 << 20).unwrap();
        let s1 = ctx.stream_create().unwrap();
        let s2 = ctx.stream_create().unwrap();
        let zeros = vec![0u8; 64 << 20];
        ctx.memcpy_h2d_async(p, &zeros, s1).unwrap();
        ctx.memcpy_h2d_async(q, &zeros, s2).unwrap();
        assert_eq!(clock.now(), after_load, "async enqueue charges nothing");
        ctx.synchronize().unwrap();
        let t = clock.now().as_millis_f64();
        // One 64 MiB PCIe copy is ~11.4 ms; two overlapped streams cost the
        // max, not the sum. (The model does not serialize the shared link —
        // documented simplification.)
        assert!(t > 10.0 && t < 13.0, "{t}");
        ctx.stream_destroy(s1).unwrap();
        ctx.stream_destroy(s2).unwrap();
    }

    #[test]
    fn snapshot_restore_moves_a_context_between_devices() {
        use rcuda_core::time::wall_clock;
        let src_dev = GpuDevice::tesla_c1060_functional();
        let dst_dev = GpuDevice::tesla_c1060_functional();
        let mut ctx = src_dev.create_context(wall_clock(), true);
        ctx.load_module(&mm_module()).unwrap();
        let p = ctx.malloc(1024).unwrap();
        ctx.memcpy_h2d(p, &[3u8; 1024]).unwrap();
        let s = ctx.stream_create().unwrap();
        let e = ctx.event_create().unwrap();
        ctx.event_record(e, 0).unwrap();

        let wire = ctx.snapshot().encode();
        let snap = ContextSnapshot::decode(&wire).unwrap();
        let mut moved = dst_dev.restore_context(wall_clock(), &snap).unwrap();
        assert_eq!(dst_dev.ledger().live_bytes(), 1024, "target charged");
        drop(ctx);
        assert_eq!(src_dev.ledger().live_bytes(), 0, "source balanced");

        assert_eq!(moved.memcpy_d2h(p, 1024).unwrap(), vec![3u8; 1024]);
        // Handle counters survive: creates continue where they left off.
        assert_eq!(moved.stream_create().unwrap(), s + 1);
        assert_eq!(moved.event_create().unwrap(), e + 1);
        // The module survived without a re-upload: an unknown kernel is
        // InvalidDeviceFunction, not InitializationError.
        assert_eq!(
            moved.launch("nope", Dim3::x(1), Dim3::x(1), &[], 0),
            Err(CudaError::InvalidDeviceFunction)
        );
        drop(moved);
        assert_eq!(dst_dev.ledger().live_bytes(), 0, "target balanced");
    }

    #[test]
    fn properties_come_from_the_device() {
        let ctx = functional_ctx();
        assert_eq!(ctx.properties().cc_major, 1);
        assert_eq!(ctx.properties().cc_minor, 3);
    }

    fn to_bytes(data: &[f32]) -> Vec<u8> {
        data.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn from_bytes(b: &[u8]) -> Vec<f32> {
        b.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}
