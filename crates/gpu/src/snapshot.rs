//! Context snapshots: the serializable image of one application's device
//! state, used by live session migration between daemons.
//!
//! A snapshot captures everything a [`crate::GpuContext`] owns that the
//! client cannot re-derive: the allocator's live-block layout (so restored
//! `DevicePtr`s are bit-identical), the backing bytes of every allocation,
//! the loaded module's kernel directory, and the stream/event tables. The
//! context's clock is *not* part of the snapshot — the restoring daemon
//! attaches its own clock, exactly as it would for a fresh connection.
//!
//! The wire form is a versioned little-endian binary blob carried opaquely
//! by the protocol layer (`SessionHello::Migrate`), so rcuda-proto does not
//! need to depend on this crate.

use std::io::{self, Cursor, Read, Write};

/// One live allocation: base address, rounded length, and (for backed
/// memory) its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSnapshot {
    pub base: u32,
    pub len: u32,
    /// `None` on phantom memory (nothing to ship — the restore side
    /// recreates a phantom allocation of the same shape).
    pub data: Option<Vec<u8>>,
}

/// The memory half of a context snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySnapshot {
    pub capacity: u32,
    pub backed: bool,
    pub quota: Option<u64>,
    /// Live blocks in address order.
    pub blocks: Vec<BlockSnapshot>,
}

/// Stream table state: `(handle, completes_at_nanos)` pairs plus the
/// next-handle counter (so post-restore creates keep yielding the same
/// handles the client would have seen without the migration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSnapshot {
    pub streams: Vec<(u32, u64)>,
    pub next_handle: u32,
}

/// Event table state: `(handle, recorded_at_nanos)` pairs (`None` =
/// created but never recorded) plus the next-handle counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSnapshot {
    pub events: Vec<(u32, Option<u64>)>,
    pub next_handle: u32,
}

/// The complete serializable image of one [`crate::GpuContext`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSnapshot {
    /// Kernel names of the loaded module (`None` = never initialized).
    pub module_kernels: Option<Vec<String>>,
    pub memory: MemorySnapshot,
    pub streams: StreamSnapshot,
    pub events: EventSnapshot,
}

const MAGIC: u32 = 0x5253_4E50; // "RSNP"
const VERSION: u32 = 1;

/// Cap on any single decoded length field — a corrupted snapshot cannot
/// drive a multi-gigabyte allocation (real snapshots stay far below this;
/// individual device allocations are themselves `u32`-sized).
const MAX_LIST: usize = 1 << 24;

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let n = get_u32(r)? as usize;
    if n > MAX_LIST {
        return Err(bad(format!("snapshot length field {n} over limit")));
    }
    Ok(n)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ContextSnapshot {
    /// Serialize into the versioned little-endian wire blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::new();
        self.write(&mut w).expect("Vec write cannot fail");
        w
    }

    fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        put_u32(w, MAGIC)?;
        put_u32(w, VERSION)?;
        // Module kernel directory.
        match &self.module_kernels {
            None => w.write_all(&[0])?,
            Some(names) => {
                w.write_all(&[1])?;
                put_u32(w, names.len() as u32)?;
                for name in names {
                    put_u32(w, name.len() as u32)?;
                    w.write_all(name.as_bytes())?;
                }
            }
        }
        // Memory.
        let m = &self.memory;
        put_u32(w, m.capacity)?;
        w.write_all(&[u8::from(m.backed)])?;
        match m.quota {
            None => w.write_all(&[0])?,
            Some(q) => {
                w.write_all(&[1])?;
                put_u64(w, q)?;
            }
        }
        put_u32(w, m.blocks.len() as u32)?;
        for b in &m.blocks {
            put_u32(w, b.base)?;
            put_u32(w, b.len)?;
            match &b.data {
                None => w.write_all(&[0])?,
                Some(data) => {
                    w.write_all(&[1])?;
                    put_u32(w, data.len() as u32)?;
                    w.write_all(data)?;
                }
            }
        }
        // Streams.
        put_u32(w, self.streams.streams.len() as u32)?;
        for &(h, at) in &self.streams.streams {
            put_u32(w, h)?;
            put_u64(w, at)?;
        }
        put_u32(w, self.streams.next_handle)?;
        // Events.
        put_u32(w, self.events.events.len() as u32)?;
        for &(h, at) in &self.events.events {
            put_u32(w, h)?;
            match at {
                None => w.write_all(&[0])?,
                Some(t) => {
                    w.write_all(&[1])?;
                    put_u64(w, t)?;
                }
            }
        }
        put_u32(w, self.events.next_handle)
    }

    /// Decode the wire blob. Truncated or corrupt input is an error, never
    /// a panic or an oversized allocation.
    pub fn decode(bytes: &[u8]) -> io::Result<ContextSnapshot> {
        let r = &mut Cursor::new(bytes);
        if get_u32(r)? != MAGIC {
            return Err(bad("snapshot magic mismatch"));
        }
        let version = get_u32(r)?;
        if version != VERSION {
            return Err(bad(format!("unsupported snapshot version {version}")));
        }
        let module_kernels = match get_u8(r)? {
            0 => None,
            1 => {
                let n = get_len(r)?;
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let len = get_len(r)?;
                    let mut buf = vec![0u8; len];
                    r.read_exact(&mut buf)?;
                    names.push(
                        String::from_utf8(buf)
                            .map_err(|_| bad("kernel name is not valid UTF-8"))?,
                    );
                }
                Some(names)
            }
            other => return Err(bad(format!("bad module marker {other}"))),
        };
        let capacity = get_u32(r)?;
        let backed = match get_u8(r)? {
            0 => false,
            1 => true,
            other => return Err(bad(format!("bad backed marker {other}"))),
        };
        let quota = match get_u8(r)? {
            0 => None,
            1 => Some(get_u64(r)?),
            other => return Err(bad(format!("bad quota marker {other}"))),
        };
        let nblocks = get_len(r)?;
        let mut blocks = Vec::with_capacity(nblocks.min(1024));
        for _ in 0..nblocks {
            let base = get_u32(r)?;
            let len = get_u32(r)?;
            let data = match get_u8(r)? {
                0 => None,
                1 => {
                    let dlen = get_u32(r)? as usize;
                    // Bounded chunked growth: a corrupt length costs at most
                    // one chunk before the inevitable UnexpectedEof.
                    const CHUNK: usize = 64 * 1024;
                    let mut buf = Vec::with_capacity(dlen.min(CHUNK));
                    let mut remaining = dlen;
                    while remaining > 0 {
                        let take = remaining.min(CHUNK);
                        let start = buf.len();
                        buf.resize(start + take, 0);
                        r.read_exact(&mut buf[start..])?;
                        remaining -= take;
                    }
                    Some(buf)
                }
                other => return Err(bad(format!("bad block data marker {other}"))),
            };
            blocks.push(BlockSnapshot { base, len, data });
        }
        let nstreams = get_len(r)?;
        let mut streams = Vec::with_capacity(nstreams.min(1024));
        for _ in 0..nstreams {
            streams.push((get_u32(r)?, get_u64(r)?));
        }
        let stream_next = get_u32(r)?;
        let nevents = get_len(r)?;
        let mut events = Vec::with_capacity(nevents.min(1024));
        for _ in 0..nevents {
            let h = get_u32(r)?;
            let at = match get_u8(r)? {
                0 => None,
                1 => Some(get_u64(r)?),
                other => return Err(bad(format!("bad event marker {other}"))),
            };
            events.push((h, at));
        }
        let event_next = get_u32(r)?;
        Ok(ContextSnapshot {
            module_kernels,
            memory: MemorySnapshot {
                capacity,
                backed,
                quota,
                blocks,
            },
            streams: StreamSnapshot {
                streams,
                next_handle: stream_next,
            },
            events: EventSnapshot {
                events,
                next_handle: event_next,
            },
        })
    }

    /// Total device bytes this snapshot will charge on restore.
    pub fn used_bytes(&self) -> u64 {
        self.memory.blocks.iter().map(|b| b.len as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ContextSnapshot {
        ContextSnapshot {
            module_kernels: Some(vec!["sgemmNN".into(), "fft512_batch".into()]),
            memory: MemorySnapshot {
                capacity: 1 << 20,
                backed: true,
                quota: Some(4096),
                blocks: vec![
                    BlockSnapshot {
                        base: 0x1000,
                        len: 256,
                        data: Some(vec![7u8; 256]),
                    },
                    BlockSnapshot {
                        base: 0x1200,
                        len: 512,
                        data: Some(vec![9u8; 512]),
                    },
                ],
            },
            streams: StreamSnapshot {
                streams: vec![(0, 0), (1, 12345)],
                next_handle: 2,
            },
            events: EventSnapshot {
                events: vec![(1, None), (2, Some(999))],
                next_handle: 3,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let wire = snap.encode();
        assert_eq!(ContextSnapshot::decode(&wire).unwrap(), snap);
        assert_eq!(snap.used_bytes(), 768);
    }

    #[test]
    fn phantom_and_uninitialized_round_trip() {
        let snap = ContextSnapshot {
            module_kernels: None,
            memory: MemorySnapshot {
                capacity: u32::MAX - 0x1000,
                backed: false,
                quota: None,
                blocks: vec![BlockSnapshot {
                    base: 0x1000,
                    len: 1 << 30,
                    data: None,
                }],
            },
            streams: StreamSnapshot {
                streams: vec![(0, 0)],
                next_handle: 1,
            },
            events: EventSnapshot {
                events: vec![],
                next_handle: 1,
            },
        };
        let wire = snap.encode();
        assert_eq!(ContextSnapshot::decode(&wire).unwrap(), snap);
    }

    #[test]
    fn truncated_and_corrupt_inputs_error_cleanly() {
        let wire = sample().encode();
        for cut in [0, 3, 8, 20, wire.len() - 1] {
            assert!(ContextSnapshot::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xFF;
        assert!(ContextSnapshot::decode(&bad_magic).is_err());
        let mut bad_version = wire;
        bad_version[4] = 99;
        assert!(ContextSnapshot::decode(&bad_version).is_err());
    }

    #[test]
    fn corrupt_length_does_not_allocate_up_front() {
        // A snapshot claiming a huge block-data length must fail with EOF,
        // not attempt the allocation.
        let mut w = Vec::new();
        put_u32(&mut w, MAGIC).unwrap();
        put_u32(&mut w, VERSION).unwrap();
        w.push(0); // no module
        put_u32(&mut w, 1 << 20).unwrap();
        w.push(1); // backed
        w.push(0); // no quota
        put_u32(&mut w, 1).unwrap(); // one block
        put_u32(&mut w, 0x1000).unwrap();
        put_u32(&mut w, 256).unwrap();
        w.push(1);
        put_u32(&mut w, u32::MAX).unwrap(); // absurd data length
        assert!(ContextSnapshot::decode(&w).is_err());
    }
}
