//! The simulated GPU device: properties, kernel registry, cost model.
//!
//! One [`GpuDevice`] is shared (behind `Arc`) by every context created on
//! it, exactly like a physical accelerator serving multiple rCUDA
//! connections.

use rcuda_core::{CudaResult, DeviceProperties, SharedClock};
use std::sync::Arc;

use crate::context::GpuContext;
use crate::kernel::{builtin_registry, KernelRegistry};
use crate::ledger::MemoryLedger;
use crate::memory::DeviceMemory;
use crate::snapshot::ContextSnapshot;
use crate::timing::{C1060CostModel, CostModel, NullCostModel};

/// Per-context device-memory capacity: the full 32-bit address space minus
/// the reserved null region (the C1060's 4 GiB, as close as 4-byte device
/// pointers allow).
const CONTEXT_MEM_CAPACITY: u32 = u32::MAX - 0x1000;

/// A simulated CUDA device.
pub struct GpuDevice {
    props: DeviceProperties,
    registry: KernelRegistry,
    cost: Box<dyn CostModel>,
    ledger: Arc<MemoryLedger>,
}

impl GpuDevice {
    /// The paper's testbed device with the C1060 cost model — for simulated
    /// (virtual-clock) executions.
    pub fn tesla_c1060() -> Arc<Self> {
        Arc::new(GpuDevice {
            props: DeviceProperties::tesla_c1060(),
            registry: builtin_registry(),
            cost: Box::new(C1060CostModel::new()),
            ledger: Arc::new(MemoryLedger::new()),
        })
    }

    /// The paper's testbed device with no time charging — for functional
    /// wall-clock runs (tests, examples over real sockets).
    pub fn tesla_c1060_functional() -> Arc<Self> {
        Arc::new(GpuDevice {
            props: DeviceProperties::tesla_c1060(),
            registry: builtin_registry(),
            cost: Box::new(NullCostModel),
            ledger: Arc::new(MemoryLedger::new()),
        })
    }

    /// Fully custom device.
    pub fn custom(
        props: DeviceProperties,
        registry: KernelRegistry,
        cost: Box<dyn CostModel>,
    ) -> Arc<Self> {
        Arc::new(GpuDevice {
            props,
            registry,
            cost,
            ledger: Arc::new(MemoryLedger::new()),
        })
    }

    /// Device-wide memory accounting across every context created on this
    /// device (live bytes, peak). See [`MemoryLedger`].
    pub fn ledger(&self) -> &Arc<MemoryLedger> {
        &self.ledger
    }

    pub fn properties(&self) -> &DeviceProperties {
        &self.props
    }

    pub fn registry(&self) -> &KernelRegistry {
        &self.registry
    }

    pub fn cost_model(&self) -> &dyn CostModel {
        &*self.cost
    }

    /// Create an application context with functional (backed) memory.
    ///
    /// `preinitialized` contexts skip the CUDA context-creation charge — the
    /// rCUDA daemon keeps its context warm (§VI-B), while a local
    /// application pays it on first use.
    pub fn create_context(
        self: &Arc<Self>,
        clock: SharedClock,
        preinitialized: bool,
    ) -> GpuContext {
        self.make_context(clock, preinitialized, false)
    }

    /// Create a context with phantom memory: allocation bookkeeping and
    /// timing are exact, but no bytes are stored and kernels do not execute.
    /// This lets paper-scale problems (gigabytes of traffic) run through the
    /// full middleware on a virtual clock at negligible host cost.
    pub fn create_phantom_context(
        self: &Arc<Self>,
        clock: SharedClock,
        preinitialized: bool,
    ) -> GpuContext {
        self.make_context(clock, preinitialized, true)
    }

    /// Rebuild a migrated context on this device from its snapshot:
    /// allocator layout, backing bytes, streams/events and the module's
    /// kernel directory are restored exactly, and the restored bytes are
    /// charged to *this* device's ledger (the source side balances through
    /// its own context drop). No context-init charge — the daemon restores
    /// into its warm context slot, like a resume.
    pub fn restore_context(
        self: &Arc<Self>,
        clock: SharedClock,
        snap: &ContextSnapshot,
    ) -> CudaResult<GpuContext> {
        let mem = DeviceMemory::restore(&snap.memory, Some(Arc::clone(&self.ledger)))?;
        Ok(GpuContext::from_snapshot(
            Arc::clone(self),
            mem,
            clock,
            snap,
        ))
    }

    fn make_context(
        self: &Arc<Self>,
        clock: SharedClock,
        preinitialized: bool,
        phantom: bool,
    ) -> GpuContext {
        if !preinitialized {
            clock.advance(self.cost.context_init_time());
        }
        let mem = if phantom {
            DeviceMemory::phantom(CONTEXT_MEM_CAPACITY)
        } else {
            DeviceMemory::new(CONTEXT_MEM_CAPACITY)
        }
        .with_ledger(Arc::clone(&self.ledger));
        GpuContext::new(Arc::clone(self), mem, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::virtual_clock;
    use rcuda_core::Clock as _;

    #[test]
    fn device_exposes_paper_testbed() {
        let d = GpuDevice::tesla_c1060();
        assert_eq!(d.properties().name, "Tesla C1060");
        assert!(d.registry().contains("sgemmNN"));
    }

    #[test]
    fn context_init_charge_only_when_cold() {
        let d = GpuDevice::tesla_c1060();
        let clock = virtual_clock();
        let _warm = d.create_context(clock.clone(), true);
        assert_eq!(clock.now().as_nanos(), 0, "pre-initialized context is free");
        let _cold = d.create_context(clock.clone(), false);
        assert!(
            clock.now().as_secs_f64() > 0.1,
            "cold context pays CUDA init"
        );
    }

    #[test]
    fn ledger_spans_contexts_and_survives_leaky_drops() {
        let d = GpuDevice::tesla_c1060_functional();
        let clock = rcuda_core::time::wall_clock();
        let mut a = d.create_context(clock.clone(), true);
        let mut b = d.create_phantom_context(clock.clone(), true);
        let pa = a.malloc(1000).unwrap();
        let _leaked = b.malloc(5000).unwrap();
        assert_eq!(d.ledger().live_bytes(), a.used_bytes() + b.used_bytes());
        a.free(pa).unwrap();
        drop(b); // never freed — Drop reclaims it
        drop(a);
        assert_eq!(d.ledger().live_bytes(), 0, "device back at baseline");
        assert!(d.ledger().peak_bytes() >= 5000);
    }

    #[test]
    fn functional_device_charges_nothing() {
        let d = GpuDevice::tesla_c1060_functional();
        let clock = virtual_clock();
        let _ctx = d.create_context(clock.clone(), false);
        assert_eq!(clock.now().as_nanos(), 0);
    }
}
