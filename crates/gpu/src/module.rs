//! The GPU "module" blob: the code image the client ships at initialization.
//!
//! The real rCUDA locates the application's CUDA fatbin and sends it to the
//! server (§III, phase 1); the paper reports 21 486 bytes for the MM module
//! and 7 852 bytes for the FFT module. Our simulated device obviously cannot
//! execute NVIDIA machine code, so the module format here is a directory of
//! kernel *names* (resolved against the device's kernel registry at launch
//! time) padded with deterministic filler to any requested size — keeping
//! the wire traffic byte-identical to the paper's.
//!
//! Layout: `b"RCUM"` magic · u32 kernel count · per kernel (u32 length +
//! UTF-8 name) · filler to the target size.

use rcuda_core::{CudaError, CudaResult};

/// Module magic bytes.
const MAGIC: &[u8; 4] = b"RCUM";

/// Build a module blob exposing `kernels`, padded to `target_size` bytes
/// (0 = minimal size). Panics if the directory alone exceeds `target_size`.
pub fn build_module(kernels: &[&str], target_size: usize) -> Vec<u8> {
    let mut blob = Vec::with_capacity(target_size);
    blob.extend_from_slice(MAGIC);
    blob.extend_from_slice(&(kernels.len() as u32).to_le_bytes());
    for name in kernels {
        blob.extend_from_slice(&(name.len() as u32).to_le_bytes());
        blob.extend_from_slice(name.as_bytes());
    }
    if target_size > 0 {
        assert!(
            blob.len() <= target_size,
            "kernel directory ({}) exceeds target module size ({})",
            blob.len(),
            target_size
        );
        // Deterministic filler standing in for the fatbin machine code.
        let mut x = 0x9E37_79B9u32;
        while blob.len() < target_size {
            x = x.wrapping_mul(0x85EB_CA6B).rotate_left(13) ^ 0x27D4_EB2F;
            blob.push((x >> 24) as u8);
        }
    }
    blob
}

/// Parse a module blob into its kernel directory.
pub fn parse_module(blob: &[u8]) -> CudaResult<Vec<String>> {
    if blob.len() < 8 || &blob[..4] != MAGIC {
        return Err(CudaError::InitializationError);
    }
    let count = u32::from_le_bytes(blob[4..8].try_into().unwrap()) as usize;
    if count > 1024 {
        return Err(CudaError::InitializationError);
    }
    let mut names = Vec::with_capacity(count);
    let mut pos = 8;
    for _ in 0..count {
        let len_bytes = blob
            .get(pos..pos + 4)
            .ok_or(CudaError::InitializationError)?;
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        pos += 4;
        let name_bytes = blob
            .get(pos..pos + len)
            .ok_or(CudaError::InitializationError)?;
        let name =
            String::from_utf8(name_bytes.to_vec()).map_err(|_| CudaError::InitializationError)?;
        names.push(name);
        pos += len;
    }
    Ok(names)
}

/// Build the case-study module for MM at the paper's exact size.
pub fn mm_module() -> Vec<u8> {
    build_module(
        &["sgemmNN"],
        rcuda_core::casestudy::MM_MODULE_BYTES as usize,
    )
}

/// Build the case-study module for FFT at the paper's exact size.
pub fn fft_module() -> Vec<u8> {
    build_module(
        &["fft512_batch"],
        rcuda_core::casestudy::FFT_MODULE_BYTES as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_kernel_directory() {
        let blob = build_module(&["sgemmNN", "fft512_batch", "vec_add"], 0);
        assert_eq!(
            parse_module(&blob).unwrap(),
            vec!["sgemmNN", "fft512_batch", "vec_add"]
        );
    }

    #[test]
    fn case_study_modules_have_paper_sizes() {
        assert_eq!(mm_module().len(), 21_486);
        assert_eq!(fft_module().len(), 7_852);
        assert_eq!(parse_module(&mm_module()).unwrap(), vec!["sgemmNN"]);
        assert_eq!(parse_module(&fft_module()).unwrap(), vec!["fft512_batch"]);
    }

    #[test]
    fn padding_is_deterministic() {
        assert_eq!(build_module(&["k"], 4096), build_module(&["k"], 4096));
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(parse_module(b"nope"), Err(CudaError::InitializationError));
        assert_eq!(parse_module(&[]), Err(CudaError::InitializationError));
        // Magic but truncated directory.
        let mut blob = build_module(&["a_kernel_name"], 0);
        blob.truncate(10);
        assert_eq!(parse_module(&blob), Err(CudaError::InitializationError));
    }

    #[test]
    fn absurd_kernel_count_is_rejected() {
        let mut blob = Vec::new();
        blob.extend_from_slice(b"RCUM");
        blob.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(parse_module(&blob), Err(CudaError::InitializationError));
    }

    #[test]
    #[should_panic(expected = "exceeds target")]
    fn oversize_directory_panics() {
        build_module(&["a_rather_long_kernel_name"], 10);
    }
}
