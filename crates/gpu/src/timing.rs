//! Device cost models: how much simulated time operations charge.
//!
//! Functional runs use [`NullCostModel`] (real time passes by itself);
//! simulated experiments install [`C1060CostModel`], flavored after the
//! paper's Tesla C1060 testbed. Note that the *tables* of the paper are
//! regenerated from the analytically calibrated models in `rcuda-model`;
//! the device cost model here makes end-to-end simulated executions behave
//! plausibly (and lets the middleware be validated against the analytic
//! model).

use rcuda_core::{ArgReader, SimTime};

/// Time charged to a device operation.
pub trait CostModel: Send + Sync {
    /// Execution time of a kernel, judged from its name and argument block.
    fn kernel_time(&self, name: &str, args: &[u8]) -> SimTime;

    /// Host↔device transfer time over the PCIe link.
    fn pcie_time(&self, bytes: u64) -> SimTime;

    /// One-time CUDA context initialization. The paper observes that local
    /// runs pay this while the rCUDA daemon pre-initializes it away (§VI-B:
    /// "the rCUDA daemon pre-initializes the CUDA context, thus avoiding the
    /// CUDA environment initialization delay").
    fn context_init_time(&self) -> SimTime;

    /// Loading (JIT-registering) a module of `bytes`.
    fn module_load_time(&self, bytes: u64) -> SimTime;

    /// On-device fill (`cudaMemset`) of `bytes`. Defaults to free (the
    /// null model); real devices fill at device-memory bandwidth.
    fn memset_time(&self, _bytes: u64) -> SimTime {
        SimTime::ZERO
    }
}

/// Charges nothing — for functional wall-clock runs.
#[derive(Debug, Default)]
pub struct NullCostModel;

impl CostModel for NullCostModel {
    fn kernel_time(&self, _name: &str, _args: &[u8]) -> SimTime {
        SimTime::ZERO
    }
    fn pcie_time(&self, _bytes: u64) -> SimTime {
        SimTime::ZERO
    }
    fn context_init_time(&self) -> SimTime {
        SimTime::ZERO
    }
    fn module_load_time(&self, _bytes: u64) -> SimTime {
        SimTime::ZERO
    }
}

/// A Tesla C1060-flavored cost model.
#[derive(Debug, Clone)]
pub struct C1060CostModel {
    /// Sustained SGEMM rate, FLOP/s. Volkov & Demmel report ~60% of the
    /// GT200's single-precision peak for SGEMM; 375 GFLOP/s is that figure
    /// for the C1060.
    pub sgemm_flops: f64,
    /// Sustained batched-FFT rate, FLOP/s (5·N·log2 N per transform).
    pub fft_flops: f64,
    /// Effective PCIe 2.0 x16 bandwidth, MiB/s (paper: 5743).
    pub pcie_mib_s: f64,
    /// CUDA context creation, seconds.
    pub context_init_s: f64,
    /// Module registration per byte, seconds (plus fixed overhead).
    pub module_load_s_per_kib: f64,
}

impl Default for C1060CostModel {
    fn default() -> Self {
        C1060CostModel {
            sgemm_flops: 375e9,
            fft_flops: 80e9,
            pcie_mib_s: 5743.0,
            context_init_s: 0.35,
            module_load_s_per_kib: 1e-5,
        }
    }
}

impl C1060CostModel {
    pub fn new() -> Self {
        Self::default()
    }
}

impl CostModel for C1060CostModel {
    fn kernel_time(&self, name: &str, args: &[u8]) -> SimTime {
        match name {
            "sgemmNN" => {
                // args: a, b, c, m, n, k
                let mut r = ArgReader::new(args);
                let (_, _, _) = (r.ptr(), r.ptr(), r.ptr());
                let m = r.u32().unwrap_or(0) as f64;
                let n = r.u32().unwrap_or(0) as f64;
                let k = r.u32().unwrap_or(0) as f64;
                SimTime::from_secs_f64(2.0 * m * n * k / self.sgemm_flops)
            }
            "nbody_accel" => {
                // args: bodies, accel, n, softening — ~20 flops per pair.
                let mut r = ArgReader::new(args);
                let (_, _) = (r.ptr(), r.ptr());
                let n = r.u32().unwrap_or(0) as f64;
                SimTime::from_secs_f64(20.0 * n * n / self.sgemm_flops)
            }
            "fft512_batch" => {
                // args: data, batch
                let mut r = ArgReader::new(args);
                let _ = r.ptr();
                let batch = r.u32().unwrap_or(0) as f64;
                let per = 5.0 * 512.0 * (512.0f64).log2();
                SimTime::from_secs_f64(batch * per / self.fft_flops)
            }
            // Memory-bound utility kernels: charge by argument-visible size
            // at a nominal 80 GiB/s device bandwidth; fall back to a fixed
            // launch overhead.
            _ => SimTime::from_micros_f64(5.0),
        }
    }

    fn pcie_time(&self, bytes: u64) -> SimTime {
        let mib = bytes as f64 / (1u64 << 20) as f64;
        SimTime::from_secs_f64(mib / self.pcie_mib_s)
    }

    fn context_init_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.context_init_s)
    }

    fn module_load_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / 1024.0 * self.module_load_s_per_kib)
    }

    fn memset_time(&self, bytes: u64) -> SimTime {
        // GT200 device-memory bandwidth is ~102 GB/s peak; sustained fills
        // run around 73 GiB/s.
        let gib = bytes as f64 / (1u64 << 30) as f64;
        SimTime::from_secs_f64(gib / 73.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::ArgPack;

    #[test]
    fn null_model_charges_nothing() {
        let m = NullCostModel;
        assert_eq!(m.kernel_time("sgemmNN", &[]), SimTime::ZERO);
        assert_eq!(m.pcie_time(1 << 30), SimTime::ZERO);
        assert_eq!(m.context_init_time(), SimTime::ZERO);
        assert_eq!(m.module_load_time(21_486), SimTime::ZERO);
    }

    #[test]
    fn pcie_matches_paper_bandwidth() {
        let m = C1060CostModel::new();
        // 5743 MiB/s: a 5743 MiB transfer takes one second.
        let t = m.pcie_time(5743 << 20);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sgemm_time_scales_cubically() {
        let m = C1060CostModel::new();
        let args = |d: u32| {
            ArgPack::new()
                .push_ptr(rcuda_core::DevicePtr::new(1))
                .push_ptr(rcuda_core::DevicePtr::new(2))
                .push_ptr(rcuda_core::DevicePtr::new(3))
                .push_u32(d)
                .push_u32(d)
                .push_u32(d)
                .into_bytes()
        };
        let t1 = m.kernel_time("sgemmNN", &args(1024)).as_secs_f64();
        let t2 = m.kernel_time("sgemmNN", &args(2048)).as_secs_f64();
        assert!((t2 / t1 - 8.0).abs() < 1e-6);
        // Sanity: m=4096 SGEMM at 375 GFLOP/s is ~0.37 s.
        let t = m.kernel_time("sgemmNN", &args(4096)).as_secs_f64();
        assert!((t - 0.3665).abs() < 0.01, "{t}");
    }

    #[test]
    fn fft_time_scales_linearly_in_batch() {
        let m = C1060CostModel::new();
        let args = |b: u32| {
            ArgPack::new()
                .push_ptr(rcuda_core::DevicePtr::new(1))
                .push_u32(b)
                .into_bytes()
        };
        let t1 = m.kernel_time("fft512_batch", &args(2048)).as_secs_f64();
        let t2 = m.kernel_time("fft512_batch", &args(4096)).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_kernels_charge_launch_overhead() {
        let m = C1060CostModel::new();
        let t = m.kernel_time("vec_add", &[]);
        assert!(t > SimTime::ZERO);
        assert!(t < SimTime::from_millis_f64(1.0));
    }
}
