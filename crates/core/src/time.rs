//! Wall-clock and virtual-clock time sources.
//!
//! The workspace runs every experiment in one of two modes:
//!
//! * **real mode** — actual computation over actual loopback sockets, timed
//!   with a [`WallClock`]; used by functional tests and small examples;
//! * **simulated mode** — component cost models advance a [`VirtualClock`]
//!   deterministically; used by the table/figure harness, exactly as the
//!   paper itself *estimates* networks it does not own.
//!
//! All durations are carried as [`SimTime`], a nanosecond count with the
//! conversions the paper's tables need (µs, ms, s).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A duration (or a point on a virtual timeline) in nanoseconds.
///
/// `u64` nanoseconds covers ~584 years, far beyond any simulated experiment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds (fractional; negative values clamp to zero, which
    /// matters when evaluating the paper's regression `f(n) = 8.9n − 0.3`
    /// at small `n`).
    pub fn from_micros_f64(us: f64) -> Self {
        SimTime((us.max(0.0) * 1e3).round() as u64)
    }

    /// From milliseconds (fractional, clamped at zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1e6).round() as u64)
    }

    /// From seconds (fractional, clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl From<std::time::Duration> for SimTime {
    fn from(d: std::time::Duration) -> Self {
        SimTime(d.as_nanos() as u64)
    }
}

/// A time source that can be read and (for virtual clocks) advanced.
///
/// Components that cost time — network transfers, PCIe copies, kernel
/// executions, CPU phases — call [`Clock::advance`]. A wall clock ignores
/// the advance (real time passes by itself); a virtual clock steps its
/// timeline deterministically.
pub trait Clock: Send + Sync {
    /// Current position on this clock's timeline.
    fn now(&self) -> SimTime;

    /// Record that `d` of modeled time has elapsed.
    fn advance(&self, d: SimTime);

    /// True if this clock is virtual (advances only via [`Clock::advance`]).
    fn is_virtual(&self) -> bool;
}

/// Real time; `advance` is a no-op.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.origin.elapsed().as_nanos() as u64)
    }

    fn advance(&self, _d: SimTime) {}

    fn is_virtual(&self) -> bool {
        false
    }
}

/// Deterministic virtual time, advanced explicitly by cost models.
///
/// Shared between the simulated client, server, network, and GPU so that a
/// whole remote execution unrolls on a single timeline. Atomic so that the
/// same type works when the simulated endpoints live on different threads
/// (each component's advances then interleave; the sum is what matters for
/// the paper's sequential, synchronous call model).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Reset to the origin (between repetitions of an experiment).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::SeqCst))
    }

    fn advance(&self, d: SimTime) {
        self.now_ns.fetch_add(d.0, Ordering::SeqCst);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

/// A clock handle that can be shared across components and threads.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared virtual clock.
pub fn virtual_clock() -> Arc<VirtualClock> {
    Arc::new(VirtualClock::new())
}

/// Convenience constructor for a shared wall clock.
pub fn wall_clock() -> Arc<WallClock> {
    Arc::new(WallClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_conversions() {
        let t = SimTime::from_millis_f64(8.9 * 64.0 - 0.3); // f(64) for GigaE
        assert!((t.as_millis_f64() - 569.3).abs() < 1e-6);
        assert!((t.as_secs_f64() - 0.5693).abs() < 1e-9);
        assert!((t.as_micros_f64() - 569_300.0).abs() < 1e-3);
    }

    #[test]
    fn negative_regression_values_clamp_to_zero() {
        // f(0.01) = 8.9*0.01 - 0.3 < 0: the linear fit is only valid for large
        // payloads; the clamp keeps misuse harmless.
        assert_eq!(SimTime::from_millis_f64(-0.211), SimTime::ZERO);
    }

    #[test]
    fn virtual_clock_advances_deterministically() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimTime::from_nanos(500));
        c.advance(SimTime::from_nanos(250));
        assert_eq!(c.now(), SimTime::from_nanos(750));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
        assert!(c.is_virtual());
    }

    #[test]
    fn wall_clock_ignores_advance() {
        let c = WallClock::new();
        let before = c.now();
        c.advance(SimTime::from_secs_f64(3600.0));
        let after = c.now();
        // Only real elapsed time passed (well under an hour).
        assert!(after.saturating_sub(before) < SimTime::from_secs_f64(60.0));
        assert!(!c.is_virtual());
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(a * 3, SimTime::from_nanos(300));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let s: SimTime = [a, b].into_iter().sum();
        assert_eq!(s, SimTime::from_nanos(140));
    }
}
