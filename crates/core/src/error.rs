//! CUDA-style error codes.
//!
//! The rCUDA wire protocol (paper Table I) returns a 32-bit result code for
//! every operation, mirroring `cudaError_t` from the CUDA Runtime API. We
//! model the subset of codes the middleware can actually produce, plus
//! dedicated transport-level codes (timeout, connection lost, protocol
//! violation) in the 10001+ range. Real rCUDA collapses all of those into
//! `cudaErrorUnknown`; keeping them distinct lets an application tell a
//! dead server from a genuinely unknown CUDA fault.

use std::fmt;

/// Result alias used across the workspace for CUDA-surface operations.
pub type CudaResult<T> = Result<T, CudaError>;

/// Error codes mirroring the CUDA Runtime API's `cudaError_t`.
///
/// The numeric values of the classic codes match CUDA 2.3 (the toolkit the
/// paper's server daemon was built on) so that the 32-bit code on the wire is
/// faithful to what the real middleware would carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CudaError {
    /// `cudaErrorMissingConfiguration` — kernel launched without configuration.
    MissingConfiguration,
    /// `cudaErrorMemoryAllocation` — device memory allocation failed.
    MemoryAllocation,
    /// `cudaErrorInitializationError` — the runtime could not be initialized.
    InitializationError,
    /// `cudaErrorLaunchFailure` — a kernel launch failed while executing.
    LaunchFailure,
    /// `cudaErrorInvalidDeviceFunction` — the named kernel is not in the
    /// loaded module.
    InvalidDeviceFunction,
    /// `cudaErrorInvalidValue` — an argument was out of range.
    InvalidValue,
    /// `cudaErrorInvalidDevicePointer` — a device pointer does not refer to a
    /// live allocation.
    InvalidDevicePointer,
    /// `cudaErrorInvalidMemcpyDirection` — bad `cudaMemcpyKind`.
    InvalidMemcpyDirection,
    /// `cudaErrorInvalidResourceHandle` — unknown stream/event handle.
    InvalidResourceHandle,
    /// `cudaErrorNotReady` — asynchronous work has not completed (returned by
    /// queries, not a failure).
    NotReady,
    /// `cudaErrorNoDevice` — no CUDA-capable device is available.
    NoDevice,
    /// `cudaErrorUnknown` — catch-all.
    Unknown,
    /// The transport timed out waiting for the server (no CUDA equivalent;
    /// real rCUDA collapses this into `cudaErrorUnknown`, losing the cause).
    TransportTimedOut,
    /// The connection to the server was lost (reset, broken pipe, refused,
    /// or unexpected EOF mid-message).
    TransportConnectionLost,
    /// The peer sent bytes that violate the wire protocol (bad selector,
    /// mismatched batch response, undecodable field).
    ProtocolViolation,
    /// The server is over its admission limits and shed this connection at
    /// the handshake (load shedding, not a fault — retrying after the
    /// server's hint is expected to succeed).
    ServerBusy,
    /// The daemon requires token authentication and the client's handshake
    /// proof did not verify (wrong token, missing token, or a legacy hello
    /// against an auth-gated daemon). Not retryable: retrying with the same
    /// credentials will fail the same way.
    AuthFailed,
    /// The session's server-side state is unrecoverable: the daemon that
    /// held it died (or evicted it) and the in-flight work was not
    /// idempotent, so the cluster failover layer could not replay it
    /// bit-identically. Surfaced instead of a hang — the application knows
    /// exactly which call's effects are indeterminate.
    SessionLost,
}

impl CudaError {
    /// The 32-bit code carried on the wire (CUDA 2.3 numbering).
    pub const fn code(self) -> u32 {
        match self {
            CudaError::MissingConfiguration => 1,
            CudaError::MemoryAllocation => 2,
            CudaError::InitializationError => 3,
            CudaError::LaunchFailure => 4,
            CudaError::InvalidDeviceFunction => 8,
            CudaError::InvalidValue => 11,
            CudaError::InvalidDevicePointer => 17,
            CudaError::InvalidMemcpyDirection => 21,
            CudaError::InvalidResourceHandle => 33,
            CudaError::NotReady => 34,
            CudaError::NoDevice => 38,
            CudaError::Unknown => 10000,
            // Transport diagnostics live above the CUDA range: CUDA 2.3
            // never defined codes past cudaErrorStartupFailure (0x7f), so
            // 10001+ cannot collide with a real toolkit code.
            CudaError::TransportTimedOut => 10001,
            CudaError::TransportConnectionLost => 10002,
            CudaError::ProtocolViolation => 10003,
            CudaError::ServerBusy => 10004,
            CudaError::AuthFailed => 10005,
            CudaError::SessionLost => 10006,
        }
    }

    /// Decode a wire code. `0` is `cudaSuccess` and therefore yields `Ok(())`.
    /// Unrecognized nonzero codes decode to [`CudaError::Unknown`].
    pub fn from_code(code: u32) -> Result<(), CudaError> {
        Err(match code {
            0 => return Ok(()),
            1 => CudaError::MissingConfiguration,
            2 => CudaError::MemoryAllocation,
            3 => CudaError::InitializationError,
            4 => CudaError::LaunchFailure,
            8 => CudaError::InvalidDeviceFunction,
            11 => CudaError::InvalidValue,
            17 => CudaError::InvalidDevicePointer,
            21 => CudaError::InvalidMemcpyDirection,
            33 => CudaError::InvalidResourceHandle,
            34 => CudaError::NotReady,
            38 => CudaError::NoDevice,
            10001 => CudaError::TransportTimedOut,
            10002 => CudaError::TransportConnectionLost,
            10003 => CudaError::ProtocolViolation,
            10004 => CudaError::ServerBusy,
            10005 => CudaError::AuthFailed,
            10006 => CudaError::SessionLost,
            _ => CudaError::Unknown,
        })
    }

    /// The CUDA-style identifier, e.g. `cudaErrorMemoryAllocation`.
    pub const fn name(self) -> &'static str {
        match self {
            CudaError::MissingConfiguration => "cudaErrorMissingConfiguration",
            CudaError::MemoryAllocation => "cudaErrorMemoryAllocation",
            CudaError::InitializationError => "cudaErrorInitializationError",
            CudaError::LaunchFailure => "cudaErrorLaunchFailure",
            CudaError::InvalidDeviceFunction => "cudaErrorInvalidDeviceFunction",
            CudaError::InvalidValue => "cudaErrorInvalidValue",
            CudaError::InvalidDevicePointer => "cudaErrorInvalidDevicePointer",
            CudaError::InvalidMemcpyDirection => "cudaErrorInvalidMemcpyDirection",
            CudaError::InvalidResourceHandle => "cudaErrorInvalidResourceHandle",
            CudaError::NotReady => "cudaErrorNotReady",
            CudaError::NoDevice => "cudaErrorNoDevice",
            CudaError::Unknown => "cudaErrorUnknown",
            CudaError::TransportTimedOut => "rcudaErrorTransportTimedOut",
            CudaError::TransportConnectionLost => "rcudaErrorTransportConnectionLost",
            CudaError::ProtocolViolation => "rcudaErrorProtocolViolation",
            CudaError::ServerBusy => "rcudaErrorServerBusy",
            CudaError::AuthFailed => "rcudaErrorAuthFailed",
            CudaError::SessionLost => "rcudaErrorSessionLost",
        }
    }

    /// All distinct error variants (useful for exhaustive round-trip tests).
    pub const ALL: [CudaError; 18] = [
        CudaError::MissingConfiguration,
        CudaError::MemoryAllocation,
        CudaError::InitializationError,
        CudaError::LaunchFailure,
        CudaError::InvalidDeviceFunction,
        CudaError::InvalidValue,
        CudaError::InvalidDevicePointer,
        CudaError::InvalidMemcpyDirection,
        CudaError::InvalidResourceHandle,
        CudaError::NotReady,
        CudaError::NoDevice,
        CudaError::Unknown,
        CudaError::TransportTimedOut,
        CudaError::TransportConnectionLost,
        CudaError::ProtocolViolation,
        CudaError::ServerBusy,
        CudaError::AuthFailed,
        CudaError::SessionLost,
    ];

    /// Whether this error reports a transport/protocol fault rather than a
    /// CUDA-level failure. `ServerBusy` and `AuthFailed` are deliberately
    /// *not* transport faults: the connection worked, the server chose to
    /// refuse it.
    pub const fn is_transport(self) -> bool {
        matches!(
            self,
            CudaError::TransportTimedOut
                | CudaError::TransportConnectionLost
                | CudaError::ProtocolViolation
        )
    }
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (code {})", self.name(), self.code())
    }
}

impl std::error::Error for CudaError {}

/// Encode an operation result as the 32-bit wire code (`0` = success).
pub fn result_code(r: &CudaResult<()>) -> u32 {
    match r {
        Ok(()) => 0,
        Err(e) => e.code(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_code_is_zero() {
        assert_eq!(CudaError::from_code(0), Ok(()));
        assert_eq!(result_code(&Ok(())), 0);
    }

    #[test]
    fn codes_round_trip() {
        for e in CudaError::ALL {
            assert_eq!(CudaError::from_code(e.code()), Err(e), "{e}");
        }
    }

    #[test]
    fn codes_are_distinct() {
        let mut codes: Vec<u32> = CudaError::ALL.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), CudaError::ALL.len());
    }

    #[test]
    fn unknown_codes_decode_to_unknown() {
        assert_eq!(CudaError::from_code(9999), Err(CudaError::Unknown));
        assert_eq!(CudaError::from_code(u32::MAX), Err(CudaError::Unknown));
    }

    #[test]
    fn display_includes_name_and_code() {
        let s = CudaError::MemoryAllocation.to_string();
        assert!(s.contains("cudaErrorMemoryAllocation"));
        assert!(s.contains('2'));
    }
}
