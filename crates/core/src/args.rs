//! Packed kernel-argument blocks.
//!
//! CUDA 2.x marshals kernel arguments into a flat byte block
//! (`cudaSetupArgument` copies each argument at its offset); rCUDA ships
//! that block inside the `cudaLaunch` message's name region (Table I's `x`).
//! [`ArgPack`] builds such a block and [`ArgReader`] decodes it on the
//! device side. All values are little-endian, 4-byte aligned — the layout
//! of the paper's 32-bit device ABI.

use crate::device::DevicePtr;
use crate::error::{CudaError, CudaResult};

/// Builder for a packed argument block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgPack {
    bytes: Vec<u8>,
}

impl ArgPack {
    pub fn new() -> Self {
        ArgPack::default()
    }

    /// Append a device pointer (4 bytes, like Table I's pointer fields).
    pub fn push_ptr(mut self, p: DevicePtr) -> Self {
        self.bytes.extend_from_slice(&p.addr().to_le_bytes());
        self
    }

    /// Append a `u32`.
    pub fn push_u32(mut self, v: u32) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f32`.
    pub fn push_f32(mut self, v: f32) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// The finished block.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Sequential decoder for a packed argument block.
#[derive(Debug)]
pub struct ArgReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ArgReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        ArgReader { bytes, pos: 0 }
    }

    fn take4(&mut self) -> CudaResult<[u8; 4]> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(CudaError::InvalidValue)?;
        self.pos = end;
        Ok(slice.try_into().unwrap())
    }

    /// Read the next device pointer.
    pub fn ptr(&mut self) -> CudaResult<DevicePtr> {
        Ok(DevicePtr::new(u32::from_le_bytes(self.take4()?)))
    }

    /// Read the next `u32`.
    pub fn u32(&mut self) -> CudaResult<u32> {
        Ok(u32::from_le_bytes(self.take4()?))
    }

    /// Read the next `f32`.
    pub fn f32(&mut self) -> CudaResult<f32> {
        Ok(f32::from_le_bytes(self.take4()?))
    }

    /// Expect the block to be fully consumed (kernels must not silently
    /// ignore trailing arguments — that indicates an ABI mismatch).
    pub fn finish(self) -> CudaResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CudaError::InvalidValue)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_and_read_back() {
        let block = ArgPack::new()
            .push_ptr(DevicePtr::new(0x100))
            .push_u32(4096)
            .push_f32(1.5)
            .into_bytes();
        assert_eq!(block.len(), 12);
        let mut r = ArgReader::new(&block);
        assert_eq!(r.ptr().unwrap(), DevicePtr::new(0x100));
        assert_eq!(r.u32().unwrap(), 4096);
        assert_eq!(r.f32().unwrap(), 1.5);
        r.finish().unwrap();
    }

    #[test]
    fn short_block_errors() {
        let block = ArgPack::new().push_u32(1).into_bytes();
        let mut r = ArgReader::new(&block);
        r.u32().unwrap();
        assert_eq!(r.u32(), Err(CudaError::InvalidValue));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let block = ArgPack::new().push_u32(1).push_u32(2).into_bytes();
        let mut r = ArgReader::new(&block);
        r.u32().unwrap();
        assert_eq!(r.finish(), Err(CudaError::InvalidValue));
    }

    #[test]
    fn empty_pack() {
        let p = ArgPack::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        ArgReader::new(p.as_bytes()).finish().unwrap();
    }
}
