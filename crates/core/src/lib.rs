//! Shared vocabulary for the `rcuda-rs` workspace.
//!
//! This crate holds the types every other crate speaks: CUDA-style error
//! codes, device descriptors and device pointers, wall/virtual clocks used to
//! drive both real and simulated executions, byte-size helpers, and the
//! descriptors of the two case studies evaluated by the paper (dense
//! matrix-matrix product and batched 1-D FFT).
//!
//! Nothing here knows about networks, GPUs, or the wire protocol — it is the
//! dependency root of the workspace.

pub mod args;
pub mod casestudy;
pub mod device;
pub mod dim;
pub mod error;
pub mod size;
pub mod time;

pub use args::{ArgPack, ArgReader};
pub use casestudy::{CaseStudy, Family, FFT_BATCHES, FFT_POINTS, MM_DIMS};
pub use device::{DeviceProperties, DevicePtr};
pub use dim::Dim3;
pub use error::{CudaError, CudaResult};
pub use size::{ByteSize, GIB, KIB, MB, MIB};
pub use time::{virtual_clock, wall_clock, Clock, SharedClock, SimTime, VirtualClock, WallClock};
