//! The paper's two case studies and their standard problem-size grids.
//!
//! * **MM** — single-precision dense matrix-matrix product `C = A · B` with
//!   square matrices of dimension `m`. One data element is 4 bytes, so each
//!   of the three memory transfers (A in, B in, C out) moves `4·m²` bytes.
//! * **FFT** — a batch of `n` independent 512-point single-precision complex
//!   1-D FFTs. One point is 8 bytes, so each of the two transfers (input in,
//!   output out) moves `8·512·n = 4096·n` bytes.
//!
//! Module sizes (the GPU code blob shipped at initialization) are the ones
//! the paper reports: 21 486 bytes for MM, 7 852 bytes for FFT.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::size::ByteSize;

/// Number of complex points per FFT in the batch (fixed by the paper).
pub const FFT_POINTS: usize = 512;

/// GPU module size for the MM case study, bytes (paper §IV-B).
pub const MM_MODULE_BYTES: u64 = 21_486;

/// GPU module size for the FFT case study, bytes (paper §IV-B).
pub const FFT_MODULE_BYTES: u64 = 7_852;

/// The matrix dimensions evaluated in Tables III–VI.
pub const MM_DIMS: [u32; 8] = [4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432];

/// The FFT batch sizes evaluated in Tables III–VI (note: no 14336 row).
pub const FFT_BATCHES: [u32; 7] = [2048, 4096, 6144, 8192, 10240, 12288, 16384];

/// A case-study instance: which workload, at which problem size.
///
/// ```
/// use rcuda_core::CaseStudy;
///
/// let mm = CaseStudy::MatMul { dim: 4096 };
/// // One copy moves 4·m² bytes = 64 MiB (paper Table III's "Data" column)...
/// assert_eq!(mm.memcpy_bytes().as_mib(), 64.0);
/// // ...and an execution makes 3 of them (A in, B in, C out).
/// assert_eq!(mm.memcpy_count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseStudy {
    /// Matrix-matrix product with square matrices of dimension `dim`.
    MatMul { dim: u32 },
    /// Batch of `batch` independent 512-point complex FFTs.
    Fft { batch: u32 },
}

impl CaseStudy {
    /// The workload family name used in table headers.
    pub fn family(&self) -> &'static str {
        match self {
            CaseStudy::MatMul { .. } => "MM",
            CaseStudy::Fft { .. } => "FFT",
        }
    }

    /// The problem-size column ("Dim." for MM, "Batch" for FFT).
    pub fn size(&self) -> u32 {
        match *self {
            CaseStudy::MatMul { dim } => dim,
            CaseStudy::Fft { batch } => batch,
        }
    }

    /// Bytes moved by ONE memory-copy operation (`4m²` or `4096n`).
    pub fn memcpy_bytes(&self) -> ByteSize {
        match *self {
            CaseStudy::MatMul { dim } => ByteSize(4 * dim as u64 * dim as u64),
            CaseStudy::Fft { batch } => ByteSize(8 * FFT_POINTS as u64 * batch as u64),
        }
    }

    /// Number of bulk memory copies per execution: the paper multiplies the
    /// per-copy transfer time by 3 for MM (A, B in; C out) and by 2 for FFT
    /// (one per direction). §V.
    pub fn memcpy_count(&self) -> u32 {
        match self {
            CaseStudy::MatMul { .. } => 3,
            CaseStudy::Fft { .. } => 2,
        }
    }

    /// Of the [`Self::memcpy_count`] copies, how many are host→device.
    pub fn h2d_count(&self) -> u32 {
        match self {
            CaseStudy::MatMul { .. } => 2,
            CaseStudy::Fft { .. } => 1,
        }
    }

    /// Of the [`Self::memcpy_count`] copies, how many are device→host.
    pub fn d2h_count(&self) -> u32 {
        1
    }

    /// Number of `cudaMalloc`/`cudaFree` pairs (Table II: ×3 for MM, ×1 for
    /// FFT, which transforms in place in a single buffer).
    pub fn alloc_count(&self) -> u32 {
        match self {
            CaseStudy::MatMul { .. } => 3,
            CaseStudy::Fft { .. } => 1,
        }
    }

    /// Size of the GPU module shipped at initialization.
    pub fn module_bytes(&self) -> ByteSize {
        match self {
            CaseStudy::MatMul { .. } => ByteSize(MM_MODULE_BYTES),
            CaseStudy::Fft { .. } => ByteSize(FFT_MODULE_BYTES),
        }
    }

    /// Name of the kernel entry point, as carried in the `cudaLaunch`
    /// message. Chosen so the message sizes reproduce Table II exactly:
    /// `cudaLaunch` sends `x + 44` bytes where `x` is the kernel-name length,
    /// 52 total for MM (8-byte name) and 58 for FFT (14-byte name).
    pub fn kernel_name(&self) -> &'static str {
        match self {
            CaseStudy::MatMul { .. } => "sgemmNN\0",
            CaseStudy::Fft { .. } => "fft512_batch\0\0",
        }
    }

    /// Floating-point operations of one execution.
    ///
    /// MM: `2·m³` (multiply-add per inner-product step). FFT: the classic
    /// `5·N·log2(N)` per transform, times the batch.
    pub fn flops(&self) -> f64 {
        match *self {
            CaseStudy::MatMul { dim } => 2.0 * (dim as f64).powi(3),
            CaseStudy::Fft { batch } => {
                let n = FFT_POINTS as f64;
                5.0 * n * n.log2() * batch as f64
            }
        }
    }

    /// Total application payload moved over the interconnect per execution
    /// (the product of per-copy bytes and copy count) — the quantity the
    /// paper's abstract refers to when it validates "executions involving
    /// data transfers above 40 MB".
    pub fn total_transfer_bytes(&self) -> ByteSize {
        self.memcpy_bytes() * self.memcpy_count() as u64
    }

    /// The standard problem-size grid for this family (Tables III–VI rows).
    pub fn standard_grid(family: Family) -> Vec<CaseStudy> {
        match family {
            Family::MatMul => MM_DIMS
                .iter()
                .map(|&dim| CaseStudy::MatMul { dim })
                .collect(),
            Family::Fft => FFT_BATCHES
                .iter()
                .map(|&batch| CaseStudy::Fft { batch })
                .collect(),
        }
    }
}

impl fmt::Display for CaseStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CaseStudy::MatMul { dim } => write!(f, "MM(m={dim})"),
            CaseStudy::Fft { batch } => write!(f, "FFT(n={batch})"),
        }
    }
}

/// Workload family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    MatMul,
    Fft,
}

impl Family {
    pub const ALL: [Family; 2] = [Family::MatMul, Family::Fft];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::MIB;

    #[test]
    fn mm_transfer_sizes_match_table3() {
        // Table III: dim 4096 -> 64 MB per copy; 18432 -> 1296 MB.
        let c = CaseStudy::MatMul { dim: 4096 };
        assert_eq!(c.memcpy_bytes().as_bytes(), 64 * MIB);
        let c = CaseStudy::MatMul { dim: 18432 };
        assert_eq!(c.memcpy_bytes().as_bytes(), 1296 * MIB);
        assert_eq!(c.memcpy_count(), 3);
    }

    #[test]
    fn fft_transfer_sizes_match_table3() {
        // Table III: batch 2048 -> 8 MB per copy; 16384 -> 64 MB.
        let c = CaseStudy::Fft { batch: 2048 };
        assert_eq!(c.memcpy_bytes().as_bytes(), 8 * MIB);
        let c = CaseStudy::Fft { batch: 16384 };
        assert_eq!(c.memcpy_bytes().as_bytes(), 64 * MIB);
        assert_eq!(c.memcpy_count(), 2);
    }

    #[test]
    fn module_sizes_match_paper() {
        assert_eq!(
            CaseStudy::MatMul { dim: 1 }.module_bytes().as_bytes(),
            21_486
        );
        assert_eq!(CaseStudy::Fft { batch: 1 }.module_bytes().as_bytes(), 7_852);
    }

    #[test]
    fn kernel_name_lengths_reproduce_table2_launch_sizes() {
        // cudaLaunch send total = x + 44 (Table I). Table II reports 52 bytes
        // for MM and 58 for FFT, so x must be 8 and 14.
        assert_eq!(CaseStudy::MatMul { dim: 1 }.kernel_name().len(), 8);
        assert_eq!(CaseStudy::Fft { batch: 1 }.kernel_name().len(), 14);
    }

    #[test]
    fn standard_grids_match_tables() {
        let mm = CaseStudy::standard_grid(Family::MatMul);
        assert_eq!(mm.len(), 8);
        assert_eq!(mm[0].size(), 4096);
        assert_eq!(mm[7].size(), 18432);
        let fft = CaseStudy::standard_grid(Family::Fft);
        assert_eq!(fft.len(), 7);
        assert!(
            fft.iter().all(|c| c.size() != 14336),
            "paper skips batch 14336"
        );
    }

    #[test]
    fn flops_are_asymptotically_sane() {
        // MM is O(m^3): doubling m scales work by 8.
        let f1 = CaseStudy::MatMul { dim: 1024 }.flops();
        let f2 = CaseStudy::MatMul { dim: 2048 }.flops();
        assert!((f2 / f1 - 8.0).abs() < 1e-12);
        // FFT batch is linear in n.
        let g1 = CaseStudy::Fft { batch: 100 }.flops();
        let g2 = CaseStudy::Fft { batch: 200 }.flops();
        assert!((g2 / g1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_transfer_above_40mb_for_mm_grid() {
        // Abstract: estimation validated at ~1% for transfers above 40 MB.
        for c in CaseStudy::standard_grid(Family::MatMul) {
            assert!(c.total_transfer_bytes().as_bytes() >= 40 * MIB);
        }
    }
}
