//! Byte-size units and formatting.
//!
//! The paper mixes decimal megabytes (network bandwidth, "data size in MB" in
//! Tables III and V) with exact byte counts (Table I message layouts). We make
//! the distinction explicit: [`MB`] is the decimal unit used for bandwidth
//! arithmetic, [`MIB`] the binary unit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One decimal megabyte (10^6 bytes) — the unit the paper's bandwidth figures
/// and latency regressions are expressed in.
pub const MB: u64 = 1_000_000;

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;

/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;

/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;

/// A byte count with paper-consistent conversions and human formatting.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Construct from raw bytes.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// Construct from decimal megabytes.
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * MB)
    }

    /// Construct from mebibytes.
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in decimal megabytes (the paper's `n` in `f(n)`/`g(n)`).
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / MB as f64
    }

    /// Size in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_units_are_decimal() {
        // Table III: MM dim 4096 transfers 4*4096^2 bytes = 67.108864 decimal MB,
        // which the paper rounds to "64 MB" because it quietly uses MiB there;
        // we keep both conversions available and exact.
        let sz = ByteSize::bytes(4 * 4096 * 4096);
        assert!((sz.as_mb() - 67.108864).abs() < 1e-9);
        assert!((sz.as_mib() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::mb(3).as_bytes(), 3_000_000);
        assert_eq!(ByteSize::mib(2).as_bytes(), 2 << 20);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::bytes(12).to_string(), "12 B");
        assert_eq!(ByteSize::bytes(2048).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::mib(64).to_string(), "64.00 MiB");
        assert_eq!(ByteSize::mib(2048).to_string(), "2.00 GiB");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ByteSize::bytes(1) + ByteSize::bytes(2), ByteSize::bytes(3));
        assert_eq!(ByteSize::bytes(7) * 3, ByteSize::bytes(21));
        let total: ByteSize = [ByteSize::bytes(1), ByteSize::bytes(4)].into_iter().sum();
        assert_eq!(total, ByteSize::bytes(5));
    }
}
