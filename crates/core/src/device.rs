//! Device descriptors and device pointers.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::size::{ByteSize, GIB};

/// An address in simulated GPU device memory.
///
/// The real CUDA 2.3 ABI on the paper's 32-bit device pointers carries these
/// as 4 bytes on the wire (Table I: "Device pointer — 4"); we therefore keep
/// the value range within `u32` when allocating, while using a wider type
/// in-process for convenience.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DevicePtr(pub u32);

impl DevicePtr {
    /// The null device pointer.
    pub const NULL: DevicePtr = DevicePtr(0);

    pub const fn new(addr: u32) -> Self {
        DevicePtr(addr)
    }

    pub const fn addr(self) -> u32 {
        self.0
    }

    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Pointer arithmetic (byte offset), as CUDA applications routinely do.
    pub fn offset(self, bytes: u32) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

/// Static properties of a (simulated) CUDA device, mirroring the subset of
/// `cudaDeviceProp` that the middleware ships during initialization
/// (Table I: "Compute capability — 8 bytes" on the receive side).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProperties {
    /// Marketing name.
    pub name: String,
    /// Compute capability major number.
    pub cc_major: u32,
    /// Compute capability minor number.
    pub cc_minor: u32,
    /// Total device global memory.
    pub total_global_mem: ByteSize,
    /// Number of streaming multiprocessors.
    pub multiprocessor_count: u32,
    /// Shader clock in kHz.
    pub clock_rate_khz: u32,
    /// Effective host<->device bandwidth over the PCIe link, MiB/s.
    ///
    /// The paper measures 5743 MB/s for the Tesla C1060 behind PCIe 2.0 x16.
    pub pcie_bandwidth_mib_s: f64,
}

impl DeviceProperties {
    /// The NVIDIA Tesla C1060 used in the paper's testbed.
    pub fn tesla_c1060() -> Self {
        DeviceProperties {
            name: "Tesla C1060".to_string(),
            cc_major: 1,
            cc_minor: 3,
            total_global_mem: ByteSize(4 * GIB),
            multiprocessor_count: 30,
            clock_rate_khz: 1_296_000,
            pcie_bandwidth_mib_s: 5743.0,
        }
    }

    /// Compute capability packed as the 8-byte wire field (major, minor as
    /// two little-endian `u32`s), exactly the 8 bytes of Table I.
    pub fn compute_capability_wire(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.cc_major.to_le_bytes());
        out[4..].copy_from_slice(&self.cc_minor.to_le_bytes());
        out
    }

    /// Decode the 8-byte compute-capability wire field.
    pub fn compute_capability_from_wire(bytes: [u8; 8]) -> (u32, u32) {
        let major = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        let minor = u32::from_le_bytes(bytes[4..].try_into().unwrap());
        (major, minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1060_matches_paper_testbed() {
        let p = DeviceProperties::tesla_c1060();
        assert_eq!((p.cc_major, p.cc_minor), (1, 3));
        assert_eq!(p.total_global_mem, ByteSize(4 * GIB));
        assert_eq!(p.multiprocessor_count, 30);
        assert!((p.pcie_bandwidth_mib_s - 5743.0).abs() < f64::EPSILON);
    }

    #[test]
    fn compute_capability_wire_round_trip() {
        let p = DeviceProperties::tesla_c1060();
        let wire = p.compute_capability_wire();
        assert_eq!(wire.len(), 8); // Table I: 8-byte field
        assert_eq!(DeviceProperties::compute_capability_from_wire(wire), (1, 3));
    }

    #[test]
    fn device_ptr_basics() {
        let p = DevicePtr::new(0x100);
        assert!(!p.is_null());
        assert!(DevicePtr::NULL.is_null());
        assert_eq!(p.offset(0x10).addr(), 0x110);
        assert_eq!(p.to_string(), "0x00000100");
    }
}
