//! CUDA launch geometry (`dim3`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// CUDA's `dim3`: block and grid dimensions of a kernel launch.
///
/// Table I sends the block dimension as 12 bytes (three `u32`s) and the grid
/// dimension as 8 bytes (two `u32`s — CUDA 2.x grids are 2-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// A 1-D geometry.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D geometry.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements spanned.
    pub const fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Encode as the 12-byte block-dimension wire field.
    pub fn to_wire12(self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[..4].copy_from_slice(&self.x.to_le_bytes());
        out[4..8].copy_from_slice(&self.y.to_le_bytes());
        out[8..].copy_from_slice(&self.z.to_le_bytes());
        out
    }

    /// Decode the 12-byte block-dimension wire field.
    pub fn from_wire12(b: [u8; 12]) -> Self {
        Dim3 {
            x: u32::from_le_bytes(b[..4].try_into().unwrap()),
            y: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            z: u32::from_le_bytes(b[8..].try_into().unwrap()),
        }
    }

    /// Encode as the 8-byte grid-dimension wire field (x, y only; CUDA 2.x
    /// grids are two-dimensional, hence Table I's 8 bytes).
    pub fn to_wire8(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.x.to_le_bytes());
        out[4..].copy_from_slice(&self.y.to_le_bytes());
        out
    }

    /// Decode the 8-byte grid-dimension wire field (z is implicitly 1).
    pub fn from_wire8(b: [u8; 8]) -> Self {
        Dim3 {
            x: u32::from_le_bytes(b[..4].try_into().unwrap()),
            y: u32::from_le_bytes(b[4..].try_into().unwrap()),
            z: 1,
        }
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::new(1, 1, 1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_match_table1() {
        let d = Dim3::xy(64, 16);
        assert_eq!(d.to_wire12().len(), 12); // block dimension field
        assert_eq!(d.to_wire8().len(), 8); // grid dimension field
    }

    #[test]
    fn wire12_round_trip() {
        let d = Dim3::new(3, 5, 7);
        assert_eq!(Dim3::from_wire12(d.to_wire12()), d);
    }

    #[test]
    fn wire8_round_trip_flattens_z() {
        let d = Dim3::xy(128, 256);
        assert_eq!(Dim3::from_wire8(d.to_wire8()), d);
        // z is not carried by the 8-byte form.
        let d3 = Dim3::new(2, 3, 9);
        assert_eq!(Dim3::from_wire8(d3.to_wire8()), Dim3::xy(2, 3));
    }

    #[test]
    fn count_and_display() {
        assert_eq!(Dim3::new(2, 3, 4).count(), 24);
        assert_eq!(Dim3::x(16).count(), 16);
        assert_eq!(Dim3::new(1, 2, 3).to_string(), "(1, 2, 3)");
    }
}
