//! Property tests on the interconnect models.

use proptest::prelude::*;
use rcuda_netsim::{NetworkId, NetworkModel};

proptest! {
    /// One-way latency is monotone in payload on every network.
    #[test]
    fn one_way_is_monotone(
        a in 0u64..256 << 20,
        b in 0u64..256 << 20,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        for id in NetworkId::ALL {
            let m = id.model();
            prop_assert!(
                m.one_way(lo) <= m.one_way(hi),
                "{id}: one_way({lo}) > one_way({hi})"
            );
        }
    }

    /// Bulk transfer is exactly linear: t(x)·2 == t(2x) (within rounding).
    #[test]
    fn bulk_transfer_is_linear(bytes in 1u64..128 << 20) {
        for id in NetworkId::ALL {
            let m = id.model();
            let t1 = m.bulk_transfer(bytes).as_nanos() as i128;
            let t2 = m.bulk_transfer(2 * bytes).as_nanos() as i128;
            prop_assert!((t2 - 2 * t1).abs() <= 2, "{id}");
        }
    }

    /// Faster catalog bandwidth ⇒ faster bulk transfer, any payload.
    #[test]
    fn bandwidth_orders_bulk_times(bytes in 1u64 << 20..512 << 20) {
        let mut nets: Vec<NetworkId> = NetworkId::ALL.to_vec();
        nets.sort_by(|a, b| a.bandwidth_mib_s().total_cmp(&b.bandwidth_mib_s()));
        for w in nets.windows(2) {
            let slow = w[0].model().bulk_transfer(bytes);
            let fast = w[1].model().bulk_transfer(bytes);
            prop_assert!(fast <= slow, "{} vs {}", w[0], w[1]);
        }
    }

    /// The application-transfer view never beats the ping-pong view by more
    /// than the GigaE distortion floor (app transfers can be slower, not
    /// meaningfully faster).
    #[test]
    fn app_transfer_not_faster_than_bulk(bytes in 1u64 << 20..256 << 20) {
        for id in NetworkId::ALL {
            let m = id.model();
            let app = m.app_transfer(bytes).as_secs_f64();
            let bulk = m.bulk_transfer(bytes).as_secs_f64();
            prop_assert!(app >= bulk * 0.94, "{id}: app {app} vs bulk {bulk}");
        }
    }

    /// The paper's regression lines bound the measured-network one-way
    /// latency in the linear regime.
    #[test]
    fn linear_regime_matches_regressions(mib in 1u64..64) {
        use rcuda_netsim::{GigaEModel, Ib40GModel};
        let bytes = mib << 20;
        let f = GigaEModel::f_ms(mib as f64);
        let got = GigaEModel::new().one_way(bytes).as_millis_f64();
        prop_assert!((got - f).abs() < 0.01, "f({mib}) = {f}, got {got}");
        if mib >= 4 {
            let g = Ib40GModel::g_ms(mib as f64);
            let got = Ib40GModel::new().one_way(bytes).as_millis_f64();
            prop_assert!((got - g).abs() < 0.01, "g({mib}) = {g}, got {got}");
        }
    }
}
