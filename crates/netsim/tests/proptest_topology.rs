//! Property tests on topology routing.

use proptest::prelude::*;
use rcuda_netsim::Topology;

/// Build a random connected topology: a host chain plus random extra links.
fn arb_topology() -> impl Strategy<Value = (Topology, usize)> {
    (
        3usize..12,
        proptest::collection::vec((0usize..12, 0usize..12, 0.1f64..50.0), 0..10),
    )
        .prop_map(|(n, extra)| {
            let mut t = Topology::new();
            let hosts: Vec<usize> = (0..n).map(|_| t.add_host()).collect();
            // Chain guarantees connectivity.
            for w in hosts.windows(2) {
                t.connect(w[0], w[1], 10.0);
            }
            for (a, b, lat) in extra {
                let (a, b) = (a % n, b % n);
                if a != b {
                    t.connect(hosts[a], hosts[b], lat);
                }
            }
            (t, n)
        })
}

proptest! {
    /// Shortest-path latency is symmetric on undirected graphs.
    #[test]
    fn path_latency_is_symmetric((t, n) in arb_topology(), a in 0usize..12, b in 0usize..12) {
        let (a, b) = (a % n, b % n);
        let ab = t.path_latency_us(a, b);
        let ba = t.path_latency_us(b, a);
        match (ab, ba) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric reachability"),
        }
    }

    /// Triangle inequality: going via any intermediate node is never
    /// cheaper than the shortest path.
    #[test]
    fn triangle_inequality((t, n) in arb_topology(), a in 0usize..12, b in 0usize..12, c in 0usize..12) {
        let (a, b, c) = (a % n, b % n, c % n);
        let direct = t.path_latency_us(a, b).unwrap();
        let via = t.path_latency_us(a, c).unwrap() + t.path_latency_us(c, b).unwrap();
        prop_assert!(direct <= via + 1e-9, "direct {direct} via {via}");
    }

    /// Adding a link never makes any route slower.
    #[test]
    fn adding_links_never_hurts(
        (t, n) in arb_topology(),
        x in 0usize..12,
        y in 0usize..12,
        lat in 0.1f64..100.0,
    ) {
        let (x, y) = (x % n, y % n);
        prop_assume!(x != y);
        let mut t2 = t.clone();
        t2.connect(x, y, lat);
        for a in 0..n {
            for b in 0..n {
                let before = t.path_latency_us(a, b).unwrap();
                let after = t2.path_latency_us(a, b).unwrap();
                prop_assert!(after <= before + 1e-9, "{a}->{b}: {before} -> {after}");
            }
        }
    }

    /// Hop count is a lower bound scaled by the cheapest link.
    #[test]
    fn hops_bound_latency((t, n) in arb_topology(), a in 0usize..12, b in 0usize..12) {
        let (a, b) = (a % n, b % n);
        prop_assume!(a != b);
        let lat = t.path_latency_us(a, b).unwrap();
        let hops = t.hop_count(a, b).unwrap() as f64;
        // Cheapest possible link in arb_topology is 0.1 µs.
        prop_assert!(lat >= hops.min(1.0) * 0.1 - 1e-9);
    }
}
