//! The measured 40 Gbps InfiniBand (40GI) model.
//!
//! Reproduces the paper's §IV-A characterization:
//!
//! * **Small payloads** (Fig. 4 left): "a more linear response in comparison
//!   with the GigaE network"; anchored on the control-message times of
//!   Table II's 40GI column (27.9 µs for small request/replies, 39.5 µs for
//!   the 7 852 B FFT module, 80.9 µs for the 21 486 B MM module).
//! * **Large payloads** (Fig. 4 right): the regression
//!   `g(n) = 0.7·n + 2.8` ms for `n` MiB, correlation 1.0.
//!
//! No TCP-style distortion: the paper's 40GI fixed times track the bandwidth
//! model closely (§V attributes the cross-model spread to the *GigaE* side).

use rcuda_core::SimTime;

use crate::id::NetworkId;
use crate::model::NetworkModel;
use crate::piecewise::PiecewiseLinear;

/// Slope of `g(n)` in ms per MiB.
pub const G_SLOPE_MS_PER_MIB: f64 = 0.7;

/// Intercept of `g(n)` in ms.
pub const G_INTERCEPT_MS: f64 = 2.8;

/// Payload size where the linear regime `g(n)` takes over.
const LINEAR_REGIME_BYTES: u64 = 4 << 20;

/// 40 Gbps InfiniBand.
#[derive(Debug, Clone)]
pub struct Ib40GModel {
    small: PiecewiseLinear,
}

impl Ib40GModel {
    pub fn new() -> Self {
        // g(4 MiB) = 5.6 ms bridges the measured small-message anchors to
        // the linear regime. (g's 2.8 ms intercept makes g(n) exceed the
        // small-payload measurements below ~4 MiB, so the regime boundary
        // sits higher than GigaE's.)
        let g_at_regime_us = (G_SLOPE_MS_PER_MIB * 4.0 + G_INTERCEPT_MS) * 1e3;
        let small = PiecewiseLinear::new(
            &[
                (8, 27.9),
                (58, 27.9),
                (7_856, 39.5),
                (21_490, 80.9),
                (LINEAR_REGIME_BYTES, g_at_regime_us),
            ],
            0.0,
        );
        Ib40GModel { small }
    }

    /// The paper's large-payload regression `g(n)` in ms, `n` in MiB.
    pub fn g_ms(n_mib: f64) -> f64 {
        G_SLOPE_MS_PER_MIB * n_mib + G_INTERCEPT_MS
    }
}

impl Default for Ib40GModel {
    fn default() -> Self {
        Ib40GModel::new()
    }
}

impl NetworkModel for Ib40GModel {
    fn id(&self) -> NetworkId {
        NetworkId::Ib40G
    }

    fn bandwidth_mib_s(&self) -> f64 {
        NetworkId::Ib40G.bandwidth_mib_s()
    }

    fn one_way(&self, bytes: u64) -> SimTime {
        if bytes >= LINEAR_REGIME_BYTES {
            let n_mib = bytes as f64 / (1u64 << 20) as f64;
            SimTime::from_millis_f64(Self::g_ms(n_mib))
        } else {
            SimTime::from_micros_f64(self.small.eval_us(bytes))
        }
    }

    fn app_transfer(&self, bytes: u64) -> SimTime {
        // Application bulk copies track the bandwidth model (no TCP window).
        if bytes < LINEAR_REGIME_BYTES {
            self.one_way(bytes)
        } else {
            self.bulk_transfer(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_packet_times_match_table2() {
        let m = Ib40GModel::new();
        for (bytes, us) in [
            (8u64, 27.9),
            (20, 27.9),
            (52, 27.9),
            (58, 27.9),
            (7_856, 39.5),
            (21_490, 80.9),
        ] {
            let t = m.one_way(bytes).as_micros_f64();
            assert!((t - us).abs() < 0.05, "{bytes} B: {t} vs {us}");
        }
    }

    #[test]
    fn large_payloads_follow_g() {
        let m = Ib40GModel::new();
        // Fig. 4 right: g(64) = 47.6 ms.
        let t = m.one_way(64 << 20).as_millis_f64();
        assert!((t - 47.6).abs() < 0.01, "{t}");
    }

    #[test]
    fn bulk_transfer_matches_table3() {
        let m = Ib40GModel::new();
        // Table III 40GI: 64 MB -> 46.8 ms; 1296 MB -> 948.0 ms; 8 MB -> 5.9
        // (the paper prints one decimal; 8/1367.1 s = 5.85 ms rounds there).
        for (mib, ms) in [(64u64, 46.8), (1296, 948.0), (8, 5.9)] {
            let t = m.bulk_transfer(mib << 20).as_millis_f64();
            assert!(
                (t - ms).abs() < 0.051 || (t - ms).abs() / ms < 3e-3,
                "{mib} MiB: {t} vs {ms}"
            );
        }
    }

    #[test]
    fn one_way_is_monotone_across_the_regime_boundary() {
        let m = Ib40GModel::new();
        let mut prev = SimTime::ZERO;
        for bytes in [
            1u64,
            8,
            64,
            7_856,
            21_490,
            500_000,
            1 << 20,
            4 << 20,
            (4 << 20) + 1,
            64 << 20,
        ] {
            let t = m.one_way(bytes);
            assert!(t >= prev, "non-monotone at {bytes}");
            prev = t;
        }
    }

    #[test]
    fn app_transfer_tracks_bandwidth_model_for_bulk() {
        let m = Ib40GModel::new();
        assert_eq!(m.app_transfer(64 << 20), m.bulk_transfer(64 << 20));
    }

    #[test]
    fn ib_beats_gige_everywhere_at_bulk() {
        use crate::gige::GigaEModel;
        let ib = Ib40GModel::new();
        let ge = GigaEModel::new();
        for mib in [8u64, 16, 64, 256, 1024] {
            assert!(ib.app_transfer(mib << 20) < ge.app_transfer(mib << 20));
        }
    }
}
