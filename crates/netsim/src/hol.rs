//! Head-of-line blocking on a shared ordered byte stream, and what stream
//! multiplexing buys back.
//!
//! The paper's single-stream design (§III: one socket per session) means a
//! small synchronous call issued while a bulk memcpy is in flight must wait
//! for the *entire* bulk message to finish serializing — the worst-case
//! wait is the bulk transfer time itself. The multiplexed trunk chops bulk
//! payloads into fixed-size chunks and interleaves frames across
//! sub-streams, so the same small call waits for at most one chunk's
//! serialization in each direction.
//!
//! [`HolModel`] prices both regimes on any [`NetworkModel`] (including the
//! workload suite's measurement-calibrated loopback link), and
//! [`HolModel::improvement`] is the predicted single-stream/mux latency
//! ratio that the `multiplex` bench and the HOL validation test check
//! against measurement, the same way PR 7 validates the §V estimator.

use rcuda_core::SimTime;

use crate::model::NetworkModel;

/// Default bulk chunk size of the mux framing layer. Mirrors
/// `rcuda_proto::mux::CHUNK` (the crates are siblings, so the value is
/// duplicated here and pinned equal by a cross-crate test in the facade).
pub const DEFAULT_CHUNK_BYTES: u64 = 64 * 1024;

/// One scenario: a small synchronous call racing a concurrent bulk
/// transfer on the same connection.
#[derive(Debug, Clone, Copy)]
pub struct HolModel {
    /// Bytes of the concurrent bulk payload (e.g. a 16 MiB memcpy).
    pub bulk_bytes: u64,
    /// Request bytes of the small call.
    pub small_request: u64,
    /// Response bytes of the small call.
    pub small_response: u64,
    /// Mux framing chunk size; [`DEFAULT_CHUNK_BYTES`] unless negotiated
    /// otherwise.
    pub chunk_bytes: u64,
}

impl HolModel {
    /// A small call with `request`/`response` bytes against a `bulk_bytes`
    /// transfer, with the default chunk size.
    pub fn new(bulk_bytes: u64, small_request: u64, small_response: u64) -> HolModel {
        HolModel {
            bulk_bytes,
            small_request,
            small_response,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// The small call's own cost with nothing else on the wire.
    pub fn small_call_uncontended(&self, net: &dyn NetworkModel) -> SimTime {
        net.round_trip(self.small_request, self.small_response)
    }

    /// Worst-case small-call latency on a **single ordered stream**: the
    /// call serializes behind the whole in-flight bulk message before its
    /// own round trip even starts. This is the p99-regime the bench
    /// measures — with a bulk transfer continuously occupying the stream,
    /// the tail call arrives just after a bulk write began.
    pub fn small_call_single_stream(&self, net: &dyn NetworkModel) -> SimTime {
        net.app_transfer(self.bulk_bytes) + self.small_call_uncontended(net)
    }

    /// Worst-case small-call latency on a **multiplexed trunk**: the call's
    /// frames wait for at most one bulk chunk per direction, and the bulk
    /// flow's bandwidth share halves the link for the small frames'
    /// serialization (max-min fair share between the two active streams).
    pub fn small_call_muxed(&self, net: &dyn NetworkModel) -> SimTime {
        let chunk = self.chunk_bytes.min(self.bulk_bytes);
        let hol = net.app_transfer(chunk);
        let shared = net.round_trip(self.small_request, self.small_response);
        hol + hol + shared + shared
    }

    /// Predicted single-stream / mux latency ratio — the factor the bench's
    /// measured p99s must confirm (≥ 5× for a 16 MiB bulk on loopback).
    pub fn improvement(&self, net: &dyn NetworkModel) -> f64 {
        let single = self.small_call_single_stream(net).as_secs_f64();
        let muxed = self.small_call_muxed(net).as_secs_f64();
        single / muxed.max(f64::EPSILON)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gige::GigaEModel;
    use crate::ib40g::Ib40GModel;

    const SIXTEEN_MIB: u64 = 16 << 20;

    fn model() -> HolModel {
        HolModel::new(SIXTEEN_MIB, 64, 16)
    }

    #[test]
    fn single_stream_pays_the_whole_bulk_transfer() {
        let net = GigaEModel::new();
        let m = model();
        assert_eq!(
            m.small_call_single_stream(&net),
            net.app_transfer(SIXTEEN_MIB) + net.round_trip(64, 16)
        );
    }

    #[test]
    fn muxed_waits_at_most_one_chunk_per_direction() {
        let net = GigaEModel::new();
        let m = model();
        // The mux bound is far below even half the bulk transfer.
        assert!(m.small_call_muxed(&net) < net.app_transfer(SIXTEEN_MIB / 2));
    }

    #[test]
    fn improvement_is_at_least_5x_for_16mib_on_both_paper_networks() {
        let m = model();
        for net in [&GigaEModel::new() as &dyn NetworkModel, &Ib40GModel::new()] {
            let x = m.improvement(net);
            assert!(x >= 5.0, "{}: predicted only {x:.1}x", net.name());
        }
    }

    #[test]
    fn tiny_bulk_degenerates_gracefully() {
        // A bulk smaller than one chunk: mux still does strictly better
        // than single-stream only through fair-sharing, and the ratio
        // stays finite and ≥ a fraction of 1.
        let net = GigaEModel::new();
        let m = HolModel::new(1024, 64, 16);
        let x = m.improvement(&net);
        assert!(x.is_finite() && x > 0.1, "{x}");
    }

    #[test]
    fn improvement_grows_with_bulk_size() {
        let net = GigaEModel::new();
        let small = HolModel::new(1 << 20, 64, 16).improvement(&net);
        let large = HolModel::new(64 << 20, 64, 16).improvement(&net);
        assert!(large > small * 10.0, "{small} vs {large}");
    }
}
