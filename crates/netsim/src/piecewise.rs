//! Piecewise-linear curves through measured anchor points.
//!
//! The paper's Table II control-message times are "directly extracted from
//! the real measured times represented in the left-hand side plots in
//! Figures 3 and 4 (interpolated if the exact value was not available)".
//! [`PiecewiseLinear`] is that interpolation: a monotone polyline through
//! anchor `(payload bytes, one-way µs)` points, extended past the last
//! anchor with a caller-supplied slope (the asymptotic per-byte cost).

/// A monotone piecewise-linear curve `bytes → microseconds`.
#[derive(Debug, Clone)]
pub struct PiecewiseLinear {
    /// Anchor points, strictly increasing in `x` (bytes).
    points: Vec<(f64, f64)>,
    /// Per-byte slope (µs/B) beyond the last anchor.
    tail_slope: f64,
}

impl PiecewiseLinear {
    /// Build from anchors. Panics (debug) if anchors are not strictly
    /// increasing in `x` or decreasing in `y` — the curve must be monotone,
    /// as latency can only grow with payload.
    pub fn new(anchors: &[(u64, f64)], tail_slope_us_per_byte: f64) -> Self {
        assert!(!anchors.is_empty(), "need at least one anchor");
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "anchor x must strictly increase");
            assert!(w[0].1 <= w[1].1, "anchor y must be non-decreasing");
        }
        assert!(tail_slope_us_per_byte >= 0.0);
        PiecewiseLinear {
            points: anchors.iter().map(|&(x, y)| (x as f64, y)).collect(),
            tail_slope: tail_slope_us_per_byte,
        }
    }

    /// Evaluate at `bytes`, in microseconds.
    pub fn eval_us(&self, bytes: u64) -> f64 {
        let x = bytes as f64;
        let first = self.points[0];
        if x <= first.0 {
            return first.1;
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        let (xn, yn) = *self.points.last().unwrap();
        yn + (x - xn) * self.tail_slope
    }

    /// The largest anchor x (bytes).
    pub fn last_anchor_bytes(&self) -> u64 {
        self.points.last().unwrap().0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> PiecewiseLinear {
        PiecewiseLinear::new(&[(8, 22.2), (20, 22.4), (100, 30.0)], 0.01)
    }

    #[test]
    fn hits_anchors_exactly() {
        let c = curve();
        assert_eq!(c.eval_us(8), 22.2);
        assert_eq!(c.eval_us(20), 22.4);
        assert_eq!(c.eval_us(100), 30.0);
    }

    #[test]
    fn clamps_below_first_anchor() {
        let c = curve();
        assert_eq!(c.eval_us(0), 22.2);
        assert_eq!(c.eval_us(4), 22.2);
    }

    #[test]
    fn interpolates_between_anchors() {
        let c = curve();
        let mid = c.eval_us(14); // halfway between 8 and 20
        assert!((mid - 22.3).abs() < 1e-9);
    }

    #[test]
    fn extends_with_tail_slope() {
        let c = curve();
        assert!((c.eval_us(1100) - (30.0 + 1000.0 * 0.01)).abs() < 1e-9);
        assert_eq!(c.last_anchor_bytes(), 100);
    }

    #[test]
    fn is_monotone_everywhere() {
        let c = curve();
        let mut prev = f64::NEG_INFINITY;
        for b in (0..5000).step_by(7) {
            let v = c.eval_us(b);
            assert!(v >= prev, "non-monotone at {b}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_unsorted_anchors() {
        PiecewiseLinear::new(&[(10, 1.0), (5, 2.0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_latency() {
        PiecewiseLinear::new(&[(5, 2.0), (10, 1.0)], 0.0);
    }
}
