//! Bandwidth-only models for the five projected HPC networks (§VI-A).
//!
//! The paper knows these networks only through their published effective
//! one-way bandwidths (Rashti & Afsahi for 10GE/10GI/Myr; the High Node
//! Count HyperTransport specification for F-HT/A-HT), so their model is
//! simply `time = payload / bandwidth` — which is exactly how Table V is
//! computed. For simulated *executions* over these networks we additionally
//! assume a small per-message base latency typical of each technology; the
//! tables never depend on it (control messages are neglected by the paper's
//! model, §V).

use rcuda_core::SimTime;

use crate::id::NetworkId;
use crate::model::NetworkModel;

/// A network known only by its effective bandwidth plus an assumed
/// per-message base latency.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    id: NetworkId,
    bandwidth_mib_s: f64,
    base_latency_us: f64,
}

impl BandwidthModel {
    /// The catalog model for one of the five target networks.
    ///
    /// Base latencies are documented assumptions (DESIGN.md): 8 µs for
    /// iWARP 10GE, 5 µs for 10G InfiniBand, 3 µs for Myrinet-10G, 1 µs for
    /// FPGA HyperTransport and 0.5 µs for ASIC HyperTransport (the HNC-HT
    /// specification targets sub-microsecond hardware-managed transfers).
    pub fn for_id(id: NetworkId) -> Self {
        let base_latency_us = match id {
            NetworkId::TenGigE => 8.0,
            NetworkId::TenGigIb => 5.0,
            NetworkId::Myri10G => 3.0,
            NetworkId::FpgaHt => 1.0,
            NetworkId::AsicHt => 0.5,
            // The measured networks have dedicated models; fall back to a
            // conservative TCP-ish latency if someone builds them this way.
            NetworkId::GigaE | NetworkId::Ib40G => 25.0,
        };
        BandwidthModel {
            id,
            bandwidth_mib_s: id.bandwidth_mib_s(),
            base_latency_us,
        }
    }

    /// A custom what-if network (used by the planner example and capacity
    /// sweeps).
    pub fn custom(id: NetworkId, bandwidth_mib_s: f64, base_latency_us: f64) -> Self {
        assert!(bandwidth_mib_s > 0.0);
        assert!(base_latency_us >= 0.0);
        BandwidthModel {
            id,
            bandwidth_mib_s,
            base_latency_us,
        }
    }
}

impl NetworkModel for BandwidthModel {
    fn id(&self) -> NetworkId {
        self.id
    }

    fn bandwidth_mib_s(&self) -> f64 {
        self.bandwidth_mib_s
    }

    fn one_way(&self, bytes: u64) -> SimTime {
        let mib = bytes as f64 / (1u64 << 20) as f64;
        SimTime::from_micros_f64(self.base_latency_us + mib / self.bandwidth_mib_s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_mm_row_4096() {
        // Table V, MM dim 4096 (64 MB): 72.7 / 66.0 / 85.3 / 44.4 / 22.2 ms.
        let expect = [
            (NetworkId::TenGigE, 72.7),
            (NetworkId::TenGigIb, 66.0),
            (NetworkId::Myri10G, 85.3),
            (NetworkId::FpgaHt, 44.4),
            (NetworkId::AsicHt, 22.2),
        ];
        for (id, ms) in expect {
            let t = BandwidthModel::for_id(id)
                .bulk_transfer(64 << 20)
                .as_millis_f64();
            assert!((t - ms).abs() < 0.05, "{id}: {t} vs {ms}");
        }
    }

    #[test]
    fn table5_fft_row_16384() {
        // Table V, FFT batch 16384 (64 MB) equals the MM 4096 row.
        let t = BandwidthModel::for_id(NetworkId::Myri10G)
            .bulk_transfer(64 << 20)
            .as_millis_f64();
        assert!((t - 85.3).abs() < 0.05);
    }

    #[test]
    fn one_way_includes_base_latency() {
        let m = BandwidthModel::for_id(NetworkId::TenGigE);
        let t = m.one_way(0).as_micros_f64();
        assert!((t - 8.0).abs() < 1e-9);
        // Bulk payloads dwarf the base latency.
        let bulk = m.bulk_transfer(64 << 20).as_micros_f64();
        let ow = m.one_way(64 << 20).as_micros_f64();
        assert!((ow - bulk - 8.0).abs() < 1.0);
    }

    #[test]
    fn custom_network_applies_parameters() {
        let m = BandwidthModel::custom(NetworkId::TenGigE, 2000.0, 2.0);
        assert_eq!(m.bandwidth_mib_s(), 2000.0);
        let t = m.one_way(2000 << 20).as_secs_f64();
        assert!((t - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_zero_bandwidth() {
        BandwidthModel::custom(NetworkId::TenGigE, 0.0, 1.0);
    }
}
