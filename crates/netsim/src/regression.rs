//! Ordinary least-squares linear regression.
//!
//! The paper fits its large-payload latency models by "performing a linear
//! regression of the data", reporting `f(n) = 8.9n − 0.3` (GigaE) and
//! `g(n) = 0.7n + 2.8` (40GI), each with "a correlation coefficient of 1.0".
//! This module provides that fit plus the Pearson correlation used to quote
//! the quality, and is reused by the estimation model's calibration.

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Pearson correlation coefficient of the sample.
    pub correlation: f64,
}

impl LinearFit {
    /// Evaluate the fitted line.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fit a line through `(x, y)` samples. Panics if fewer than two samples or
/// if all `x` are identical (the slope would be undefined).
pub fn linear_fit(samples: &[(f64, f64)]) -> LinearFit {
    assert!(samples.len() >= 2, "need at least two samples");
    let n = samples.len() as f64;
    let sum_x: f64 = samples.iter().map(|s| s.0).sum();
    let sum_y: f64 = samples.iter().map(|s| s.1).sum();
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;

    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in samples {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    assert!(sxx > 0.0, "all x values identical; slope undefined");

    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let correlation = if syy == 0.0 {
        // A perfectly flat response is perfectly predicted by a flat line.
        1.0
    } else {
        sxy / (sxx * syy).sqrt()
    };
    LinearFit {
        slope,
        intercept,
        correlation,
    }
}

/// Fit `y ≈ a/x + b` (a hyperbola in `x`, linear in `1/x`) — the shape of
/// the GigaE TCP-window distortion factor (§V): large for small transfers,
/// vanishing for large ones.
pub fn inverse_fit(samples: &[(f64, f64)]) -> LinearFit {
    let transformed: Vec<(f64, f64)> = samples.iter().map(|&(x, y)| (1.0 / x, y)).collect();
    linear_fit(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let samples: Vec<(f64, f64)> = (1..=64).map(|i| (i as f64, 8.9 * i as f64 - 0.3)).collect();
        let fit = linear_fit(&samples);
        assert!((fit.slope - 8.9).abs() < 1e-12);
        assert!((fit.intercept + 0.3).abs() < 1e-9);
        assert!((fit.correlation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_close() {
        // Deterministic "noise" with zero mean over the sample.
        let samples: Vec<(f64, f64)> = (1..=100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
                (x, 0.7 * x + 2.8 + noise)
            })
            .collect();
        let fit = linear_fit(&samples);
        assert!((fit.slope - 0.7).abs() < 1e-3);
        assert!((fit.intercept - 2.8).abs() < 0.05);
        assert!(fit.correlation > 0.999);
    }

    #[test]
    fn eval_applies_coefficients() {
        let fit = LinearFit {
            slope: 2.0,
            intercept: 1.0,
            correlation: 1.0,
        };
        assert_eq!(fit.eval(3.0), 7.0);
    }

    #[test]
    fn inverse_fit_recovers_hyperbola() {
        let samples: Vec<(f64, f64)> = [8.0, 16.0, 24.0, 32.0, 64.0]
            .iter()
            .map(|&d| (d, 3.4 / d - 0.01))
            .collect();
        let fit = inverse_fit(&samples);
        assert!((fit.slope - 3.4).abs() < 1e-9, "alpha");
        assert!((fit.intercept + 0.01).abs() < 1e-9, "beta");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_sample() {
        linear_fit(&[(1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn rejects_degenerate_x() {
        linear_fit(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}
