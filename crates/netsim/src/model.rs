//! The [`NetworkModel`] trait: three views of an interconnect's timing.

use rcuda_core::SimTime;

use crate::id::NetworkId;

/// A point-to-point interconnect's timing behavior.
///
/// All times are **one-way, end-to-end** (application level), matching the
/// paper's methodology: "the bandwidth is extracted from the measured
/// round-trip time divided by two" (§VI).
pub trait NetworkModel: Send + Sync {
    /// Which network this is.
    fn id(&self) -> NetworkId;

    /// Effective one-way bandwidth for bulk payloads, MiB/s.
    fn bandwidth_mib_s(&self) -> f64;

    /// One-way end-to-end latency of a single message with `bytes` of
    /// payload — the ping-pong quantity of Figures 3–4. Must be monotonic
    /// in `bytes`.
    fn one_way(&self, bytes: u64) -> SimTime;

    /// The paper's Tables III/V arithmetic: `payload / effective bandwidth`.
    ///
    /// This deliberately ignores per-message latency; the paper argues the
    /// approximation is valid because the case studies move few, large
    /// messages (§V).
    fn bulk_transfer(&self, bytes: u64) -> SimTime {
        let mib = bytes as f64 / (1u64 << 20) as f64;
        SimTime::from_secs_f64(mib / self.bandwidth_mib_s())
    }

    /// What an application-level bulk copy actually costs on this network.
    ///
    /// Defaults to [`NetworkModel::one_way`]. GigaE overrides this to add
    /// the TCP-window distortion that makes real rCUDA transfers slower than
    /// the ping-pong model for moderate payloads (§V: "the differences in
    /// the fixed times ... are mostly attributed to unexpected network
    /// transfer times related to the TCP window status").
    fn app_transfer(&self, bytes: u64) -> SimTime {
        self.one_way(bytes)
    }

    /// Cost of one synchronous call exchange: the request crosses one way,
    /// the response crosses back (§III's "each CUDA call costs a network
    /// round trip"). Pipelined-mode accounting sums this per *flush* rather
    /// than per call — batching N requests into one flush pays one
    /// `round_trip(Σ sent, Σ received)` instead of N separate ones.
    fn round_trip(&self, sent_bytes: u64, received_bytes: u64) -> SimTime {
        self.app_transfer(sent_bytes) + self.app_transfer(received_bytes)
    }

    /// Human-readable name (paper abbreviation).
    fn name(&self) -> &'static str {
        self.id().abbrev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat;

    impl NetworkModel for Flat {
        fn id(&self) -> NetworkId {
            NetworkId::AsicHt
        }
        fn bandwidth_mib_s(&self) -> f64 {
            2884.0
        }
        fn one_way(&self, bytes: u64) -> SimTime {
            self.bulk_transfer(bytes)
        }
    }

    #[test]
    fn bulk_transfer_reproduces_table5_aht_column() {
        // Table V: A-HT, 64 MB -> 22.2 ms; 1296 MB -> 449.4 ms.
        let t = Flat.bulk_transfer(64 << 20);
        assert!((t.as_millis_f64() - 22.2).abs() < 0.05, "{t:?}");
        let t = Flat.bulk_transfer(1296 << 20);
        assert!((t.as_millis_f64() - 449.4).abs() < 0.1, "{t:?}");
    }

    #[test]
    fn app_transfer_defaults_to_one_way() {
        assert_eq!(Flat.app_transfer(1 << 20), Flat.one_way(1 << 20));
    }

    #[test]
    fn round_trip_is_both_directions() {
        assert_eq!(
            Flat.round_trip(1 << 20, 1 << 10),
            Flat.app_transfer(1 << 20) + Flat.app_transfer(1 << 10)
        );
    }
}
