//! Interconnect models for the rCUDA performance study.
//!
//! The paper characterizes two physical networks with ping-pong tests
//! (Figures 3 and 4) and projects onto five more from published effective
//! bandwidths (§VI-A). This crate reproduces all seven as [`NetworkModel`]
//! implementations:
//!
//! | id | network | effective one-way bandwidth |
//! |----|---------|------------------------------|
//! | `GigaE`   | 1 Gbps Ethernet (TCP, Nagle off)    | 112.4 MiB/s |
//! | `Ib40G`   | 40 Gbps InfiniBand                  | 1367.1 MiB/s |
//! | `TenGigE` | 10-Gigabit iWARP Ethernet           | 880 MiB/s |
//! | `TenGigIb`| 10 Gbps InfiniBand                  | 970 MiB/s |
//! | `Myri10G` | Myrinet-10G                         | 750 MiB/s |
//! | `FpgaHt`  | HyperTransport over FPGA            | 1442 MiB/s |
//! | `AsicHt`  | HyperTransport over ASIC            | 2884 MiB/s |
//!
//! (The paper writes "MB"; its arithmetic — e.g. Table III's 64 MB for a
//! 4·4096² byte matrix, 569.4 ms at 112.4 MB/s — is mebibyte-consistent, so
//! bandwidths here are MiB/s.)
//!
//! Each model exposes three views of the network:
//!
//! * [`NetworkModel::one_way`] — ping-pong end-to-end latency for a payload,
//!   the quantity plotted in Figures 3–4;
//! * [`NetworkModel::bulk_transfer`] — the paper's Tables III/V arithmetic,
//!   `payload / effective_bandwidth`;
//! * [`NetworkModel::app_transfer`] — what an application-level bulk copy
//!   actually costs; for GigaE this includes the TCP-window distortion the
//!   paper blames for its FFT estimation errors (§V).

pub mod compress;
pub mod contention;
pub mod gige;
pub mod hol;
pub mod hpc;
pub mod ib40g;
pub mod id;
pub mod jitter;
pub mod model;
pub mod piecewise;
pub mod pingpong;
pub mod regression;
pub mod topology;

pub use compress::{Compressibility, CompressionModel};
pub use contention::SharedLink;
pub use gige::GigaEModel;
pub use hol::HolModel;
pub use hpc::BandwidthModel;
pub use ib40g::Ib40GModel;
pub use id::NetworkId;
pub use jitter::JitterModel;
pub use model::NetworkModel;
pub use piecewise::PiecewiseLinear;
pub use pingpong::{PingPong, SweepPoint};
pub use regression::{linear_fit, LinearFit};
pub use topology::{Topology, TopologyNetwork};
