//! Wire-compression term for the §V transfer model.
//!
//! The data plane can LZ4-compress bulk payloads before they hit the link
//! (see `rcuda-proto::codec`). For the analytic model this turns the paper's
//! `payload / bandwidth` arithmetic into a three-stage pipeline cost:
//!
//! ```text
//! t_eff(bytes) = bytes / compress_bw           (encode on the client CPU)
//!              + net.bulk_transfer(bytes · r)  (fewer bytes on the wire)
//!              + bytes / decompress_bw         (decode on the server CPU)
//! ```
//!
//! where `r` is the achieved compression ratio (`encoded / raw`, 1.0 =
//! incompressible). Compression pays off exactly when the wire time saved
//! exceeds the codec time added — the same break-even inequality the
//! adaptive codec evaluates online per payload, so [`adaptive_transfer`]
//! (take the cheaper of raw and compressed, like the runtime policy does)
//! is the term the compressibility-axis projections use.
//!
//! The three [`Compressibility`] scenarios bound the study: dense random
//! matrices (the paper's MM/FFT inputs — incompressible), sparse/zero-heavy
//! buffers (iterative solvers, padded tensors), and structured data with
//! repeated records in between.
//!
//! [`adaptive_transfer`]: CompressionModel::adaptive_transfer

use rcuda_core::SimTime;
use serde::{Deserialize, Serialize};

use crate::model::NetworkModel;

/// Calibrated single-core LZ4 block-encode throughput, MiB/s.
///
/// Documented assumption (DESIGN.md §4k): the vendored greedy-match encoder
/// sustains several hundred MiB/s on commodity 2011-class cores; we use a
/// conservative figure so the model never over-promises on slow networks.
pub const LZ4_COMPRESS_MIB_S: f64 = 700.0;

/// Calibrated LZ4 block-decode throughput, MiB/s (decode is branch-light
/// copying and runs ~3× faster than encode).
pub const LZ4_DECOMPRESS_MIB_S: f64 = 2100.0;

/// Payload compressibility scenarios for the projection tables.
///
/// Ratios are `encoded / raw` as achieved by the vendored LZ4 block codec
/// on representative buffers (the bench smoke regenerates them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compressibility {
    /// Dense random floats — the paper's actual MM/FFT inputs. LZ4 finds no
    /// matches; the adaptive codec declines and the wire sees raw bytes.
    DenseRandom,
    /// Zero-heavy / sparse buffers (≥90% runs): ratio ≈ 0.1.
    Sparse,
    /// Structured records with repeated fields: ratio ≈ 0.45.
    Structured,
}

impl Compressibility {
    /// All scenarios, table-column order.
    pub const ALL: [Compressibility; 3] = [
        Compressibility::DenseRandom,
        Compressibility::Sparse,
        Compressibility::Structured,
    ];

    /// Achieved compression ratio (`encoded / raw`).
    pub const fn ratio(self) -> f64 {
        match self {
            Compressibility::DenseRandom => 1.0,
            Compressibility::Sparse => 0.1,
            Compressibility::Structured => 0.45,
        }
    }

    /// Column label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            Compressibility::DenseRandom => "dense",
            Compressibility::Sparse => "sparse",
            Compressibility::Structured => "struct",
        }
    }

    /// The compression model for this scenario with the calibrated LZ4
    /// throughputs.
    pub fn model(self) -> CompressionModel {
        CompressionModel::new(self.ratio(), LZ4_COMPRESS_MIB_S, LZ4_DECOMPRESS_MIB_S)
    }
}

/// Analytic cost model for wire compression on a given link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionModel {
    /// Achieved ratio, `encoded / raw` in (0, 1].
    pub ratio: f64,
    /// Encoder throughput over *raw* bytes, MiB/s.
    pub compress_mib_s: f64,
    /// Decoder throughput over *raw* (output) bytes, MiB/s.
    pub decompress_mib_s: f64,
}

impl CompressionModel {
    /// Build a model; panics on non-physical parameters.
    pub fn new(ratio: f64, compress_mib_s: f64, decompress_mib_s: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio} not in (0, 1]");
        assert!(compress_mib_s > 0.0);
        assert!(decompress_mib_s > 0.0);
        CompressionModel {
            ratio,
            compress_mib_s,
            decompress_mib_s,
        }
    }

    /// Codec time (encode + decode) for `bytes` raw bytes, independent of
    /// the network.
    pub fn codec_time(&self, bytes: u64) -> SimTime {
        let mib = bytes as f64 / (1u64 << 20) as f64;
        SimTime::from_secs_f64(mib / self.compress_mib_s + mib / self.decompress_mib_s)
    }

    /// Bulk-transfer time with compression forced on (`CodecMode::Always`):
    /// encode, ship `bytes · ratio`, decode.
    pub fn effective_transfer(&self, net: &dyn NetworkModel, bytes: u64) -> SimTime {
        let wire = (bytes as f64 * self.ratio).ceil() as u64;
        self.codec_time(bytes) + net.bulk_transfer(wire)
    }

    /// Bulk-transfer time under the adaptive policy: the codec compresses
    /// only when it wins, so the cost is the cheaper of raw and compressed.
    pub fn adaptive_transfer(&self, net: &dyn NetworkModel, bytes: u64) -> SimTime {
        self.effective_transfer(net, bytes)
            .min(net.bulk_transfer(bytes))
    }

    /// Whether compression beats the raw wire on this link. Independent of
    /// payload size because every term is linear in `bytes`:
    /// `(1 - r)/net_bw > 1/comp_bw + 1/decomp_bw`.
    pub fn pays_off(&self, net: &dyn NetworkModel) -> bool {
        (1.0 - self.ratio) / net.bandwidth_mib_s()
            > 1.0 / self.compress_mib_s + 1.0 / self.decompress_mib_s
    }

    /// Effective goodput of the adaptive data plane in MiB of *raw* payload
    /// per second — the figure the bench smoke gates on.
    pub fn effective_bandwidth_mib_s(&self, net: &dyn NetworkModel) -> f64 {
        let bytes = 1u64 << 20;
        1.0 / self.adaptive_transfer(net, bytes).as_secs_f64()
    }

    /// Speedup of the adaptive data plane over the raw wire (≥ 1.0).
    pub fn speedup(&self, net: &dyn NetworkModel) -> f64 {
        let bytes = 1u64 << 20;
        net.bulk_transfer(bytes).as_secs_f64() / self.adaptive_transfer(net, bytes).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NetworkId;

    #[test]
    fn incompressible_adaptive_matches_raw_wire() {
        // Dense random data: the adaptive policy declines, so the model must
        // reduce exactly to the paper's payload/bandwidth arithmetic.
        let m = Compressibility::DenseRandom.model();
        for id in NetworkId::ALL {
            let net = id.model();
            let raw = net.bulk_transfer(64 << 20);
            assert_eq!(m.adaptive_transfer(net.as_ref(), 64 << 20), raw, "{id}");
            assert!(!m.pays_off(net.as_ref()), "{id}");
        }
    }

    #[test]
    fn sparse_pays_off_on_gige_but_not_on_asic_ht() {
        // GigaE at 112.4 MiB/s: shipping 10× fewer bytes dwarfs the codec
        // cost. A-HT at 2884 MiB/s: the wire is already faster than the
        // encoder, so compression can only lose.
        let m = Compressibility::Sparse.model();
        let gige = NetworkId::GigaE.model();
        let aht = NetworkId::AsicHt.model();
        assert!(m.pays_off(gige.as_ref()));
        assert!(!m.pays_off(aht.as_ref()));
        assert!(
            m.speedup(gige.as_ref()) > 1.5,
            "{}",
            m.speedup(gige.as_ref())
        );
        assert_eq!(m.speedup(aht.as_ref()), 1.0);
    }

    #[test]
    fn effective_transfer_sums_three_stages() {
        let m = CompressionModel::new(0.5, 1000.0, 2000.0);
        let net = NetworkId::GigaE.model();
        let bytes = 1u64 << 20; // 1 MiB
        let t = m.effective_transfer(net.as_ref(), bytes).as_secs_f64();
        let expect = 1.0 / 1000.0 + 1.0 / 2000.0 + net.bulk_transfer(bytes / 2).as_secs_f64();
        assert!((t - expect).abs() < 1e-12, "{t} vs {expect}");
    }

    #[test]
    fn pays_off_matches_break_even_algebra() {
        // Construct a link exactly at break-even and nudge either side.
        let m = CompressionModel::new(0.5, 1000.0, 1000.0);
        // Break-even: (1 - 0.5)/bw = 2/1000  =>  bw = 250 MiB/s.
        let slower = crate::hpc::BandwidthModel::custom(NetworkId::TenGigE, 249.0, 0.0);
        let faster = crate::hpc::BandwidthModel::custom(NetworkId::TenGigE, 251.0, 0.0);
        assert!(m.pays_off(&slower));
        assert!(!m.pays_off(&faster));
    }

    #[test]
    fn gige_sparse_headline_goodput() {
        // The acceptance gate's analytic twin: sparse 1 MiB payloads over
        // GigaE must exceed 1.5× the raw link through the adaptive plane.
        let m = Compressibility::Sparse.model();
        let net = NetworkId::GigaE.model();
        let eff = m.effective_bandwidth_mib_s(net.as_ref());
        assert!(eff > 1.5 * 112.4, "effective {eff} MiB/s");
    }

    #[test]
    fn scenario_catalog_is_consistent() {
        assert_eq!(Compressibility::ALL.len(), 3);
        for c in Compressibility::ALL {
            assert!(c.ratio() > 0.0 && c.ratio() <= 1.0);
            assert_eq!(c.model().ratio, c.ratio());
        }
        assert_eq!(Compressibility::DenseRandom.ratio(), 1.0);
    }
}
