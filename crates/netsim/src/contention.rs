//! Link sharing under multi-client contention.
//!
//! The paper leaves "potential network contention caused by multiple
//! applications running in a cluster featuring several GPGPU servers" to
//! future work (§II). We model the first-order effect: when `k` bulk flows
//! cross the same server link simultaneously, each sees `1/k` of the
//! effective bandwidth (max-min fair share), while per-message base latency
//! is unaffected. The `cluster_share` example and the contention ablation
//! bench build on this.

use parking_lot::Mutex;
use rcuda_core::SimTime;
use std::sync::Arc;

use crate::model::NetworkModel;

/// A network link shared by a varying number of concurrent bulk flows.
pub struct SharedLink {
    inner: Arc<dyn NetworkModel>,
    active_flows: Mutex<u32>,
}

impl SharedLink {
    pub fn new(inner: Arc<dyn NetworkModel>) -> Self {
        SharedLink {
            inner,
            active_flows: Mutex::new(0),
        }
    }

    /// Current number of registered flows.
    pub fn flows(&self) -> u32 {
        *self.active_flows.lock()
    }

    /// Register a flow; returns a guard that deregisters on drop.
    pub fn join(self: &Arc<Self>) -> FlowGuard {
        *self.active_flows.lock() += 1;
        FlowGuard {
            link: Arc::clone(self),
        }
    }

    /// Time for a bulk transfer of `bytes` given the *current* contention.
    /// With zero or one registered flows this equals the underlying model's
    /// application-transfer time.
    pub fn contended_transfer(&self, bytes: u64) -> SimTime {
        let flows = self.flows().max(1) as u64;
        let base = self.inner.app_transfer(bytes);
        SimTime::from_nanos(base.as_nanos() * flows)
    }

    /// Deterministic what-if: transfer time under exactly `flows` flows.
    pub fn transfer_with_flows(&self, bytes: u64, flows: u32) -> SimTime {
        let base = self.inner.app_transfer(bytes);
        SimTime::from_nanos(base.as_nanos() * flows.max(1) as u64)
    }

    /// The underlying uncontended model.
    pub fn network(&self) -> &dyn NetworkModel {
        &*self.inner
    }
}

/// Registration of one active flow on a [`SharedLink`].
pub struct FlowGuard {
    link: Arc<SharedLink>,
}

impl Drop for FlowGuard {
    fn drop(&mut self) {
        let mut flows = self.link.active_flows.lock();
        debug_assert!(*flows > 0);
        *flows = flows.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gige::GigaEModel;

    fn link() -> Arc<SharedLink> {
        Arc::new(SharedLink::new(Arc::new(GigaEModel::new())))
    }

    #[test]
    fn single_flow_matches_uncontended() {
        let l = link();
        let _g = l.join();
        assert_eq!(
            l.contended_transfer(64 << 20),
            l.network().app_transfer(64 << 20)
        );
    }

    #[test]
    fn fair_share_scales_linearly() {
        let l = link();
        let t1 = l.transfer_with_flows(64 << 20, 1);
        let t4 = l.transfer_with_flows(64 << 20, 4);
        assert_eq!(t4.as_nanos(), t1.as_nanos() * 4);
    }

    #[test]
    fn guards_track_membership() {
        let l = link();
        assert_eq!(l.flows(), 0);
        let g1 = l.join();
        let g2 = l.join();
        assert_eq!(l.flows(), 2);
        drop(g1);
        assert_eq!(l.flows(), 1);
        drop(g2);
        assert_eq!(l.flows(), 0);
    }

    #[test]
    fn zero_flows_behaves_like_one() {
        let l = link();
        assert_eq!(
            l.contended_transfer(1 << 20),
            l.transfer_with_flows(1 << 20, 1)
        );
    }
}
