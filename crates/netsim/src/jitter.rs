//! Measurement-noise model for ping-pong experiments.
//!
//! The paper reports the variability of its latency measurements: on GigaE a
//! maximum standard deviation of 22.7 µs for small payloads and 2.1 ms for
//! large ones; on 40GI, 1.1 µs and 4.8 ms (§IV-A). We reproduce that
//! variability with additive, approximately normal noise (Irwin–Hall sum of
//! twelve uniforms — no extra dependency needed) so the ping-pong harness
//! can exercise the paper's averaging/minimum reduction strategies.

use rand::Rng;
use rcuda_core::SimTime;

use crate::id::NetworkId;

/// Payload size separating the "small" and "large" noise regimes.
const SMALL_LARGE_BOUNDARY_BYTES: u64 = 1 << 20;

/// Additive noise with payload-dependent scale.
#[derive(Debug, Clone, Copy)]
pub struct JitterModel {
    /// Noise standard deviation for sub-MiB payloads, µs.
    pub small_sigma_us: f64,
    /// Noise standard deviation for MiB-scale payloads, µs.
    pub large_sigma_us: f64,
}

impl JitterModel {
    /// Noise scales matching the paper's reported deviations. The paper
    /// quotes *maximum* standard deviations; we use roughly a third of each
    /// as the typical per-sample sigma.
    pub fn for_network(id: NetworkId) -> Self {
        match id {
            NetworkId::GigaE => JitterModel {
                small_sigma_us: 7.0,
                large_sigma_us: 700.0,
            },
            NetworkId::Ib40G => JitterModel {
                small_sigma_us: 0.4,
                large_sigma_us: 1600.0,
            },
            // Projected networks: modest, technology-flavored noise.
            NetworkId::TenGigE => JitterModel {
                small_sigma_us: 2.0,
                large_sigma_us: 300.0,
            },
            NetworkId::TenGigIb | NetworkId::Myri10G => JitterModel {
                small_sigma_us: 0.5,
                large_sigma_us: 200.0,
            },
            NetworkId::FpgaHt | NetworkId::AsicHt => JitterModel {
                small_sigma_us: 0.1,
                large_sigma_us: 50.0,
            },
        }
    }

    /// A noiseless model (deterministic sweeps).
    pub fn none() -> Self {
        JitterModel {
            small_sigma_us: 0.0,
            large_sigma_us: 0.0,
        }
    }

    /// Standard deviation applicable to a payload of `bytes`.
    pub fn sigma_us(&self, bytes: u64) -> f64 {
        if bytes < SMALL_LARGE_BOUNDARY_BYTES {
            self.small_sigma_us
        } else {
            self.large_sigma_us
        }
    }

    /// Add noise to a base latency.
    ///
    /// The noise is regime-matched to the paper's reduction strategy:
    /// * **small payloads** — symmetric (mean-zero) noise, so the paper's
    ///   average-of-250 recovers the base curve;
    /// * **large payloads** — one-sided delay noise (half-normal), as real
    ///   bulk transfers can only be slowed down by cross-traffic and
    ///   scheduling; the paper's minimum-of-100 then recovers the base.
    ///
    /// Small-payload noise never drives the result below 60% of the base (a
    /// network cannot be arbitrarily faster than its physics).
    pub fn perturb<R: Rng>(&self, rng: &mut R, bytes: u64, base: SimTime) -> SimTime {
        let sigma = self.sigma_us(bytes);
        if sigma == 0.0 {
            return base;
        }
        let base_us = base.as_micros_f64();
        let noise_us = if bytes < SMALL_LARGE_BOUNDARY_BYTES {
            standard_normal(rng) * sigma
        } else {
            standard_normal(rng).abs() * sigma
        };
        SimTime::from_micros_f64((base_us + noise_us).max(base_us * 0.6))
    }
}

/// Approximate standard normal via the Irwin–Hall construction: the sum of
/// twelve U(0,1) variables has mean 6 and variance 1.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    sum - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn noiseless_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let j = JitterModel::none();
        let base = SimTime::from_micros_f64(22.2);
        assert_eq!(j.perturb(&mut rng, 8, base), base);
    }

    #[test]
    fn regime_selects_sigma() {
        let j = JitterModel::for_network(NetworkId::GigaE);
        assert_eq!(j.sigma_us(100), 7.0);
        assert_eq!(j.sigma_us(8 << 20), 700.0);
    }

    #[test]
    fn perturbation_stays_near_base() {
        let mut rng = StdRng::seed_from_u64(42);
        let j = JitterModel::for_network(NetworkId::GigaE);
        let base = SimTime::from_micros_f64(22.2);
        for _ in 0..1000 {
            let t = j.perturb(&mut rng, 8, base).as_micros_f64();
            assert!(t >= 22.2 * 0.6);
            assert!(t < 22.2 + 6.0 * 7.0 + 1.0, "{t}");
        }
    }

    #[test]
    fn sample_mean_converges_to_base() {
        // The paper averages 250 small-payload repetitions; the estimator
        // must be unbiased for that to recover the anchor values.
        let mut rng = StdRng::seed_from_u64(3);
        let j = JitterModel::for_network(NetworkId::GigaE);
        let base = SimTime::from_micros_f64(100.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| j.perturb(&mut rng, 8, base).as_micros_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }
}
