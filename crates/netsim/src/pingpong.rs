//! The ping-pong latency characterization of §IV-A (Figures 3 and 4).
//!
//! The paper measures end-to-end latency with "a customized ping-pong test":
//! for small payloads it reports the **average of 250 executions**, for
//! large payloads the **minimum of 100 executions**, then fits the linear
//! models `f`/`g` on the large-payload series. This module reproduces that
//! procedure against any [`NetworkModel`] + [`JitterModel`] pair.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rcuda_core::SimTime;
use serde::Serialize;

use crate::jitter::JitterModel;
use crate::model::NetworkModel;
use crate::regression::{linear_fit, LinearFit};

/// Repetitions for the small-payload sweep (paper: 250).
pub const SMALL_REPS: usize = 250;

/// Repetitions for the large-payload sweep (paper: 100).
pub const LARGE_REPS: usize = 100;

/// One point of a latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SweepPoint {
    /// Message payload, bytes.
    pub payload: u64,
    /// Reduced one-way latency (average for small, minimum for large).
    pub latency: SimTime,
    /// Sample standard deviation across repetitions, µs.
    pub stddev_us: f64,
}

/// Ping-pong test harness.
pub struct PingPong<'a> {
    net: &'a dyn NetworkModel,
    jitter: JitterModel,
    seed: u64,
}

impl<'a> PingPong<'a> {
    /// Harness with the network's catalog jitter.
    pub fn new(net: &'a dyn NetworkModel, seed: u64) -> Self {
        PingPong {
            jitter: JitterModel::for_network(net.id()),
            net,
            seed,
        }
    }

    /// Harness with explicit jitter (e.g. [`JitterModel::none`]).
    pub fn with_jitter(net: &'a dyn NetworkModel, jitter: JitterModel, seed: u64) -> Self {
        PingPong { net, jitter, seed }
    }

    /// The payload grid of the Figures 3/4 left-hand plots: 4 B to 64 KiB.
    pub fn default_small_payloads() -> Vec<u64> {
        let mut v = vec![4, 8, 12, 16, 20, 32, 52, 58, 64, 128, 256, 512];
        let mut p = 1024u64;
        while p <= 64 * 1024 {
            v.push(p);
            p *= 2;
        }
        v
    }

    /// The payload grid of the Figures 3/4 right-hand plots: 1–64 MiB.
    pub fn default_large_payloads() -> Vec<u64> {
        (1..=16).map(|i| (i * 4) << 20).collect()
    }

    /// One round trip: payload out, payload back, with independent noise on
    /// each leg. The reported latency is round-trip / 2, the paper's
    /// convention for extracting one-way numbers.
    fn one_way_sample(&self, rng: &mut StdRng, payload: u64) -> SimTime {
        let base = self.net.one_way(payload);
        let out = self.jitter.perturb(rng, payload, base);
        let back = self.jitter.perturb(rng, payload, base);
        SimTime::from_nanos((out.as_nanos() + back.as_nanos()) / 2)
    }

    fn sweep(&self, payloads: &[u64], reps: usize, reduce_min: bool) -> Vec<SweepPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        payloads
            .iter()
            .map(|&payload| {
                let samples: Vec<f64> = (0..reps)
                    .map(|_| self.one_way_sample(&mut rng, payload).as_micros_f64())
                    .collect();
                let mean = samples.iter().sum::<f64>() / reps as f64;
                let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / reps as f64;
                let reduced = if reduce_min {
                    samples.iter().cloned().fold(f64::INFINITY, f64::min)
                } else {
                    mean
                };
                SweepPoint {
                    payload,
                    latency: SimTime::from_micros_f64(reduced),
                    stddev_us: var.sqrt(),
                }
            })
            .collect()
    }

    /// Small-payload sweep: average of `reps` (paper: 250) per point.
    pub fn small_sweep(&self, payloads: &[u64], reps: usize) -> Vec<SweepPoint> {
        self.sweep(payloads, reps, false)
    }

    /// Large-payload sweep: minimum of `reps` (paper: 100) per point.
    pub fn large_sweep(&self, payloads: &[u64], reps: usize) -> Vec<SweepPoint> {
        self.sweep(payloads, reps, true)
    }

    /// Fit the large-payload linear model (latency in ms vs payload in MiB)
    /// — the procedure that produced the paper's `f` and `g`.
    pub fn fit_large(&self) -> LinearFit {
        let pts = self.large_sweep(&Self::default_large_payloads(), LARGE_REPS);
        let samples: Vec<(f64, f64)> = pts
            .iter()
            .map(|p| {
                (
                    p.payload as f64 / (1u64 << 20) as f64,
                    p.latency.as_millis_f64(),
                )
            })
            .collect();
        linear_fit(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gige::GigaEModel;
    use crate::ib40g::Ib40GModel;

    #[test]
    fn noiseless_small_sweep_returns_curve_values() {
        let net = GigaEModel::new();
        let pp = PingPong::with_jitter(&net, JitterModel::none(), 1);
        let pts = pp.small_sweep(&[8, 20, 52], 10);
        assert!((pts[0].latency.as_micros_f64() - 22.2).abs() < 0.05);
        assert!((pts[1].latency.as_micros_f64() - 22.4).abs() < 0.05);
        assert!((pts[2].latency.as_micros_f64() - 23.1).abs() < 0.05);
        assert!(pts.iter().all(|p| p.stddev_us < 1e-6));
    }

    #[test]
    fn gige_fit_recovers_f() {
        // With noise and min-of-100 reduction, the fit must still land on
        // f(n) = 8.9n − 0.3 (correlation "1.0" as the paper prints it).
        let net = GigaEModel::new();
        let fit = PingPong::new(&net, 42).fit_large();
        assert!((fit.slope - 8.9).abs() < 0.05, "slope {}", fit.slope);
        assert!(
            (fit.intercept - (-0.3)).abs() < 1.5,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.correlation > 0.9999, "corr {}", fit.correlation);
    }

    #[test]
    fn ib_fit_recovers_g() {
        let net = Ib40GModel::new();
        let fit = PingPong::new(&net, 42).fit_large();
        assert!((fit.slope - 0.7).abs() < 0.02, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 2.8).abs() < 1.5,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.correlation > 0.999, "corr {}", fit.correlation);
    }

    #[test]
    fn sweeps_are_deterministic_for_a_seed() {
        let net = GigaEModel::new();
        let a = PingPong::new(&net, 9).small_sweep(&[64, 1024], 50);
        let b = PingPong::new(&net, 9).small_sweep(&[64, 1024], 50);
        assert_eq!(a, b);
        let c = PingPong::new(&net, 10).small_sweep(&[64, 1024], 50);
        assert_ne!(a, c);
    }

    #[test]
    fn observed_stddev_within_paper_bounds() {
        // Paper: max stddev 22.7 µs (GigaE small), 2.1 ms (GigaE large).
        let net = GigaEModel::new();
        let pp = PingPong::new(&net, 7);
        let small = pp.small_sweep(&PingPong::default_small_payloads(), SMALL_REPS);
        assert!(small.iter().all(|p| p.stddev_us < 22.7), "small stddev");
        let large = pp.large_sweep(&PingPong::default_large_payloads(), LARGE_REPS);
        assert!(large.iter().all(|p| p.stddev_us < 2_100.0), "large stddev");
    }

    #[test]
    fn default_grids_span_the_figures() {
        let small = PingPong::default_small_payloads();
        assert_eq!(*small.first().unwrap(), 4);
        assert_eq!(*small.last().unwrap(), 64 * 1024);
        let large = PingPong::default_large_payloads();
        assert_eq!(*large.first().unwrap(), 4 << 20);
        assert_eq!(*large.last().unwrap(), 64 << 20);
    }
}
