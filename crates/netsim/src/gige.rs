//! The measured 1 Gbps Ethernet (GigaE) model.
//!
//! Reproduces the paper's §IV-A characterization:
//!
//! * **Small payloads** (Fig. 3 left): a non-linear response captured as a
//!   piecewise-linear curve through the latencies the paper reports in
//!   Table II (22.2 µs for ≤8 B messages, 22.4 µs at 20 B, 23.1 µs at 52 B,
//!   23.2 µs at 58 B, 233.9 µs for the 7 856 B FFT module, 338.7 µs for the
//!   21 490 B MM module).
//! * **Large payloads** (Fig. 3 right): the linear regression
//!   `f(n) = 8.9·n − 0.3` ms for `n` MiB, correlation 1.0.
//! * **TCP-window distortion**: rCUDA application transfers experience
//!   slowdowns beyond the ping-pong model for moderate payloads because the
//!   TCP window never fully opens (§V). We model the relative excess as
//!   `p(d) = α/d + β` for a `d`-MiB copy; the constants are least-squares
//!   fitted to the per-size residuals derivable from the paper's Tables III
//!   and IV (the fit itself is re-run and asserted by `rcuda-model`'s
//!   calibration tests).

use rcuda_core::SimTime;

use crate::id::NetworkId;
use crate::model::NetworkModel;
use crate::piecewise::PiecewiseLinear;

/// Slope of `f(n)` in ms per MiB.
pub const F_SLOPE_MS_PER_MIB: f64 = 8.9;

/// Intercept of `f(n)` in ms.
pub const F_INTERCEPT_MS: f64 = -0.3;

/// TCP-window distortion `p(d) = α/d + β`, `d` in MiB per copy:
/// α, fitted against the paper's GigaE residuals (see `rcuda-model::calib`).
pub const TCP_DISTORTION_ALPHA: f64 = 3.48;

/// TCP-window distortion: β (see [`TCP_DISTORTION_ALPHA`]).
pub const TCP_DISTORTION_BETA: f64 = -0.013;

/// Payload size where the linear regime `f(n)` takes over from the
/// measured small-packet curve.
const LINEAR_REGIME_BYTES: u64 = 1 << 20;

/// Nagle + delayed-ACK stall for sub-MSS messages when the congestion
/// control the paper disables is left on (§IV-A cites Nagle's algorithm as
/// the source of "unnecessary delays"). 40 ms is the classic Linux
/// delayed-ACK timer that Nagle ends up waiting for.
const NAGLE_STALL_US: f64 = 40_000.0;

/// Ethernet MSS: messages at or below this can stall in Nagle's buffer.
const MSS_BYTES: u64 = 1460;

/// 1 Gbps Ethernet over TCP.
#[derive(Debug, Clone)]
pub struct GigaEModel {
    small: PiecewiseLinear,
    /// Whether Nagle's algorithm is left enabled (ablation; the paper — and
    /// our default — disables it).
    nagle: bool,
    distortion_alpha: f64,
    distortion_beta: f64,
}

impl GigaEModel {
    /// The paper's configuration: Nagle disabled.
    pub fn new() -> Self {
        // Anchors from Table II's measured control-message times, bridged to
        // the linear regime at 1 MiB where f(1) = 8.6 ms.
        let f_at_regime_us = (F_SLOPE_MS_PER_MIB + F_INTERCEPT_MS) * 1e3;
        let small = PiecewiseLinear::new(
            &[
                (8, 22.2),
                (20, 22.4),
                (52, 23.1),
                (58, 23.2),
                (7_856, 233.9),
                (21_490, 338.7),
                (LINEAR_REGIME_BYTES, f_at_regime_us),
            ],
            // Tail slope never used: eval beyond 1 MiB goes through f().
            0.0,
        );
        GigaEModel {
            small,
            nagle: false,
            distortion_alpha: TCP_DISTORTION_ALPHA,
            distortion_beta: TCP_DISTORTION_BETA,
        }
    }

    /// Ablation: leave Nagle's algorithm enabled.
    pub fn with_nagle() -> Self {
        GigaEModel {
            nagle: true,
            ..GigaEModel::new()
        }
    }

    /// Override the TCP distortion coefficients (used by calibration tests).
    pub fn with_distortion(alpha: f64, beta: f64) -> Self {
        GigaEModel {
            distortion_alpha: alpha,
            distortion_beta: beta,
            ..GigaEModel::new()
        }
    }

    /// The paper's large-payload regression `f(n)` in ms, `n` in MiB.
    pub fn f_ms(n_mib: f64) -> f64 {
        F_SLOPE_MS_PER_MIB * n_mib + F_INTERCEPT_MS
    }

    /// Relative excess of application transfers over the bandwidth model for
    /// a copy of `d` MiB.
    pub fn distortion(&self, d_mib: f64) -> f64 {
        (self.distortion_alpha / d_mib + self.distortion_beta).max(-0.05)
    }
}

impl Default for GigaEModel {
    fn default() -> Self {
        GigaEModel::new()
    }
}

impl NetworkModel for GigaEModel {
    fn id(&self) -> NetworkId {
        NetworkId::GigaE
    }

    fn bandwidth_mib_s(&self) -> f64 {
        NetworkId::GigaE.bandwidth_mib_s()
    }

    fn one_way(&self, bytes: u64) -> SimTime {
        let nagle_stall = if self.nagle && bytes <= MSS_BYTES {
            NAGLE_STALL_US
        } else {
            0.0
        };
        if bytes >= LINEAR_REGIME_BYTES {
            let n_mib = bytes as f64 / LINEAR_REGIME_BYTES as f64;
            SimTime::from_millis_f64(Self::f_ms(n_mib))
        } else {
            SimTime::from_micros_f64(self.small.eval_us(bytes) + nagle_stall)
        }
    }

    fn app_transfer(&self, bytes: u64) -> SimTime {
        if bytes < LINEAR_REGIME_BYTES {
            return self.one_way(bytes);
        }
        let d_mib = bytes as f64 / LINEAR_REGIME_BYTES as f64;
        let base = self.bulk_transfer(bytes).as_secs_f64();
        SimTime::from_secs_f64(base * (1.0 + self.distortion(d_mib)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_packet_times_match_table2() {
        let g = GigaEModel::new();
        // Table II GigaE column: 8 B -> 22.2 µs, 20 B -> 22.4, 52 -> 23.1,
        // 58 -> 23.2, module sizes 7856 -> 233.9, 21490 -> 338.7.
        for (bytes, us) in [
            (4u64, 22.2),
            (8, 22.2),
            (20, 22.4),
            (52, 23.1),
            (58, 23.2),
            (7_856, 233.9),
            (21_490, 338.7),
        ] {
            let t = g.one_way(bytes).as_micros_f64();
            assert!((t - us).abs() < 0.05, "{bytes} B: {t} vs {us}");
        }
    }

    #[test]
    fn large_payloads_follow_f() {
        let g = GigaEModel::new();
        // Fig. 3 right: f(64) = 569.3 ms.
        let t = g.one_way(64 << 20).as_millis_f64();
        assert!((t - 569.3).abs() < 0.01, "{t}");
        // f(8) = 70.9 ms.
        let t = g.one_way(8 << 20).as_millis_f64();
        assert!((t - 70.9).abs() < 0.01, "{t}");
    }

    #[test]
    fn one_way_is_monotone_across_the_regime_boundary() {
        let g = GigaEModel::new();
        let mut prev = SimTime::ZERO;
        for bytes in [
            1u64,
            8,
            64,
            1024,
            10_000,
            21_490,
            100_000,
            500_000,
            1 << 20,
            (1 << 20) + 1,
            2 << 20,
            64 << 20,
        ] {
            let t = g.one_way(bytes);
            assert!(t >= prev, "non-monotone at {bytes}");
            prev = t;
        }
    }

    #[test]
    fn bulk_transfer_matches_table3() {
        let g = GigaEModel::new();
        // Table III GigaE: 64 MB -> 569.4 ms, 1296 MB -> 11530.2 ms,
        // 8 MB -> 71.2 ms.
        for (mib, ms) in [(64u64, 569.4), (1296, 11_530.2), (8, 71.2)] {
            let t = g.bulk_transfer(mib << 20).as_millis_f64();
            assert!((t - ms).abs() / ms < 2e-3, "{mib} MiB: {t} vs {ms}");
        }
    }

    #[test]
    fn app_transfer_exceeds_model_for_moderate_payloads() {
        let g = GigaEModel::new();
        // An 8 MiB copy (FFT batch 2048) should be ~40% over the bandwidth
        // model — the distortion behind the paper's 34% FFT error.
        let model = g.bulk_transfer(8 << 20).as_secs_f64();
        let actual = g.app_transfer(8 << 20).as_secs_f64();
        let excess = actual / model - 1.0;
        assert!(excess > 0.30 && excess < 0.55, "excess {excess}");
        // ...and nearly gone for a 1 GiB copy.
        let model = g.bulk_transfer(1024 << 20).as_secs_f64();
        let actual = g.app_transfer(1024 << 20).as_secs_f64();
        assert!((actual / model - 1.0).abs() < 0.02);
    }

    #[test]
    fn nagle_ablation_penalizes_small_messages_only() {
        let off = GigaEModel::new();
        let on = GigaEModel::with_nagle();
        let small_off = off.one_way(8).as_micros_f64();
        let small_on = on.one_way(8).as_micros_f64();
        assert!(small_on > small_off + 30_000.0, "Nagle stall missing");
        assert_eq!(on.one_way(64 << 20), off.one_way(64 << 20));
    }
}
