//! Network identifiers and their catalog data.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::gige::GigaEModel;
use crate::hpc::BandwidthModel;
use crate::ib40g::Ib40GModel;
use crate::model::NetworkModel;

/// The seven interconnects of the study.
///
/// ```
/// use rcuda_netsim::{NetworkId, NetworkModel};
///
/// // Table V, MM dim 4096: a 64 MiB copy over ASIC HyperTransport takes
/// // 22.2 ms at the catalog's 2884 MiB/s.
/// let t = NetworkId::AsicHt.model().bulk_transfer(64 << 20);
/// assert!((t.as_millis_f64() - 22.2).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkId {
    /// 1 Gbps Ethernet, TCP with Nagle disabled (measured, §IV-A).
    GigaE,
    /// 40 Gbps InfiniBand (measured, §IV-A).
    Ib40G,
    /// 10-Gigabit iWARP Ethernet, NetEffect NE010e (projected, §VI-A).
    TenGigE,
    /// 10 Gbps InfiniBand, Mellanox MHEA28-XT (projected, §VI-A).
    TenGigIb,
    /// Myrinet-10G, Myri 10G-PCIE-8A-C (projected, §VI-A).
    Myri10G,
    /// HyperTransport high-node-count extension on FPGA (projected, §VI-A).
    FpgaHt,
    /// HyperTransport high-node-count extension on ASIC (projected, §VI-A).
    AsicHt,
}

impl NetworkId {
    /// The two networks the paper measures directly.
    pub const MEASURED: [NetworkId; 2] = [NetworkId::GigaE, NetworkId::Ib40G];

    /// The five target HPC networks of §VI, in Table V/VI column order.
    pub const TARGETS: [NetworkId; 5] = [
        NetworkId::TenGigE,
        NetworkId::TenGigIb,
        NetworkId::Myri10G,
        NetworkId::FpgaHt,
        NetworkId::AsicHt,
    ];

    /// All seven networks.
    pub const ALL: [NetworkId; 7] = [
        NetworkId::GigaE,
        NetworkId::Ib40G,
        NetworkId::TenGigE,
        NetworkId::TenGigIb,
        NetworkId::Myri10G,
        NetworkId::FpgaHt,
        NetworkId::AsicHt,
    ];

    /// The paper's abbreviation for this network.
    pub const fn abbrev(self) -> &'static str {
        match self {
            NetworkId::GigaE => "GigaE",
            NetworkId::Ib40G => "40GI",
            NetworkId::TenGigE => "10GE",
            NetworkId::TenGigIb => "10GI",
            NetworkId::Myri10G => "Myr",
            NetworkId::FpgaHt => "F-HT",
            NetworkId::AsicHt => "A-HT",
        }
    }

    /// Effective one-way bandwidth, MiB/s (paper §IV-A and §VI-A).
    pub const fn bandwidth_mib_s(self) -> f64 {
        match self {
            NetworkId::GigaE => 112.4,
            NetworkId::Ib40G => 1367.1,
            NetworkId::TenGigE => 880.0,
            NetworkId::TenGigIb => 970.0,
            NetworkId::Myri10G => 750.0,
            NetworkId::FpgaHt => 1442.0,
            NetworkId::AsicHt => 2884.0,
        }
    }

    /// Instantiate the full timing model for this network.
    pub fn model(self) -> Box<dyn NetworkModel> {
        match self {
            NetworkId::GigaE => Box::new(GigaEModel::new()),
            NetworkId::Ib40G => Box::new(Ib40GModel::new()),
            other => Box::new(BandwidthModel::for_id(other)),
        }
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidths_match_paper() {
        assert_eq!(NetworkId::GigaE.bandwidth_mib_s(), 112.4);
        assert_eq!(NetworkId::Ib40G.bandwidth_mib_s(), 1367.1);
        assert_eq!(NetworkId::TenGigE.bandwidth_mib_s(), 880.0);
        assert_eq!(NetworkId::TenGigIb.bandwidth_mib_s(), 970.0);
        assert_eq!(NetworkId::Myri10G.bandwidth_mib_s(), 750.0);
        assert_eq!(NetworkId::FpgaHt.bandwidth_mib_s(), 1442.0);
        assert_eq!(NetworkId::AsicHt.bandwidth_mib_s(), 2884.0);
    }

    #[test]
    fn aht_doubles_fht() {
        // §VI-A: "For the A-HT we assume that we will be able to double the
        // bandwidth".
        assert_eq!(
            NetworkId::AsicHt.bandwidth_mib_s(),
            2.0 * NetworkId::FpgaHt.bandwidth_mib_s()
        );
    }

    #[test]
    fn model_ids_are_consistent() {
        for id in NetworkId::ALL {
            let m = id.model();
            assert_eq!(m.id(), id);
            assert_eq!(m.bandwidth_mib_s(), id.bandwidth_mib_s());
            assert_eq!(m.name(), id.abbrev());
        }
    }

    #[test]
    fn catalog_partitions() {
        for id in NetworkId::MEASURED {
            assert!(!NetworkId::TARGETS.contains(&id));
        }
        assert_eq!(
            NetworkId::MEASURED.len() + NetworkId::TARGETS.len(),
            NetworkId::ALL.len()
        );
    }
}
