//! Cluster network topologies — the paper's future work ("we intend to
//! extend our study to analyze the behavior of this proposal over a wide
//! range of applications, cluster configurations, and network topologies",
//! §VII).
//!
//! A [`Topology`] is a weighted graph of hosts and switches. A
//! [`TopologyNetwork`] binds two hosts across it and implements
//! [`NetworkModel`]: a message pays the per-hop switching latencies along
//! the route (cut-through switching: payload serialization is paid once, at
//! the link bandwidth of the underlying technology).

use rcuda_core::SimTime;
use std::collections::{BinaryHeap, HashMap};

use crate::id::NetworkId;
use crate::model::NetworkModel;

/// Node index within a topology.
pub type NodeId = usize;

/// A weighted undirected graph of hosts and switches.
#[derive(Debug, Clone)]
pub struct Topology {
    /// adjacency: node → (neighbor, hop latency µs)
    adj: Vec<Vec<(NodeId, f64)>>,
    /// Which nodes are hosts (can terminate a connection).
    is_host: Vec<bool>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology {
            adj: Vec::new(),
            is_host: Vec::new(),
        }
    }

    /// Add a host node; returns its id.
    pub fn add_host(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.is_host.push(true);
        self.adj.len() - 1
    }

    /// Add a switch node; returns its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.is_host.push(false);
        self.adj.len() - 1
    }

    /// Connect two nodes with a link of `latency_us` per traversal.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency_us: f64) {
        assert!(a < self.adj.len() && b < self.adj.len(), "unknown node");
        assert!(a != b, "no self-links");
        assert!(latency_us >= 0.0);
        self.adj[a].push((b, latency_us));
        self.adj[b].push((a, latency_us));
    }

    pub fn len(&self) -> usize {
        self.adj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Lowest-latency path cost between two nodes (Dijkstra), in µs.
    /// `None` if unreachable.
    pub fn path_latency_us(&self, from: NodeId, to: NodeId) -> Option<f64> {
        assert!(from < self.adj.len() && to < self.adj.len(), "unknown node");
        if from == to {
            return Some(0.0);
        }
        // Dijkstra over f64 weights via an ordered-bits max-heap trick.
        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, NodeId)> = BinaryHeap::new();
        dist.insert(from, 0.0);
        heap.push((std::cmp::Reverse(0), from));
        while let Some((std::cmp::Reverse(dbits), node)) = heap.pop() {
            let d = f64::from_bits(dbits);
            if node == to {
                return Some(d);
            }
            if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            for &(next, w) in &self.adj[node] {
                let nd = d + w;
                if nd < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                    dist.insert(next, nd);
                    // Non-negative f64s order identically to their bit
                    // patterns, so the heap key is just the bits.
                    heap.push((std::cmp::Reverse(nd.to_bits()), next));
                }
            }
        }
        None
    }

    /// Number of links on the lowest-hop route (BFS). `None` if unreachable.
    pub fn hop_count(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut seen = vec![false; self.adj.len()];
        let mut frontier = vec![from];
        seen[from] = true;
        let mut hops = 0;
        while !frontier.is_empty() {
            hops += 1;
            let mut next = Vec::new();
            for &n in &frontier {
                for &(m, _) in &self.adj[n] {
                    if m == to {
                        return Some(hops);
                    }
                    if !seen[m] {
                        seen[m] = true;
                        next.push(m);
                    }
                }
            }
            frontier = next;
        }
        None
    }

    /// A star: `hosts` hosts hanging off one switch, `hop_latency_us` per
    /// link. Returns (topology, host ids).
    pub fn star(hosts: usize, hop_latency_us: f64) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let sw = t.add_switch();
        let ids: Vec<NodeId> = (0..hosts)
            .map(|_| {
                let h = t.add_host();
                t.connect(h, sw, hop_latency_us);
                h
            })
            .collect();
        (t, ids)
    }

    /// A two-level tree: `racks` top-of-rack switches under one core
    /// switch, `hosts_per_rack` hosts per rack. Cross-rack routes traverse
    /// four links. Returns (topology, host ids grouped by rack).
    pub fn two_level(
        racks: usize,
        hosts_per_rack: usize,
        edge_latency_us: f64,
        core_latency_us: f64,
    ) -> (Topology, Vec<Vec<NodeId>>) {
        let mut t = Topology::new();
        let core = t.add_switch();
        let mut groups = Vec::with_capacity(racks);
        for _ in 0..racks {
            let tor = t.add_switch();
            t.connect(tor, core, core_latency_us);
            let hosts: Vec<NodeId> = (0..hosts_per_rack)
                .map(|_| {
                    let h = t.add_host();
                    t.connect(h, tor, edge_latency_us);
                    h
                })
                .collect();
            groups.push(hosts);
        }
        (t, groups)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::new()
    }
}

/// A point-to-point network model across a topology: the technology's link
/// bandwidth plus the route's accumulated switching latency.
pub struct TopologyNetwork {
    technology: Box<dyn NetworkModel>,
    route_latency: SimTime,
}

impl TopologyNetwork {
    /// Bind hosts `from` and `to` of `topo`, carried over `technology`'s
    /// links. Panics if the hosts are not connected.
    pub fn between(
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        technology: NetworkId,
    ) -> TopologyNetwork {
        let us = topo
            .path_latency_us(from, to)
            .expect("hosts must be connected");
        TopologyNetwork {
            technology: technology.model(),
            route_latency: SimTime::from_micros_f64(us),
        }
    }

    /// The route's switching latency (one way).
    pub fn route_latency(&self) -> SimTime {
        self.route_latency
    }
}

impl NetworkModel for TopologyNetwork {
    fn id(&self) -> NetworkId {
        self.technology.id()
    }

    fn bandwidth_mib_s(&self) -> f64 {
        self.technology.bandwidth_mib_s()
    }

    fn one_way(&self, bytes: u64) -> SimTime {
        self.technology.one_way(bytes) + self.route_latency
    }

    fn app_transfer(&self, bytes: u64) -> SimTime {
        self.technology.app_transfer(bytes) + self.route_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_routes_are_two_hops() {
        let (t, hosts) = Topology::star(4, 1.5);
        assert_eq!(t.hop_count(hosts[0], hosts[3]), Some(2));
        assert_eq!(t.path_latency_us(hosts[0], hosts[3]), Some(3.0));
        assert_eq!(t.path_latency_us(hosts[1], hosts[1]), Some(0.0));
    }

    #[test]
    fn two_level_tree_distances() {
        let (t, racks) = Topology::two_level(3, 2, 1.0, 2.0);
        // Same rack: host-tor-host = 2 hops, 2 µs.
        assert_eq!(t.hop_count(racks[0][0], racks[0][1]), Some(2));
        assert_eq!(t.path_latency_us(racks[0][0], racks[0][1]), Some(2.0));
        // Cross rack: host-tor-core-tor-host = 4 hops, 1+2+2+1 = 6 µs.
        assert_eq!(t.hop_count(racks[0][0], racks[2][1]), Some(4));
        assert_eq!(t.path_latency_us(racks[0][0], racks[2][1]), Some(6.0));
    }

    #[test]
    fn dijkstra_prefers_lower_latency_not_fewer_hops() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        let s1 = t.add_switch();
        let s2 = t.add_switch();
        t.connect(a, b, 100.0); // direct but slow
        t.connect(a, s1, 1.0);
        t.connect(s1, s2, 1.0);
        t.connect(s2, b, 1.0);
        assert_eq!(t.path_latency_us(a, b), Some(3.0));
        assert_eq!(
            t.hop_count(a, b),
            Some(1),
            "hop count is still the direct link"
        );
    }

    #[test]
    fn disconnected_hosts_are_unreachable() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        assert_eq!(t.path_latency_us(a, b), None);
        assert_eq!(t.hop_count(a, b), None);
    }

    #[test]
    fn topology_network_adds_route_latency() {
        let (topo, racks) = Topology::two_level(2, 1, 2.0, 5.0);
        let near = TopologyNetwork::between(&topo, racks[0][0], racks[0][0], NetworkId::Ib40G);
        let far = TopologyNetwork::between(&topo, racks[0][0], racks[1][0], NetworkId::Ib40G);
        assert_eq!(near.route_latency(), SimTime::ZERO);
        assert_eq!(far.route_latency(), SimTime::from_micros_f64(14.0));
        let base = NetworkId::Ib40G.model();
        assert_eq!(
            far.one_way(8),
            base.one_way(8) + SimTime::from_micros_f64(14.0)
        );
        // Bulk transfers barely notice switching latency.
        let bulk_far = far.app_transfer(64 << 20).as_secs_f64();
        let bulk_base = base.app_transfer(64 << 20).as_secs_f64();
        assert!((bulk_far - bulk_base) < 20e-6);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn binding_disconnected_hosts_panics() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        TopologyNetwork::between(&t, a, b, NetworkId::GigaE);
    }
}
