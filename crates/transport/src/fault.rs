//! Deterministic fault injection for any [`Transport`].
//!
//! [`FaultInjector`] wraps a transport and perturbs traffic according to a
//! [`FaultPlan`]: a schedule keyed on the *message index* — the number of
//! flushes the wrapper has performed. Because the rCUDA protocol is strictly
//! synchronous (one flush per request, one reply per request), the message
//! index maps one-to-one onto call sites: for a pipeline-disabled matrix
//! multiply, index 0 is initialization, 1–3 the three `cudaMalloc`s, and so
//! on. A plan can therefore say "kill the connection exactly under the
//! second host-to-device copy" and a test can assert the precise error class
//! that must surface.
//!
//! Faults are injected at well-defined points:
//!
//! * **write-side faults** fire when the message at the scheduled index is
//!   flushed — the injector buffers writes itself, so a message can be
//!   swallowed, truncated, or corrupted atomically;
//! * **read-side faults** arm once the request at the scheduled index has
//!   been flushed and fire on the *reply* to that request.
//!
//! The schedule is either hand-written ([`FaultPlan::at`]) or derived from a
//! 64-bit seed ([`FaultPlan::seeded`]) via an inline SplitMix64 generator —
//! the same seed always yields the same faults at the same indices, which is
//! what makes conformance runs reproducible and failures replayable.
//!
//! After a fault kills the connection, the injector reports `BrokenPipe` /
//! `UnexpectedEof` like a real dead socket until [`Transport::reconnect`]
//! succeeds on the inner transport. The message-index counter keeps running
//! across reconnects, so one plan spans the whole session including its
//! recovery traffic.

use std::io::{self, Read, Write};
use std::time::Duration;

use crate::stats::TransportStats;
use crate::Transport;

/// What goes wrong with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The connection dies while the message is being sent: the message is
    /// lost, the flush fails with `BrokenPipe`, and the transport is dead
    /// until reconnected.
    Disconnect,
    /// Only the first `keep` bytes of the message reach the peer before the
    /// connection dies.
    PartialWrite { keep: usize },
    /// Only the first `keep` bytes of the *reply* arrive before the
    /// connection dies.
    PartialRead { keep: usize },
    /// The message vanishes without an error: the send appears to succeed,
    /// the peer never sees it, and the caller's next read hangs until its
    /// deadline. Models a stalled network rather than a broken one.
    Stall,
    /// The byte at `offset` in the outgoing message is XORed with `xor`
    /// (delivery otherwise succeeds).
    CorruptWrite { offset: usize, xor: u8 },
    /// The byte at `offset` in the incoming reply is XORed with `xor`.
    CorruptRead { offset: usize, xor: u8 },
}

impl FaultKind {
    /// Whether this fault leaves the connection dead (requiring a
    /// reconnect before any further traffic).
    pub fn kills_connection(self) -> bool {
        matches!(
            self,
            FaultKind::Disconnect | FaultKind::PartialWrite { .. } | FaultKind::PartialRead { .. }
        )
    }
}

/// One scheduled fault: `kind` strikes the message with index
/// `message_index` (write-side kinds) or its reply (read-side kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    pub message_index: u64,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, ordered by message index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults: the injector becomes a transparent wrapper.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An explicit schedule (sorted internally by message index).
    pub fn new(mut faults: Vec<Fault>) -> FaultPlan {
        faults.sort_by_key(|f| f.message_index);
        FaultPlan { faults }
    }

    /// Convenience: a single fault at `message_index`.
    pub fn at(message_index: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan::new(vec![Fault {
            message_index,
            kind,
        }])
    }

    /// Derive `count` faults over message indices `0..horizon` from a seed.
    /// The same `(seed, horizon, count)` triple always yields the same plan.
    pub fn seeded(seed: u64, horizon: u64, count: usize) -> FaultPlan {
        assert!(horizon > 0, "horizon must be positive");
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let message_index = rng.next() % horizon;
            let kind = match rng.next() % 6 {
                0 => FaultKind::Disconnect,
                1 => FaultKind::PartialWrite {
                    keep: (rng.next() % 8) as usize,
                },
                2 => FaultKind::PartialRead {
                    keep: (rng.next() % 4) as usize,
                },
                3 => FaultKind::Stall,
                4 => FaultKind::CorruptWrite {
                    offset: (rng.next() % 4) as usize,
                    xor: (rng.next() % 255) as u8 + 1,
                },
                _ => FaultKind::CorruptRead {
                    offset: (rng.next() % 4) as usize,
                    xor: (rng.next() % 255) as u8 + 1,
                },
            };
            faults.push(Fault {
                message_index,
                kind,
            });
        }
        FaultPlan::new(faults)
    }

    /// The scheduled faults, in message-index order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn take_write_fault(&mut self, index: u64) -> Option<FaultKind> {
        let pos = self.faults.iter().position(|f| {
            f.message_index == index
                && !matches!(
                    f.kind,
                    FaultKind::PartialRead { .. } | FaultKind::CorruptRead { .. }
                )
        })?;
        Some(self.faults.remove(pos).kind)
    }

    fn take_read_fault(&mut self, index: u64) -> Option<FaultKind> {
        let pos = self.faults.iter().position(|f| {
            f.message_index == index
                && matches!(
                    f.kind,
                    FaultKind::PartialRead { .. } | FaultKind::CorruptRead { .. }
                )
        })?;
        Some(self.faults.remove(pos).kind)
    }
}

/// SplitMix64 — tiny, seedable, good enough to scatter faults. Inlined so
/// the transport crate needs no RNG dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A read-side fault armed against the reply currently in flight.
#[derive(Debug, Clone, Copy)]
enum ArmedRead {
    /// Allow `remaining` more reply bytes, then kill the connection.
    Partial { remaining: usize },
    /// XOR the reply byte at `offset` (counted from the start of the reply).
    Corrupt { offset: usize, xor: u8 },
}

/// A [`Transport`] wrapper that injects the faults of a [`FaultPlan`].
///
/// Generic over the inner transport: tests wrap [`crate::ChannelTransport`]
/// (or [`crate::ReconnectTransport`]) for in-process conformance runs, and
/// the same wrapper drives a real [`crate::TcpTransport`] against a live
/// daemon.
pub struct FaultInjector<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// Messages flushed so far — the plan's index space.
    flushes: u64,
    /// Bytes buffered for the message being assembled.
    out_buf: Vec<u8>,
    /// Connection killed by a fault; cleared by a successful reconnect.
    dead: bool,
    /// Read-side fault armed for the current reply, with progress state.
    armed_read: Option<ArmedRead>,
    /// Bytes already consumed of the reply the armed fault targets.
    reply_pos: usize,
    /// Faults that have actually fired, in order (for deterministic-replay
    /// assertions). Shared so a type-erased session can still observe it.
    fired: FiredFaults,
}

/// A shareable, append-only log of the faults a [`FaultInjector`] has
/// fired. Clones observe the same log, so a session that type-erases its
/// transport can hand the log out before boxing the injector.
#[derive(Clone, Default)]
pub struct FiredFaults(std::sync::Arc<std::sync::Mutex<Vec<Fault>>>);

impl FiredFaults {
    /// The faults fired so far, in firing order.
    pub fn snapshot(&self) -> Vec<Fault> {
        self.0.lock().expect("fired log lock").clone()
    }

    fn push(&self, fault: Fault) {
        self.0.lock().expect("fired log lock").push(fault);
    }
}

impl<T: Transport> FaultInjector<T> {
    pub fn new(inner: T, plan: FaultPlan) -> FaultInjector<T> {
        FaultInjector {
            inner,
            plan,
            flushes: 0,
            out_buf: Vec::new(),
            dead: false,
            armed_read: None,
            reply_pos: 0,
            fired: FiredFaults::default(),
        }
    }

    /// The faults that have fired so far, in firing order.
    pub fn fired(&self) -> Vec<Fault> {
        self.fired.snapshot()
    }

    /// A shared handle onto the fired-fault log (survives boxing the
    /// injector behind `Box<dyn Transport>`).
    pub fn fired_log(&self) -> FiredFaults {
        self.fired.clone()
    }

    /// Messages flushed so far (the next message's index).
    pub fn message_index(&self) -> u64 {
        self.flushes
    }

    /// The inner transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn dead_write_err() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "connection killed by fault")
    }

    fn dead_read_err() -> io::Error {
        io::Error::new(io::ErrorKind::UnexpectedEof, "connection killed by fault")
    }

    fn record(&mut self, index: u64, kind: FaultKind) {
        self.fired.push(Fault {
            message_index: index,
            kind,
        });
    }
}

impl<T: Transport> Read for FaultInjector<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_read_err());
        }
        match self.armed_read {
            Some(ArmedRead::Partial { remaining }) => {
                if remaining == 0 {
                    self.dead = true;
                    self.armed_read = None;
                    return Err(Self::dead_read_err());
                }
                let limit = buf.len().min(remaining);
                let n = self.inner.read(&mut buf[..limit])?;
                self.armed_read = Some(ArmedRead::Partial {
                    remaining: remaining - n,
                });
                self.reply_pos += n;
                Ok(n)
            }
            Some(ArmedRead::Corrupt { offset, xor }) => {
                let n = self.inner.read(buf)?;
                let start = self.reply_pos;
                if offset >= start && offset < start + n {
                    buf[offset - start] ^= xor;
                    self.armed_read = None;
                }
                self.reply_pos += n;
                Ok(n)
            }
            None => self.inner.read(buf),
        }
    }
}

impl<T: Transport> Write for FaultInjector<T> {
    // `write_vectored` deliberately keeps the default implementation: it
    // routes through `write`, so vectored callers see exactly the same
    // per-write fault schedule as plain ones.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_write_err());
        }
        self.out_buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_write_err());
        }
        if self.out_buf.is_empty() {
            return self.inner.flush();
        }
        let index = self.flushes;
        self.flushes += 1;
        let msg = std::mem::take(&mut self.out_buf);

        // Arm any read-side fault scheduled against this message's reply.
        if let Some(kind) = self.plan.take_read_fault(index) {
            self.record(index, kind);
            self.reply_pos = 0;
            self.armed_read = Some(match kind {
                FaultKind::PartialRead { keep } => ArmedRead::Partial { remaining: keep },
                FaultKind::CorruptRead { offset, xor } => ArmedRead::Corrupt { offset, xor },
                _ => unreachable!("take_read_fault returns only read kinds"),
            });
        }

        match self.plan.take_write_fault(index) {
            None => {
                self.inner.write_all(&msg)?;
                self.inner.flush()
            }
            Some(kind) => {
                self.record(index, kind);
                match kind {
                    FaultKind::Disconnect => {
                        self.dead = true;
                        Err(Self::dead_write_err())
                    }
                    FaultKind::PartialWrite { keep } => {
                        let keep = keep.min(msg.len());
                        if keep > 0 {
                            self.inner.write_all(&msg[..keep])?;
                            let _ = self.inner.flush();
                        }
                        self.dead = true;
                        Err(Self::dead_write_err())
                    }
                    FaultKind::Stall => {
                        // The message evaporates; the caller only notices
                        // when its reply never comes.
                        Ok(())
                    }
                    FaultKind::CorruptWrite { offset, xor } => {
                        let mut msg = msg;
                        if let Some(b) = msg.get_mut(offset) {
                            *b ^= xor;
                        }
                        self.inner.write_all(&msg)?;
                        self.inner.flush()
                    }
                    FaultKind::PartialRead { .. } | FaultKind::CorruptRead { .. } => {
                        unreachable!("take_write_fault returns only write kinds")
                    }
                }
            }
        }
    }
}

impl<T: Transport> Transport for FaultInjector<T> {
    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_deadline(timeout)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        self.inner.reconnect()?;
        self.dead = false;
        self.armed_read = None;
        self.out_buf.clear();
        Ok(())
    }

    fn set_observer(&mut self, obs: rcuda_obs::ObsHandle) {
        // The injector buffers writes itself, so the inner transport still
        // sees exactly one flush per delivered message — message events
        // keep their per-message meaning under fault injection.
        self.inner.set_observer(obs);
    }
}

/// One scheduled fault on a multiplexed trunk: `kind` strikes the
/// `frame`-th frame *of stream `stream`* (write-side kinds only).
///
/// The plain [`Fault`] schedule keys on the trunk's global flush count,
/// which under multiplexing is an interleaving artifact: the same seed
/// would hit a different logical frame depending on how a bulk transfer's
/// chunks happened to interleave with control calls. Keying on
/// `(stream, frame)` makes seeded conformance runs deterministic again —
/// "kill stream 3's second frame" means the same thing under every
/// interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFault {
    /// The sub-stream the fault targets.
    pub stream: u32,
    /// Per-stream frame index (0-based, counted independently per stream).
    pub frame: u64,
    pub kind: FaultKind,
}

/// A deterministic schedule of [`StreamFault`]s for a multiplexed trunk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamFaultPlan {
    faults: Vec<StreamFault>,
}

impl StreamFaultPlan {
    /// No faults: the wrapper becomes transparent.
    pub fn none() -> StreamFaultPlan {
        StreamFaultPlan::default()
    }

    /// An explicit schedule (sorted internally by stream, then frame).
    pub fn new(mut faults: Vec<StreamFault>) -> StreamFaultPlan {
        faults.sort_by_key(|f| (f.stream, f.frame));
        StreamFaultPlan { faults }
    }

    /// Convenience: a single fault on `stream`'s `frame`-th frame.
    pub fn at(stream: u32, frame: u64, kind: FaultKind) -> StreamFaultPlan {
        StreamFaultPlan::new(vec![StreamFault {
            stream,
            frame,
            kind,
        }])
    }

    /// Derive `count` write-side faults from a seed, scattered over the
    /// given streams and frame indices `0..horizon`. The same
    /// `(seed, streams, horizon, count)` always yields the same plan,
    /// regardless of how the trunk interleaves the streams' frames.
    pub fn seeded(seed: u64, streams: &[u32], horizon: u64, count: usize) -> StreamFaultPlan {
        assert!(horizon > 0, "horizon must be positive");
        assert!(!streams.is_empty(), "need at least one stream");
        let mut rng = SplitMix64::new(seed);
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let stream = streams[(rng.next() % streams.len() as u64) as usize];
            let frame = rng.next() % horizon;
            // Write-side kinds only: the wrapper sits on the trunk's send
            // half and never sees replies.
            let kind = match rng.next() % 4 {
                0 => FaultKind::Disconnect,
                1 => FaultKind::PartialWrite {
                    keep: (rng.next() % 12) as usize,
                },
                2 => FaultKind::Stall,
                _ => FaultKind::CorruptWrite {
                    offset: (rng.next() % 12) as usize,
                    xor: (rng.next() % 255) as u8 + 1,
                },
            };
            faults.push(StreamFault {
                stream,
                frame,
                kind,
            });
        }
        StreamFaultPlan::new(faults)
    }

    /// The scheduled faults, in (stream, frame) order.
    pub fn faults(&self) -> &[StreamFault] {
        &self.faults
    }

    fn take(&mut self, stream: u32, frame: u64) -> Option<FaultKind> {
        let pos = self
            .faults
            .iter()
            .position(|f| f.stream == stream && f.frame == frame)?;
        Some(self.faults.remove(pos).kind)
    }
}

/// A trunk-write-half wrapper that injects [`StreamFaultPlan`] faults.
///
/// Sits between the mux layer and the real write half: the mux layer
/// flushes exactly once per frame, so each flush carries one framed
/// message. The wrapper parses the 9-byte frame header to attribute the
/// frame to its stream, keeps an independent frame counter per stream, and
/// fires faults keyed on `(stream, frame)`. Flushes that are not a single
/// well-formed frame (e.g. handshake traffic) pass through untouched and
/// are not counted.
///
/// `PartialWrite::keep` and `CorruptWrite::offset` are relative to the
/// whole frame (header included), so header corruption — which the demux
/// loop must treat as a fatal trunk error — is reachable from a seed.
pub struct StreamFaultWrite<W: Write + Send> {
    inner: W,
    plan: StreamFaultPlan,
    out_buf: Vec<u8>,
    /// Frames seen so far, per stream.
    counts: std::collections::HashMap<u32, u64>,
    dead: bool,
    fired: Vec<StreamFault>,
}

impl<W: Write + Send> StreamFaultWrite<W> {
    pub fn new(inner: W, plan: StreamFaultPlan) -> StreamFaultWrite<W> {
        StreamFaultWrite {
            inner,
            plan,
            out_buf: Vec::new(),
            counts: std::collections::HashMap::new(),
            dead: false,
            fired: Vec::new(),
        }
    }

    /// The faults that have fired so far, in firing order.
    pub fn fired(&self) -> &[StreamFault] {
        &self.fired
    }

    /// Frames this wrapper has seen on `stream` (the next frame's index).
    pub fn frames_seen(&self, stream: u32) -> u64 {
        self.counts.get(&stream).copied().unwrap_or(0)
    }

    /// Parse `msg` as exactly one mux frame, returning its stream id.
    fn frame_stream(msg: &[u8]) -> Option<u32> {
        use rcuda_proto::mux::{FrameHeader, FRAME_HEADER_BYTES};
        if msg.len() < FRAME_HEADER_BYTES {
            return None;
        }
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header.copy_from_slice(&msg[..FRAME_HEADER_BYTES]);
        let parsed = FrameHeader::from_wire(header).ok()?;
        (msg.len() == FRAME_HEADER_BYTES + parsed.len as usize).then_some(parsed.stream_id)
    }
}

impl<W: Write + Send> Write for StreamFaultWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "trunk killed by stream fault",
            ));
        }
        self.out_buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "trunk killed by stream fault",
            ));
        }
        if self.out_buf.is_empty() {
            return self.inner.flush();
        }
        let msg = std::mem::take(&mut self.out_buf);
        let fault = Self::frame_stream(&msg).and_then(|stream| {
            let counter = self.counts.entry(stream).or_insert(0);
            let frame = *counter;
            *counter += 1;
            self.plan.take(stream, frame).map(|kind| StreamFault {
                stream,
                frame,
                kind,
            })
        });
        let Some(fault) = fault else {
            self.inner.write_all(&msg)?;
            return self.inner.flush();
        };
        self.fired.push(fault);
        match fault.kind {
            FaultKind::Disconnect => {
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "trunk killed by stream fault",
                ))
            }
            FaultKind::PartialWrite { keep } => {
                let keep = keep.min(msg.len());
                if keep > 0 {
                    self.inner.write_all(&msg[..keep])?;
                    let _ = self.inner.flush();
                }
                self.dead = true;
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "trunk killed by stream fault",
                ))
            }
            FaultKind::Stall => Ok(()),
            FaultKind::CorruptWrite { offset, xor } => {
                let mut msg = msg;
                if let Some(b) = msg.get_mut(offset) {
                    *b ^= xor;
                }
                self.inner.write_all(&msg)?;
                self.inner.flush()
            }
            FaultKind::PartialRead { .. } | FaultKind::CorruptRead { .. } => {
                // Read-side kinds are never generated for stream plans and a
                // hand-written one is a no-op: this wrapper only sees sends.
                self.inner.write_all(&msg)?;
                self.inner.flush()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;

    fn send(t: &mut impl Transport, msg: &[u8]) -> io::Result<()> {
        t.write_all(msg)?;
        t.flush()
    }

    #[test]
    fn no_faults_is_transparent() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(a, FaultPlan::none());
        send(&mut inj, b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        send(&mut b, b"world").unwrap();
        inj.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
        assert_eq!(inj.fired().len(), 0);
    }

    #[test]
    fn disconnect_kills_message_and_connection() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(a, FaultPlan::at(1, FaultKind::Disconnect));
        send(&mut inj, b"first").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();

        let err = send(&mut inj, b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Dead in both directions until reconnect.
        assert_eq!(
            send(&mut inj, b"third").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(
            inj.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            inj.fired(),
            vec![Fault {
                message_index: 1,
                kind: FaultKind::Disconnect
            }]
        );
    }

    #[test]
    fn partial_write_delivers_prefix_then_dies() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(a, FaultPlan::at(0, FaultKind::PartialWrite { keep: 3 }));
        let err = send(&mut inj, b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 3];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc", "peer saw only the kept prefix");
    }

    #[test]
    fn partial_read_truncates_the_reply() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(a, FaultPlan::at(0, FaultKind::PartialRead { keep: 2 }));
        send(&mut inj, b"req").unwrap();
        let mut req = [0u8; 3];
        b.read_exact(&mut req).unwrap();
        send(&mut b, b"reply").unwrap();

        let mut buf = [0u8; 2];
        inj.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"re");
        let mut more = [0u8; 1];
        assert_eq!(
            inj.read_exact(&mut more).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn stall_swallows_message_silently() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(a, FaultPlan::at(0, FaultKind::Stall));
        send(&mut inj, b"vanishes").unwrap();
        // Connection still usable; the peer never saw message 0.
        send(&mut inj, b"arrives!").unwrap();
        let mut buf = [0u8; 8];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"arrives!");
    }

    #[test]
    fn corrupt_write_flips_the_scheduled_byte() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(
            a,
            FaultPlan::at(
                0,
                FaultKind::CorruptWrite {
                    offset: 2,
                    xor: 0xFF,
                },
            ),
        );
        send(&mut inj, &[0, 0, 0, 0]).unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0xFF, 0]);
    }

    #[test]
    fn corrupt_read_flips_reply_byte_at_offset() {
        let (a, mut b) = channel_pair();
        let mut inj = FaultInjector::new(
            a,
            FaultPlan::at(
                1,
                FaultKind::CorruptRead {
                    offset: 1,
                    xor: 0x0F,
                },
            ),
        );
        // Message 0 and its reply pass untouched.
        send(&mut inj, b"m0").unwrap();
        send(&mut b, &[1, 2]).unwrap();
        let mut buf = [0u8; 2];
        inj.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2]);
        let mut req = [0u8; 2];
        b.read_exact(&mut req).unwrap();
        // Message 1's reply gets byte 1 XORed, even across split reads.
        send(&mut inj, b"m1").unwrap();
        b.read_exact(&mut req).unwrap();
        send(&mut b, &[3, 4]).unwrap();
        let mut one = [0u8; 1];
        inj.read_exact(&mut one).unwrap();
        assert_eq!(one, [3]);
        inj.read_exact(&mut one).unwrap();
        assert_eq!(one, [4 ^ 0x0F]);
    }

    #[test]
    fn reconnect_revives_a_killed_connection() {
        // ChannelTransport can't reconnect, so exercise the revive logic
        // through a ReconnectTransport below the injector.
        use crate::reconnect::ReconnectTransport;
        let (a, _keep_b) = channel_pair();
        let (a2, _keep_b2) = channel_pair();
        let mut spare = Some(a2);
        let rt = ReconnectTransport::new(a, move || {
            spare
                .take()
                .ok_or_else(|| io::Error::other("no more endpoints"))
        });
        let mut inj = FaultInjector::new(rt, FaultPlan::at(0, FaultKind::Disconnect));
        assert_eq!(
            send(&mut inj, b"dies").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        inj.reconnect().unwrap();
        send(&mut inj, b"lives").unwrap();
        assert_eq!(
            inj.message_index(),
            2,
            "index keeps counting across reconnect"
        );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let p1 = FaultPlan::seeded(42, 10, 3);
        let p2 = FaultPlan::seeded(42, 10, 3);
        assert_eq!(p1, p2);
        assert_eq!(p1.faults().len(), 3);
        assert!(p1.faults().iter().all(|f| f.message_index < 10));
        let p3 = FaultPlan::seeded(43, 10, 3);
        assert_ne!(p1, p3, "different seed, different plan");
    }

    use rcuda_proto::mux::{FrameHeader, FrameKind};

    /// Emit one DATA frame for `stream` through the wrapper (one flush per
    /// frame, as the mux layer does).
    fn emit_frame(w: &mut impl Write, stream: u32, payload: &[u8]) -> io::Result<()> {
        let header = FrameHeader {
            stream_id: stream,
            kind: FrameKind::Data {
                end_of_message: true,
            },
            len: payload.len() as u32,
        };
        w.write_all(&header.to_wire())?;
        w.write_all(payload)?;
        w.flush()
    }

    #[test]
    fn stream_seeded_plans_are_reproducible_and_write_side_only() {
        let p1 = StreamFaultPlan::seeded(7, &[1, 2, 3], 20, 5);
        let p2 = StreamFaultPlan::seeded(7, &[1, 2, 3], 20, 5);
        assert_eq!(p1, p2);
        assert_eq!(p1.faults().len(), 5);
        assert!(p1.faults().iter().all(|f| {
            !matches!(
                f.kind,
                FaultKind::PartialRead { .. } | FaultKind::CorruptRead { .. }
            )
        }));
        assert_ne!(p1, StreamFaultPlan::seeded(8, &[1, 2, 3], 20, 5));
    }

    #[test]
    fn stream_fault_fires_on_logical_frame_regardless_of_interleaving() {
        // Corrupt stream 2's frame #1 (its second frame), payload byte 0
        // (frame offset 9 = just past the header).
        let plan = || {
            StreamFaultPlan::at(
                2,
                1,
                FaultKind::CorruptWrite {
                    offset: 9,
                    xor: 0xFF,
                },
            )
        };

        // Interleaving A: 1,2,2 — stream 2's second frame is global frame 2.
        let (a, mut peer_a) = channel_pair();
        let (rd_a, wr_a) = (Box::new(a) as Box<dyn Transport>).into_split().unwrap();
        drop(rd_a);
        let mut w = StreamFaultWrite::new(wr_a, plan());
        emit_frame(&mut w, 1, b"x").unwrap();
        emit_frame(&mut w, 2, b"y").unwrap();
        emit_frame(&mut w, 2, b"z").unwrap();

        // Interleaving B: 2,1,1,2 — stream 2's second frame is global frame 3.
        let (b, mut peer_b) = channel_pair();
        let (rd_b, wr_b) = (Box::new(b) as Box<dyn Transport>).into_split().unwrap();
        drop(rd_b);
        let mut w2 = StreamFaultWrite::new(wr_b, plan());
        emit_frame(&mut w2, 2, b"y").unwrap();
        emit_frame(&mut w2, 1, b"x").unwrap();
        emit_frame(&mut w2, 1, b"q").unwrap();
        emit_frame(&mut w2, 2, b"z").unwrap();

        // Both interleavings corrupt the same logical frame: stream 2's "z".
        for (peer, frames) in [(&mut peer_a, 3usize), (&mut peer_b, 4)] {
            let mut corrupted = Vec::new();
            for _ in 0..frames {
                let mut header = [0u8; rcuda_proto::mux::FRAME_HEADER_BYTES];
                peer.read_exact(&mut header).unwrap();
                let h = FrameHeader::from_wire(header).unwrap();
                let mut payload = vec![0u8; h.len as usize];
                peer.read_exact(&mut payload).unwrap();
                if payload[0] & 0x80 != 0 {
                    corrupted.push((h.stream_id, payload[0] ^ 0xFF));
                }
            }
            assert_eq!(corrupted, vec![(2, b'z')]);
        }
        assert_eq!(w.fired(), w2.fired());
        assert_eq!(
            w.fired(),
            &[StreamFault {
                stream: 2,
                frame: 1,
                kind: FaultKind::CorruptWrite {
                    offset: 9,
                    xor: 0xFF
                }
            }]
        );
    }

    #[test]
    fn stream_fault_disconnect_kills_the_trunk() {
        let (a, _peer) = channel_pair();
        let (rd, wr) = (Box::new(a) as Box<dyn Transport>).into_split().unwrap();
        drop(rd);
        let mut w = StreamFaultWrite::new(wr, StreamFaultPlan::at(1, 0, FaultKind::Disconnect));
        assert_eq!(
            emit_frame(&mut w, 1, b"dead").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(
            emit_frame(&mut w, 2, b"also dead").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn non_frame_flushes_pass_through_uncounted() {
        let (a, mut peer) = channel_pair();
        let (rd, wr) = (Box::new(a) as Box<dyn Transport>).into_split().unwrap();
        drop(rd);
        // A plan against frame 0 of stream 0 must not hit handshake bytes.
        let mut w = StreamFaultWrite::new(
            wr,
            StreamFaultPlan::at(
                0,
                0,
                FaultKind::CorruptWrite {
                    offset: 0,
                    xor: 0xFF,
                },
            ),
        );
        w.write_all(b"not a frame").unwrap();
        w.flush().unwrap();
        let mut buf = [0u8; 11];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"not a frame");
        assert!(w.fired().is_empty());
        assert_eq!(w.frames_seen(0), 0);
    }
}
