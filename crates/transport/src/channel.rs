//! In-process transport over crossbeam channels.
//!
//! Messages buffer locally until `flush`, then travel as one `Vec<u8>` —
//! preserving the protocol's message boundaries without any real I/O.
//! Dropping one endpoint makes the peer's reads fail with
//! `UnexpectedEof` and its writes with `BrokenPipe`, mirroring socket
//! behavior so connection-loss handling can be tested in-process.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rcuda_obs::{Dir, ObsHandle};
use std::io::{self, Read, Write};
use std::time::Duration;

use crate::stats::TransportStats;
use crate::{Progress, Transport};

/// One endpoint of an in-process duplex byte stream.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Bytes written since the last flush.
    out_buf: Vec<u8>,
    /// Received message currently being consumed.
    in_buf: Vec<u8>,
    in_pos: usize,
    /// Bound on waiting for the next message (`set_read_deadline`).
    read_timeout: Option<Duration>,
    stats: TransportStats,
    obs: ObsHandle,
}

/// Create a connected pair of endpoints.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (tx_a, rx_b) = unbounded();
    let (tx_b, rx_a) = unbounded();
    let mk = |tx, rx| ChannelTransport {
        tx,
        rx,
        out_buf: Vec::new(),
        in_buf: Vec::new(),
        in_pos: 0,
        read_timeout: None,
        stats: TransportStats::default(),
        obs: ObsHandle::none(),
    };
    (mk(tx_a, rx_a), mk(tx_b, rx_b))
}

impl ChannelTransport {
    /// Deliver the pending message to the peer (internal flush step).
    fn deliver(&mut self) -> io::Result<()> {
        if self.out_buf.is_empty() {
            return Ok(());
        }
        let msg = std::mem::take(&mut self.out_buf);
        self.stats.record_message();
        self.obs.emit_message(Dir::Sent, msg.len() as u64);
        self.tx
            .send(msg)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
    }

    /// Bytes of the current pending (unflushed) message.
    pub fn pending_bytes(&self) -> usize {
        self.out_buf.len()
    }
}

impl Read for ChannelTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.in_pos >= self.in_buf.len() {
            let next = match self.read_timeout {
                Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                    RecvTimeoutError::Timeout => {
                        io::Error::new(io::ErrorKind::TimedOut, "read deadline exceeded")
                    }
                    RecvTimeoutError::Disconnected => {
                        io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")
                    }
                }),
                None => self
                    .rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            };
            match next {
                Ok(msg) => {
                    self.obs.emit_message(Dir::Received, msg.len() as u64);
                    self.in_buf = msg;
                    self.in_pos = 0;
                    self.stats.record_message_received();
                }
                Err(e) => return Err(e),
            }
        }
        let n = buf.len().min(self.in_buf.len() - self.in_pos);
        buf[..n].copy_from_slice(&self.in_buf[self.in_pos..self.in_pos + n]);
        self.in_pos += n;
        self.stats.record_recv(n as u64);
        Ok(n)
    }
}

impl Write for ChannelTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out_buf.extend_from_slice(buf);
        self.stats.record_send(buf.len() as u64);
        Ok(buf.len())
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        // The pending message is one Vec anyway: append every piece so a
        // vectored caller completes in a single call.
        let mut total = 0;
        for b in bufs {
            self.out_buf.extend_from_slice(b);
            total += b.len();
        }
        self.stats.record_send(total as u64);
        Ok(total)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.deliver()
    }
}

/// The receive half of a split [`ChannelTransport`]: blocking reads off the
/// crossbeam receiver, carrying over any bytes the unsplit transport had
/// already buffered.
pub struct ChannelReadHalf {
    rx: Receiver<Vec<u8>>,
    in_buf: Vec<u8>,
    in_pos: usize,
}

impl io::Read for ChannelReadHalf {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.in_pos >= self.in_buf.len() {
            match self.rx.recv() {
                Ok(msg) => {
                    self.in_buf = msg;
                    self.in_pos = 0;
                }
                // Peer gone: EOF, the natural shutdown signal for a
                // demultiplexer thread blocked here.
                Err(_) => return Ok(0),
            }
        }
        let n = buf.len().min(self.in_buf.len() - self.in_pos);
        buf[..n].copy_from_slice(&self.in_buf[self.in_pos..self.in_pos + n]);
        self.in_pos += n;
        Ok(n)
    }
}

/// The send half of a split [`ChannelTransport`]: buffers writes and
/// delivers one channel message per flush, like the unsplit transport.
pub struct ChannelWriteHalf {
    tx: Sender<Vec<u8>>,
    out_buf: Vec<u8>,
}

impl io::Write for ChannelWriteHalf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out_buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.out_buf.is_empty() {
            return Ok(());
        }
        let msg = std::mem::take(&mut self.out_buf);
        self.tx
            .send(msg)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }
}

impl Transport for ChannelTransport {
    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        Ok(())
    }

    fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    // Channels are inherently nonblocking-capable: `try_recv` never parks,
    // and sends on the unbounded channel never block. `set_nonblocking` is
    // therefore a mode-free no-op — the blocking and nonblocking halves
    // coexist on the same endpoint.
    fn set_nonblocking(&mut self, _nonblocking: bool) -> io::Result<()> {
        Ok(())
    }

    fn poll_readable(&mut self) -> io::Result<bool> {
        // Undrained staged message, a queued message, or a hung-up peer
        // (EOF) all let a read make progress. A queued message is staged
        // here so the subsequent `try_read` serves it without re-polling.
        if self.in_pos < self.in_buf.len() {
            return Ok(true);
        }
        match self.rx.try_recv() {
            Ok(msg) => {
                self.obs.emit_message(Dir::Received, msg.len() as u64);
                self.in_buf = msg;
                self.in_pos = 0;
                self.stats.record_message_received();
                Ok(true)
            }
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(false),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(true),
        }
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<Progress> {
        if self.in_pos >= self.in_buf.len() {
            match self.rx.try_recv() {
                Ok(msg) => {
                    self.obs.emit_message(Dir::Received, msg.len() as u64);
                    self.in_buf = msg;
                    self.in_pos = 0;
                    self.stats.record_message_received();
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return Ok(Progress::Pending),
                // A gone peer is EOF, matching socket semantics.
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    return Ok(Progress::Ready(0))
                }
            }
        }
        let n = buf.len().min(self.in_buf.len() - self.in_pos);
        buf[..n].copy_from_slice(&self.in_buf[self.in_pos..self.in_pos + n]);
        self.in_pos += n;
        self.stats.record_recv(n as u64);
        Ok(Progress::Ready(n))
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<Progress> {
        // The out buffer and channel are unbounded: a write always lands.
        // Delivery to the peer still happens at `flush`, which never blocks.
        self.out_buf.extend_from_slice(buf);
        self.stats.record_send(buf.len() as u64);
        Ok(Progress::Ready(buf.len()))
    }

    fn into_split(self: Box<Self>) -> io::Result<(crate::ReadHalf, crate::WriteHalf)> {
        let this = *self;
        Ok((
            Box::new(ChannelReadHalf {
                rx: this.rx,
                in_buf: this.in_buf,
                in_pos: this.in_pos,
            }),
            Box::new(ChannelWriteHalf {
                tx: this.tx,
                out_buf: this.out_buf,
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_one_message() {
        let (mut a, mut b) = channel_pair();
        a.write_all(b"hello").unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn message_boundaries_do_not_block_partial_reads() {
        let (mut a, mut b) = channel_pair();
        a.write_all(b"0123456789").unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"0123");
        let mut rest = [0u8; 6];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(&rest, b"456789");
    }

    #[test]
    fn nothing_travels_before_flush() {
        let (mut a, _b) = channel_pair();
        a.write_all(b"buffered").unwrap();
        assert_eq!(a.pending_bytes(), 8);
        assert_eq!(a.stats().messages_sent, 0);
        a.flush().unwrap();
        assert_eq!(a.pending_bytes(), 0);
        assert_eq!(a.stats().messages_sent, 1);
    }

    #[test]
    fn empty_flush_is_not_a_message() {
        let (mut a, _b) = channel_pair();
        a.flush().unwrap();
        assert_eq!(a.stats().messages_sent, 0);
    }

    #[test]
    fn vectored_write_appends_all_pieces_as_one_message() {
        let (mut a, mut b) = channel_pair();
        let n = a
            .write_vectored(&[
                io::IoSlice::new(b"head"),
                io::IoSlice::new(b""),
                io::IoSlice::new(b"body"),
            ])
            .unwrap();
        assert_eq!(n, 8);
        a.flush().unwrap();
        let mut buf = [0u8; 8];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"headbody");
        assert_eq!(a.stats().bytes_sent, 8);
        assert_eq!(a.stats().messages_sent, 1);
    }

    #[test]
    fn dropped_peer_breaks_both_directions() {
        let (mut a, b) = channel_pair();
        drop(b);
        a.write_all(b"x").unwrap();
        assert_eq!(a.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 1];
        assert_eq!(
            a.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn stats_count_bytes_both_ways() {
        let (mut a, mut b) = channel_pair();
        a.write_all(&[0u8; 100]).unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 100];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(a.stats().bytes_sent, 100);
        assert_eq!(b.stats().bytes_received, 100);
    }

    #[test]
    fn read_deadline_times_out_then_clears() {
        let (mut a, mut b) = channel_pair();
        a.set_read_deadline(Some(Duration::from_millis(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(
            a.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        // Data that arrives within the deadline is read normally.
        b.write_all(&[7]).unwrap();
        b.flush().unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [7]);
        // Clearing the deadline restores blocking reads (peer gone → EOF,
        // not TimedOut).
        a.set_read_deadline(None).unwrap();
        drop(b);
        assert_eq!(
            a.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn messages_received_counts_peer_flushes() {
        let (mut a, mut b) = channel_pair();
        for _ in 0..3 {
            a.write_all(b"xy").unwrap();
            a.flush().unwrap();
        }
        let mut buf = [0u8; 6];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(b.stats().messages_received, 3);
        // Partial consumption of one message counts it exactly once.
        a.write_all(b"0123456789").unwrap();
        a.flush().unwrap();
        let mut half = [0u8; 5];
        b.read_exact(&mut half).unwrap();
        b.read_exact(&mut half).unwrap();
        assert_eq!(b.stats().messages_received, 4);
    }

    #[test]
    fn observer_sees_one_event_per_message() {
        let rec = rcuda_obs::Recorder::new();
        let (mut a, mut b) = channel_pair();
        a.set_observer(rec.handle());
        b.set_observer(rec.handle());
        a.write_all(&[0u8; 20]).unwrap();
        a.write_all(&[0u8; 4]).unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 24];
        b.read_exact(&mut buf[..10]).unwrap();
        b.read_exact(&mut buf[10..]).unwrap();
        let report = rec.report();
        assert_eq!(report.messages.sent_count, 1, "one flush, one send event");
        assert_eq!(report.messages.sent_bytes, 24);
        assert_eq!(
            report.messages.received_count, 1,
            "partial reads consume one message"
        );
        assert_eq!(report.messages.received_bytes, 24);
    }

    #[test]
    fn try_read_reports_pending_then_data_then_eof() {
        let (mut a, mut b) = channel_pair();
        let mut buf = [0u8; 8];
        assert!(!a.poll_readable().unwrap());
        assert_eq!(a.try_read(&mut buf).unwrap(), Progress::Pending);
        b.write_all(b"abc").unwrap();
        b.flush().unwrap();
        assert!(a.poll_readable().unwrap());
        assert_eq!(a.try_read(&mut buf).unwrap(), Progress::Ready(3));
        assert_eq!(&buf[..3], b"abc");
        drop(b);
        assert!(a.poll_readable().unwrap(), "EOF is readable progress");
        assert_eq!(a.try_read(&mut buf).unwrap(), Progress::Ready(0));
    }

    #[test]
    fn try_write_then_flush_delivers_one_message() {
        let (mut a, mut b) = channel_pair();
        assert_eq!(a.try_write(b"he").unwrap(), Progress::Ready(2));
        assert_eq!(a.try_write(b"llo").unwrap(), Progress::Ready(3));
        a.flush().unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(b.try_read(&mut buf).unwrap(), Progress::Ready(5));
        assert_eq!(&buf, b"hello");
        assert_eq!(a.stats().messages_sent, 1);
    }

    #[test]
    fn nonblocking_and_blocking_halves_interleave() {
        let (mut a, mut b) = channel_pair();
        a.set_nonblocking(true).unwrap();
        a.write_all(b"xy").unwrap(); // blocking-half write
        a.flush().unwrap();
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap(); // blocking-half read
        assert_eq!(&buf, b"xy");
        b.try_write(b"zw").unwrap();
        b.flush().unwrap();
        assert_eq!(a.try_read(&mut buf).unwrap(), Progress::Ready(2));
        assert_eq!(&buf, b"zw");
    }

    #[test]
    fn split_halves_carry_buffered_bytes_and_signal_eof() {
        let (mut a, mut b) = channel_pair();
        a.write_all(b"first-second").unwrap();
        a.flush().unwrap();
        // Partially consume before splitting: the read half must carry over
        // the rest of the buffered message.
        let mut head = [0u8; 6];
        b.read_exact(&mut head).unwrap();
        assert_eq!(&head, b"first-");
        let (mut rd, mut wr) = (Box::new(b) as Box<dyn Transport>).into_split().unwrap();
        let mut tail = [0u8; 6];
        rd.read_exact(&mut tail).unwrap();
        assert_eq!(&tail, b"second");
        // Write half still delivers one message per flush.
        wr.write_all(b"back").unwrap();
        wr.flush().unwrap();
        let mut echo = [0u8; 4];
        a.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"back");
        // Dropping both halves hangs up the peer.
        drop(rd);
        drop(wr);
        assert_eq!(
            a.read_exact(&mut echo).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn works_across_threads() {
        let (mut a, mut b) = channel_pair();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            b.write_all(&buf).unwrap();
            b.flush().unwrap();
        });
        a.write_all(b"abc").unwrap();
        a.flush().unwrap();
        let mut echo = [0u8; 3];
        a.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"abc");
        t.join().unwrap();
    }
}
