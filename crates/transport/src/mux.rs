//! Stream multiplexing over one ordered byte transport.
//!
//! A [`MuxPeer`] owns the "trunk" — the split halves of an underlying
//! [`Transport`] — and demultiplexes [`rcuda_proto::mux`] frames onto
//! independent [`MuxStream`]s, each of which is itself a full [`Transport`].
//! Bulk payloads are chopped into [`CHUNK`]-sized DATA frames at flush, so
//! a 16 MiB memcpy on one stream serializes as 256 interleavable frames and
//! a small control call on a sibling stream waits behind at most one chunk
//! — the head-of-line-blocking fix measured by the `multiplex` bench.
//!
//! ## Threading model
//!
//! One detached demux thread per trunk owns the read half and blocks on
//! frame headers; inbound DATA lands in per-stream inboxes of pooled
//! buffers ([`BufferPool`] — the zero-copy path stays allocation-free in
//! steady state). Writers share the write half behind a mutex, locking per
//! frame: one frame, one flush, so frames from different streams interleave
//! at chunk granularity and the [`crate::StreamFaultWrite`] wrapper can
//! attribute every flush to its stream.
//!
//! ## Flow control
//!
//! Every stream starts with [`INITIAL_WINDOW`] bytes of send credit;
//! consuming reads re-grant via CREDIT frames once [`CREDIT_REFRESH`] bytes
//! have been drained. A blocked writer parks on a condvar (blocking path)
//! or reports [`Progress::Pending`] (nonblocking path, so a reactor shard
//! simply retries from its out-buffer). Because the sender never exceeds
//! its window, a stream's inbox is bounded by the window size — a stalled
//! reader cannot balloon the process.
//!
//! ## Encryption
//!
//! When a cipher was negotiated at the handshake (see
//! [`rcuda_proto::secure`]), each `(stream, direction)` pair runs its own
//! keystream lane; payloads are encrypted in place as frames are emitted
//! and decrypted as they land. Frame headers stay in the clear — the demux
//! loop needs them, and they carry no payload data.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rcuda_obs::{Dir, ObsHandle};
use rcuda_proto::mux::{
    FrameHeader, FrameKind, CHUNK, CREDIT_REFRESH, INITIAL_WINDOW, TRUNK_STREAM,
};
use rcuda_proto::payload::{BufferPool, PooledBuf};
use rcuda_proto::secure::{CipherSuite, CipherSuiteKind};

use crate::stats::TransportStats;
use crate::{Progress, ReadHalf, Transport, WriteHalf};

/// Which end of the trunk this peer is. The client opens streams; the
/// server accepts them. The role also fixes which cipher lane each
/// direction uses, so both ends agree without negotiation per stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxRole {
    Client,
    Server,
}

/// Cipher lane direction tags (must agree between the two ends).
const DIR_CLIENT_TO_SERVER: u8 = 0;
const DIR_SERVER_TO_CLIENT: u8 = 1;

/// Configuration for a [`MuxPeer`], produced by the upgrade handshake.
pub struct MuxConfig {
    /// Negotiated cipher ([`CipherSuiteKind::None`] = cleartext).
    pub cipher: CipherSuiteKind,
    /// Session key derived from the handshake transcript (ignored when
    /// `cipher` is `None`).
    pub key: [u8; 32],
    /// Pool for inbound frame buffers (share the session's pool to keep
    /// the steady-state receive path allocation-free).
    pub pool: BufferPool,
    /// Observer for per-frame [`rcuda_obs::StreamFrameEvent`]s.
    pub obs: ObsHandle,
}

impl Default for MuxConfig {
    fn default() -> MuxConfig {
        MuxConfig {
            cipher: CipherSuiteKind::None,
            key: [0u8; 32],
            pool: BufferPool::new(),
            obs: ObsHandle::none(),
        }
    }
}

/// One received DATA frame queued for consumption.
struct InChunk {
    buf: PooledBuf,
    pos: usize,
    end_of_message: bool,
}

/// FIFO ticket lock around the trunk's write half.
///
/// A plain mutex is unfair: a bulk stream re-acquiring it in a tight
/// chunk-emitting loop can starve a sibling stream's single small frame
/// for the whole transfer — exactly the head-of-line blocking the mux
/// exists to remove. Tickets grant the writer in arrival order, so a
/// waiting small frame departs after at most the chunks already in line.
struct FairWriter {
    inner: Mutex<FairWriterInner>,
    turn: Condvar,
    next_ticket: AtomicU64,
}

struct FairWriterInner {
    writer: WriteHalf,
    serving: u64,
}

impl FairWriter {
    fn new(writer: WriteHalf) -> FairWriter {
        FairWriter {
            inner: Mutex::new(FairWriterInner { writer, serving: 0 }),
            turn: Condvar::new(),
            next_ticket: AtomicU64::new(0),
        }
    }

    /// Run `f` with exclusive access to the write half, in FIFO order
    /// among concurrent callers.
    fn with<R>(&self, f: impl FnOnce(&mut WriteHalf) -> R) -> R {
        let ticket = self.next_ticket.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock().unwrap();
        while inner.serving != ticket {
            inner = self.turn.wait(inner).unwrap();
        }
        let out = f(&mut inner.writer);
        inner.serving += 1;
        drop(inner);
        self.turn.notify_all();
        out
    }
}

/// Mutable per-stream state, guarded by one mutex per stream.
struct StreamState {
    inbox: VecDeque<InChunk>,
    /// Peer sent CLOSE: reads drain the inbox then report EOF.
    closed: bool,
    /// Trunk died: reads fail once the inbox drains, writes fail now.
    poisoned: bool,
    /// Our remaining send window, in bytes.
    credit: u64,
    /// Message-end markers that arrived as bare zero-length frames after
    /// the inbox had already drained: the consumer accounts them on its
    /// next state access.
    orphan_ends: u32,
}

struct StreamShared {
    state: Mutex<StreamState>,
    /// Signaled when the inbox grows, the stream closes, or the trunk dies.
    readable: Condvar,
    /// Signaled when credit arrives or the trunk dies.
    writable: Condvar,
    /// Receive-direction cipher lane (applied by the demux thread).
    rx_cipher: Mutex<Option<Box<dyn CipherSuite>>>,
}

impl StreamShared {
    fn poison(&self) {
        self.state.lock().unwrap().poisoned = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }
}

/// Shared trunk state: the guarded write half plus the stream registry.
struct TrunkCore {
    writer: FairWriter,
    streams: Mutex<HashMap<u32, Arc<StreamShared>>>,
    pool: BufferPool,
    dead: AtomicBool,
    obs: ObsHandle,
    role: MuxRole,
    cipher: CipherSuiteKind,
    key: [u8; 32],
}

impl TrunkCore {
    /// Emit one frame: header + payload, one flush. Locking per frame is
    /// what lets streams interleave at chunk granularity.
    fn send_frame(&self, header: FrameHeader, payload: &[u8]) -> io::Result<()> {
        if self.dead.load(Ordering::Acquire) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "mux trunk dead"));
        }
        let result = self.writer.with(|w| {
            w.write_all(&header.to_wire())?;
            if !payload.is_empty() {
                w.write_all(payload)?;
            }
            w.flush()
        });
        if result.is_err() {
            self.poison();
        }
        result
    }

    /// Kill the trunk: every stream's pending and future I/O fails.
    fn poison(&self) {
        self.dead.store(true, Ordering::Release);
        let streams = self.streams.lock().unwrap();
        for shared in streams.values() {
            shared.poison();
        }
    }

    /// Register stream `id` and build its endpoint (cipher lanes keyed on
    /// the trunk role so both ends pair up correctly).
    fn make_stream(self: &Arc<Self>, id: u32) -> MuxStream {
        let shared = Arc::new(StreamShared {
            state: Mutex::new(StreamState {
                inbox: VecDeque::new(),
                closed: false,
                poisoned: self.dead.load(Ordering::Acquire),
                credit: u64::from(INITIAL_WINDOW),
                orphan_ends: 0,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            rx_cipher: Mutex::new(None),
        });
        let (tx_dir, rx_dir) = match self.role {
            MuxRole::Client => (DIR_CLIENT_TO_SERVER, DIR_SERVER_TO_CLIENT),
            MuxRole::Server => (DIR_SERVER_TO_CLIENT, DIR_CLIENT_TO_SERVER),
        };
        *shared.rx_cipher.lock().unwrap() = self.cipher.instantiate(&self.key, id, rx_dir);
        let tx_cipher = self.cipher.instantiate(&self.key, id, tx_dir);
        self.streams.lock().unwrap().insert(id, Arc::clone(&shared));
        MuxStream {
            id,
            trunk: Arc::clone(self),
            shared,
            tx_cipher,
            out: Vec::new(),
            out_pos: 0,
            scratch: Vec::new(),
            current: None,
            consumed: 0,
            chunks_in_msg: 0,
            msg_bytes: 0,
            in_msg_bytes: 0,
            read_deadline: None,
            stats: TransportStats::default(),
            obs: self.obs.clone(),
        }
    }
}

/// One end of a multiplexed trunk. Cheap handle: open streams, then keep it
/// alive as long as the streams matter — dropping the peer sends a GOAWAY.
pub struct MuxPeer {
    core: Arc<TrunkCore>,
    next_id: AtomicU32,
    /// Called on drop to unblock a demux thread stuck in a read (e.g. a
    /// TCP socket shutdown). Channel-backed trunks don't need one: the
    /// write half dropping hangs the peer up.
    shutdown: Option<Box<dyn Fn() + Send + Sync>>,
}

impl MuxPeer {
    /// Build the client end over split transport halves. The handshake
    /// (hello/challenge/auth/accept) must already have completed; `config`
    /// carries its outcome.
    pub fn client(read: ReadHalf, write: WriteHalf, config: MuxConfig) -> MuxPeer {
        Self::start(read, write, MuxRole::Client, config, None)
    }

    /// Build the server end. `on_stream` runs on the demux thread once per
    /// peer-opened stream, receiving the fresh [`MuxStream`]; it should
    /// hand the stream off quickly (e.g. submit to a reactor or spawn a
    /// worker) — the trunk cannot make progress while it runs.
    pub fn server<F>(read: ReadHalf, write: WriteHalf, config: MuxConfig, on_stream: F) -> MuxPeer
    where
        F: FnMut(MuxStream) + Send + 'static,
    {
        Self::start(
            read,
            write,
            MuxRole::Server,
            config,
            Some(Box::new(on_stream)),
        )
    }

    fn start(
        read: ReadHalf,
        write: WriteHalf,
        role: MuxRole,
        config: MuxConfig,
        on_stream: Option<Box<dyn FnMut(MuxStream) + Send>>,
    ) -> MuxPeer {
        let core = Arc::new(TrunkCore {
            writer: FairWriter::new(write),
            streams: Mutex::new(HashMap::new()),
            pool: config.pool,
            dead: AtomicBool::new(false),
            obs: config.obs,
            role,
            cipher: config.cipher,
            key: config.key,
        });
        let demux_core = Arc::clone(&core);
        std::thread::Builder::new()
            .name("rcuda-mux-demux".into())
            .spawn(move || demux_loop(demux_core, read, on_stream))
            .expect("spawn mux demux thread");
        MuxPeer {
            core,
            next_id: AtomicU32::new(1),
            shutdown: None,
        }
    }

    /// Install a hook that forcibly unblocks the demux thread (run at
    /// drop). TCP trunks pass a socket-shutdown closure here.
    pub fn set_shutdown<F: Fn() + Send + Sync + 'static>(&mut self, hook: F) {
        self.shutdown = Some(Box::new(hook));
    }

    /// Open a new sub-stream (client role). Announces it to the peer with
    /// an OPEN frame and returns the local endpoint.
    pub fn open_stream(&self) -> io::Result<MuxStream> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let stream = self.core.make_stream(id);
        self.core.send_frame(
            FrameHeader {
                stream_id: id,
                kind: FrameKind::Open,
                len: 0,
            },
            &[],
        )?;
        Ok(stream)
    }

    /// Whether the trunk has died (I/O error, peer GOAWAY, or EOF).
    pub fn is_dead(&self) -> bool {
        self.core.dead.load(Ordering::Acquire)
    }

    /// Open streams right now (registered and not yet closed locally).
    pub fn stream_count(&self) -> usize {
        self.core.streams.lock().unwrap().len()
    }
}

impl Drop for MuxPeer {
    fn drop(&mut self) {
        // Best-effort GOAWAY so the peer tears down promptly instead of
        // discovering the loss on its next I/O.
        let _ = self.core.send_frame(
            FrameHeader {
                stream_id: TRUNK_STREAM,
                kind: FrameKind::Close,
                len: 0,
            },
            &[],
        );
        self.core.poison();
        if let Some(hook) = &self.shutdown {
            hook();
        }
        // The demux thread is detached: it exits on its next read (EOF
        // after the halves drop, or immediately via the shutdown hook).
    }
}

/// The trunk read loop: parse frames, route DATA/CLOSE/CREDIT to streams,
/// surface OPENs to the server callback. Any read or protocol error kills
/// the whole trunk — sub-streams have no independent failure domain on a
/// shared byte pipe.
fn demux_loop(
    core: Arc<TrunkCore>,
    mut read: ReadHalf,
    mut on_stream: Option<Box<dyn FnMut(MuxStream) + Send>>,
) {
    while let Ok(header) = FrameHeader::read(&mut read) {
        match header.kind {
            FrameKind::Data { end_of_message } => {
                let len = header.len as usize;
                let mut chunk = core.pool.get(len);
                if len > 0 && read.read_exact(&mut chunk).is_err() {
                    break;
                }
                let target = core.streams.lock().unwrap().get(&header.stream_id).cloned();
                // Frames for unknown streams (closed locally while data was
                // in flight) are drained and dropped.
                let Some(shared) = target else { continue };
                if let Some(cipher) = shared.rx_cipher.lock().unwrap().as_mut() {
                    cipher.apply(&mut chunk);
                }
                core.obs.emit_stream_frame(
                    header.stream_id,
                    Dir::Received,
                    len as u64,
                    end_of_message,
                );
                let mut state = shared.state.lock().unwrap();
                // Empty DATA frames carry only the message-end flag; mark
                // the tail chunk rather than queueing a zero-length chunk
                // (which a reader could mistake for EOF).
                if len > 0 {
                    state.inbox.push_back(InChunk {
                        buf: chunk,
                        pos: 0,
                        end_of_message,
                    });
                } else if end_of_message {
                    match state.inbox.back_mut() {
                        Some(tail) => tail.end_of_message = true,
                        // Inbox already drained: the boundary applies to
                        // bytes the consumer has consumed.
                        None => state.orphan_ends += 1,
                    }
                }
                drop(state);
                shared.readable.notify_all();
            }
            FrameKind::Open => {
                if let Some(callback) = &mut on_stream {
                    let stream = core.make_stream(header.stream_id);
                    callback(stream);
                }
                // Client role: peers must not open streams toward us;
                // tolerate (ignore) rather than kill the trunk.
            }
            FrameKind::Close => {
                if header.stream_id == TRUNK_STREAM {
                    break; // GOAWAY
                }
                let target = core.streams.lock().unwrap().get(&header.stream_id).cloned();
                if let Some(shared) = target {
                    shared.state.lock().unwrap().closed = true;
                    shared.readable.notify_all();
                }
            }
            FrameKind::Credit => {
                let target = core.streams.lock().unwrap().get(&header.stream_id).cloned();
                if let Some(shared) = target {
                    let mut state = shared.state.lock().unwrap();
                    state.credit += u64::from(header.len);
                    drop(state);
                    shared.writable.notify_all();
                }
            }
        }
    }
    core.poison();
}

/// One multiplexed sub-stream: a full [`Transport`] multiplexed over its
/// trunk. Blocking reads park on the inbox; writes stage locally and leave
/// as [`CHUNK`]-bounded DATA frames (at flush on the blocking path,
/// immediately on the nonblocking one).
pub struct MuxStream {
    id: u32,
    trunk: Arc<TrunkCore>,
    shared: Arc<StreamShared>,
    tx_cipher: Option<Box<dyn CipherSuite>>,
    /// Blocking-path staging: bytes written since the last flush.
    out: Vec<u8>,
    /// Already-emitted prefix of `out` (chunks leave eagerly at CHUNK size).
    out_pos: usize,
    /// Nonblocking-path encryption staging (reused, no per-write alloc).
    scratch: Vec<u8>,
    /// Inbox chunk currently being consumed.
    current: Option<InChunk>,
    /// Bytes consumed since the last CREDIT grant we sent.
    consumed: u64,
    /// Chunks emitted for the message being assembled (blocking path).
    chunks_in_msg: u64,
    /// Payload bytes emitted for the message being assembled.
    msg_bytes: u64,
    /// Payload bytes consumed of the incoming message being assembled.
    in_msg_bytes: u64,
    read_deadline: Option<Duration>,
    stats: TransportStats,
    obs: ObsHandle,
}

impl MuxStream {
    /// The stream's id on the trunk.
    pub fn stream_id(&self) -> u32 {
        self.id
    }

    /// Account consumed bytes and re-grant credit to the sender once the
    /// refresh threshold is reached. Grant failures mean the trunk died;
    /// reads may still drain the inbox, so they are not surfaced here.
    fn note_consumed(&mut self, n: usize) {
        self.consumed += n as u64;
        if self.consumed >= u64::from(CREDIT_REFRESH) {
            let grant = self.consumed.min(u64::from(u32::MAX)) as u32;
            let _ = self.trunk.send_frame(
                FrameHeader {
                    stream_id: self.id,
                    kind: FrameKind::Credit,
                    len: grant,
                },
                &[],
            );
            self.consumed -= u64::from(grant);
        }
    }

    /// Account message boundaries whose marker frames landed after the
    /// inbox drained (must run before consuming newer chunks, so the
    /// boundary attaches to the bytes already consumed).
    fn drain_orphan_ends(&mut self, state: &mut StreamState) {
        while state.orphan_ends > 0 {
            state.orphan_ends -= 1;
            self.stats.record_message_received();
            self.obs.emit_message(Dir::Received, self.in_msg_bytes);
            self.in_msg_bytes = 0;
        }
    }

    /// Copy out of the current inbox chunk (which must be present).
    fn consume_current(&mut self, buf: &mut [u8]) -> usize {
        let chunk = self.current.as_mut().expect("current chunk");
        let n = buf.len().min(chunk.buf.len() - chunk.pos);
        buf[..n].copy_from_slice(&chunk.buf[chunk.pos..chunk.pos + n]);
        chunk.pos += n;
        self.stats.record_recv(n as u64);
        self.in_msg_bytes += n as u64;
        if chunk.pos == chunk.buf.len() {
            let ended = chunk.end_of_message;
            // Dropping the chunk returns its buffer to the pool.
            self.current = None;
            if ended {
                self.stats.record_message_received();
                self.obs.emit_message(Dir::Received, self.in_msg_bytes);
                self.in_msg_bytes = 0;
            }
        }
        self.note_consumed(n);
        n
    }

    /// Emit `n` staged bytes as one DATA frame, waiting for send credit.
    /// `n == 0` with `end_of_message` emits a bare message-end marker.
    fn emit_chunk(&mut self, n: usize, end_of_message: bool) -> io::Result<()> {
        debug_assert!(n <= CHUNK);
        if n > 0 {
            let mut state = self.shared.state.lock().unwrap();
            while state.credit < n as u64 && !state.poisoned {
                state = self.shared.writable.wait(state).unwrap();
            }
            if state.poisoned {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "mux trunk dead"));
            }
            state.credit -= n as u64;
        }
        let payload = &mut self.out[self.out_pos..self.out_pos + n];
        if let Some(cipher) = &mut self.tx_cipher {
            cipher.apply(payload);
        }
        self.trunk.send_frame(
            FrameHeader {
                stream_id: self.id,
                kind: FrameKind::Data { end_of_message },
                len: n as u32,
            },
            payload,
        )?;
        self.out_pos += n;
        self.chunks_in_msg += 1;
        self.msg_bytes += n as u64;
        self.obs
            .emit_stream_frame(self.id, Dir::Sent, n as u64, end_of_message);
        Ok(())
    }
}

impl Read for MuxStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            if self.current.is_some() {
                return Ok(self.consume_current(buf));
            }
            let shared = Arc::clone(&self.shared);
            let mut state = shared.state.lock().unwrap();
            loop {
                self.drain_orphan_ends(&mut state);
                if let Some(chunk) = state.inbox.pop_front() {
                    drop(state);
                    self.current = Some(chunk);
                    break;
                }
                if state.closed {
                    return Ok(0);
                }
                if state.poisoned {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "mux trunk dead",
                    ));
                }
                match self.read_deadline {
                    Some(deadline) => {
                        let (guard, timeout) =
                            shared.readable.wait_timeout(state, deadline).unwrap();
                        state = guard;
                        if timeout.timed_out()
                            && state.inbox.is_empty()
                            && !state.closed
                            && !state.poisoned
                        {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "read deadline exceeded",
                            ));
                        }
                    }
                    None => state = shared.readable.wait(state).unwrap(),
                }
            }
        }
    }
}

impl Write for MuxStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out.extend_from_slice(buf);
        self.stats.record_send(buf.len() as u64);
        // Full chunks leave eagerly: a bulk write starts interleaving with
        // sibling streams before its flush, and the staging buffer stays
        // bounded near CHUNK instead of the whole transfer. Strictly
        // greater: the last full chunk is held back so the message-end
        // flag always rides a data chunk at flush.
        while self.out.len() - self.out_pos > CHUNK {
            self.emit_chunk(CHUNK, false)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        let remainder = self.out.len() - self.out_pos;
        if remainder == 0 {
            debug_assert_eq!(self.chunks_in_msg, 0, "write holds back the last chunk");
            return Ok(()); // empty flush is not a message
        }
        self.emit_chunk(remainder, true)?;
        self.stats.record_message();
        self.obs.emit_message(Dir::Sent, self.msg_bytes);
        self.out.clear();
        self.out_pos = 0;
        self.chunks_in_msg = 0;
        self.msg_bytes = 0;
        Ok(())
    }
}

impl Transport for MuxStream {
    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_deadline = timeout;
        Ok(())
    }

    fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    // Streams are inherently dual-mode (condvar-backed inbox, write-through
    // sends): both halves coexist, like the channel transport.
    fn set_nonblocking(&mut self, _nonblocking: bool) -> io::Result<()> {
        Ok(())
    }

    fn poll_readable(&mut self) -> io::Result<bool> {
        if self.current.is_some() {
            return Ok(true);
        }
        let state = self.shared.state.lock().unwrap();
        Ok(!state.inbox.is_empty() || state.closed || state.poisoned)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<Progress> {
        if buf.is_empty() {
            return Ok(Progress::Ready(0));
        }
        if self.current.is_none() {
            let shared = Arc::clone(&self.shared);
            let mut state = shared.state.lock().unwrap();
            self.drain_orphan_ends(&mut state);
            match state.inbox.pop_front() {
                Some(chunk) => {
                    drop(state);
                    self.current = Some(chunk);
                }
                // EOF for both close and trunk death: Ready(0) lets the
                // reactor run its normal teardown.
                None if state.closed || state.poisoned => return Ok(Progress::Ready(0)),
                None => return Ok(Progress::Pending),
            }
        }
        Ok(Progress::Ready(self.consume_current(buf)))
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<Progress> {
        if buf.is_empty() {
            return Ok(Progress::Ready(0));
        }
        let mut n = buf.len().min(CHUNK);
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.poisoned {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "mux trunk dead"));
            }
            if state.credit == 0 {
                // Out of window: the reactor keeps the bytes in its out
                // buffer and retries; the CREDIT frame restores progress.
                return Ok(Progress::Pending);
            }
            n = n.min(state.credit as usize);
            state.credit -= n as u64;
        }
        // Write-through: no message boundary is known here (the reactor
        // flushes opportunistically), so frames go out unflagged and the
        // peer treats the stream as a plain byte queue.
        self.scratch.clear();
        self.scratch.extend_from_slice(&buf[..n]);
        if let Some(cipher) = &mut self.tx_cipher {
            cipher.apply(&mut self.scratch);
        }
        let header = FrameHeader {
            stream_id: self.id,
            kind: FrameKind::Data {
                end_of_message: false,
            },
            len: n as u32,
        };
        // Borrow dance: send_frame needs &self.trunk and &self.scratch.
        let trunk = Arc::clone(&self.trunk);
        trunk.send_frame(header, &self.scratch)?;
        self.stats.record_send(n as u64);
        self.obs
            .emit_stream_frame(self.id, Dir::Sent, n as u64, false);
        Ok(Progress::Ready(n))
    }
}

impl Drop for MuxStream {
    fn drop(&mut self) {
        self.trunk.streams.lock().unwrap().remove(&self.id);
        let _ = self.trunk.send_frame(
            FrameHeader {
                stream_id: self.id,
                kind: FrameKind::Close,
                len: 0,
            },
            &[],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;
    use std::sync::mpsc;

    /// A connected client peer + server peer over an in-process channel,
    /// with server streams delivered on an mpsc receiver.
    fn peer_pair(
        client_cfg: MuxConfig,
        server_cfg: MuxConfig,
    ) -> (MuxPeer, MuxPeer, mpsc::Receiver<MuxStream>) {
        let (a, b) = channel_pair();
        let (ar, aw) = (Box::new(a) as Box<dyn Transport>).into_split().unwrap();
        let (br, bw) = (Box::new(b) as Box<dyn Transport>).into_split().unwrap();
        let client = MuxPeer::client(ar, aw, client_cfg);
        let (tx, rx) = mpsc::channel();
        let server = MuxPeer::server(br, bw, server_cfg, move |s| {
            let _ = tx.send(s);
        });
        (client, server, rx)
    }

    fn send(t: &mut impl Transport, msg: &[u8]) {
        t.write_all(msg).unwrap();
        t.flush().unwrap();
    }

    fn recv(t: &mut impl Transport, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        t.read_exact(&mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_one_stream() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        send(&mut s, b"ping");
        let mut peer = accepted.recv().unwrap();
        assert_eq!(recv(&mut peer, 4), b"ping");
        send(&mut peer, b"pong");
        assert_eq!(recv(&mut s, 4), b"pong");
        assert_eq!(s.stats().messages_sent, 1);
        assert_eq!(s.stats().messages_received, 1);
    }

    #[test]
    fn streams_are_independent_byte_queues() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s1 = client.open_stream().unwrap();
        let mut s2 = client.open_stream().unwrap();
        assert_ne!(s1.stream_id(), s2.stream_id());
        send(&mut s2, b"on-two");
        send(&mut s1, b"on-one");
        // Acceptance order follows OPEN frames (open_stream time), not
        // first-data order: s1 was opened first.
        let mut p1 = accepted.recv().unwrap();
        let mut p2 = accepted.recv().unwrap();
        assert_eq!(p1.stream_id(), s1.stream_id());
        assert_eq!(p2.stream_id(), s2.stream_id());
        assert_eq!(recv(&mut p1, 6), b"on-one");
        assert_eq!(recv(&mut p2, 6), b"on-two");
    }

    #[test]
    fn bulk_transfer_is_chunked_and_reassembled() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        let payload: Vec<u8> = (0..3 * CHUNK + 1234).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let t = std::thread::spawn(move || {
            send(&mut s, &payload);
            s // keep alive until the peer has read everything
        });
        let mut peer = accepted.recv().unwrap();
        let got = recv(&mut peer, expected.len());
        assert_eq!(got, expected);
        assert_eq!(peer.stats().messages_received, 1, "one flush, one message");
        t.join().unwrap();
    }

    #[test]
    fn exact_chunk_multiple_message_ends_cleanly() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        let payload = vec![7u8; 2 * CHUNK];
        let t = std::thread::spawn(move || {
            send(&mut s, &payload);
            s
        });
        let mut peer = accepted.recv().unwrap();
        assert_eq!(recv(&mut peer, 2 * CHUNK), vec![7u8; 2 * CHUNK]);
        assert_eq!(peer.stats().messages_received, 1);
        t.join().unwrap();
    }

    #[test]
    fn flow_control_blocks_then_credits_resume() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        // More than one window of data: the writer must park until the
        // reader drains enough to trigger a CREDIT grant.
        let total = INITIAL_WINDOW as usize + CHUNK * 4;
        let writer = std::thread::spawn(move || {
            send(&mut s, &vec![0xAB; total]);
            s
        });
        let mut peer = accepted.recv().unwrap();
        let got = recv(&mut peer, total);
        assert!(got.iter().all(|&b| b == 0xAB));
        writer.join().unwrap();
    }

    #[test]
    fn nonblocking_write_reports_pending_at_zero_credit() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        // Exhaust the window chunk by chunk without the peer consuming.
        let chunk = vec![0u8; CHUNK];
        let mut sent = 0u64;
        while let Progress::Ready(n) = s.try_write(&chunk).unwrap() {
            sent += n as u64;
        }
        assert_eq!(sent, u64::from(INITIAL_WINDOW));
        // Draining the peer re-credits the writer.
        let mut peer = accepted.recv().unwrap();
        let _ = recv(&mut peer, INITIAL_WINDOW as usize);
        // The CREDIT frame races the assertion: poll briefly.
        let mut progressed = false;
        for _ in 0..100 {
            if let Progress::Ready(n) = s.try_write(&chunk).unwrap() {
                assert!(n > 0);
                progressed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(progressed, "credit grant never unblocked the writer");
    }

    #[test]
    fn small_call_overtakes_inflight_bulk_transfer() {
        // The HOL property at transport level: while a bulk message is
        // mid-flight on stream 1, a small message on stream 2 still gets
        // through (with single-stream framing it would wait for the whole
        // bulk payload).
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut bulk = client.open_stream().unwrap();
        let mut small = client.open_stream().unwrap();
        let total = 4 * INITIAL_WINDOW as usize; // blocks without a reader
        let bulk_writer = std::thread::spawn(move || {
            send(&mut bulk, &vec![1u8; total]);
            bulk
        });
        let mut bulk_peer = accepted.recv().unwrap();
        let mut small_peer = accepted.recv().unwrap();
        // The bulk writer is now stalled on credit mid-message. The small
        // call must complete round-trip regardless.
        send(&mut small, b"urgent");
        assert_eq!(recv(&mut small_peer, 6), b"urgent");
        send(&mut small_peer, b"done!!");
        assert_eq!(recv(&mut small, 6), b"done!!");
        // Now drain the bulk transfer.
        let got = recv(&mut bulk_peer, total);
        assert!(got.iter().all(|&b| b == 1));
        bulk_writer.join().unwrap();
    }

    #[test]
    fn cipher_lanes_encrypt_on_the_wire_and_decrypt_at_the_edge() {
        let key = [0x42u8; 32];
        let cfg = || MuxConfig {
            cipher: CipherSuiteKind::ChaCha20,
            key,
            ..MuxConfig::default()
        };
        let (client, _server, accepted) = peer_pair(cfg(), cfg());
        let mut s = client.open_stream().unwrap();
        send(&mut s, b"secret payload");
        let mut peer = accepted.recv().unwrap();
        assert_eq!(recv(&mut peer, 14), b"secret payload");
        // Both directions, multiple messages: keystream lanes must stay in
        // sync per (stream, direction).
        send(&mut peer, b"ack-1");
        send(&mut peer, b"ack-2");
        assert_eq!(recv(&mut s, 5), b"ack-1");
        assert_eq!(recv(&mut s, 5), b"ack-2");
    }

    #[test]
    fn cleartext_peer_against_cipher_peer_garbles() {
        // Negotiation matters: mismatched cipher configs must not silently
        // interoperate.
        let cipher_cfg = MuxConfig {
            cipher: CipherSuiteKind::ChaCha20,
            key: [9u8; 32],
            ..MuxConfig::default()
        };
        let (client, _server, accepted) = peer_pair(cipher_cfg, MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        send(&mut s, b"secret");
        let mut peer = accepted.recv().unwrap();
        assert_ne!(recv(&mut peer, 6), b"secret");
    }

    #[test]
    fn close_drains_then_eofs() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        send(&mut s, b"last words");
        drop(s); // CLOSE after the data
        let mut peer = accepted.recv().unwrap();
        assert_eq!(recv(&mut peer, 10), b"last words");
        let mut buf = [0u8; 1];
        assert_eq!(peer.read(&mut buf).unwrap(), 0, "EOF after drain");
    }

    #[test]
    fn peer_drop_goaway_poisons_streams() {
        let (client, server, _accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        drop(server);
        // The GOAWAY (or half drop) reaches the client demux and poisons
        // the stream; blocking read fails rather than hanging.
        let mut buf = [0u8; 1];
        let err = s.read_exact(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(client.is_dead());
    }

    #[test]
    fn read_deadline_times_out() {
        let (client, _server, _accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        s.set_read_deadline(Some(Duration::from_millis(15)))
            .unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(
            s.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn try_read_pending_then_ready_then_eof() {
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        send(&mut s, b"x"); // force the peer stream into existence
        let mut peer = accepted.recv().unwrap();
        let _ = recv(&mut peer, 1);
        let mut buf = [0u8; 8];
        assert!(!peer.poll_readable().unwrap());
        assert_eq!(peer.try_read(&mut buf).unwrap(), Progress::Pending);
        send(&mut s, b"abc");
        // Delivery is asynchronous (demux thread): poll.
        let mut got = 0;
        for _ in 0..200 {
            match peer.try_read(&mut buf).unwrap() {
                Progress::Ready(n) => {
                    got = n;
                    break;
                }
                Progress::Pending => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        assert_eq!(got, 3);
        assert_eq!(&buf[..3], b"abc");
        drop(s);
        for _ in 0..200 {
            if peer.poll_readable().unwrap() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(peer.try_read(&mut buf).unwrap(), Progress::Ready(0));
    }

    #[test]
    fn pooled_inbox_buffers_recycle() {
        let pool = BufferPool::new();
        let server_cfg = MuxConfig {
            pool: pool.clone(),
            ..MuxConfig::default()
        };
        let (client, _server, accepted) = peer_pair(MuxConfig::default(), server_cfg);
        let mut s = client.open_stream().unwrap();
        send(&mut s, &vec![3u8; 4096]);
        let mut peer = accepted.recv().unwrap();
        let _ = recv(&mut peer, 4096);
        // The inbox chunk came from the pool and went back on consumption.
        let stats = pool.stats();
        assert!(
            stats.returns >= 1,
            "inbox chunk was not recycled: {stats:?}"
        );
        // Steady state: subsequent messages of the same class are pool hits.
        send(&mut s, &vec![4u8; 4096]);
        let _ = recv(&mut peer, 4096);
        assert!(pool.stats().hits >= 1);
    }

    #[test]
    fn stream_frames_are_observed_per_chunk() {
        let recorder = std::sync::Arc::new(rcuda_obs::Recorder::new());
        let client_cfg = MuxConfig {
            obs: recorder.handle(),
            ..MuxConfig::default()
        };
        let (client, _server, accepted) = peer_pair(client_cfg, MuxConfig::default());
        let mut s = client.open_stream().unwrap();
        let payload = vec![0u8; CHUNK + 100];
        let sid = s.stream_id();
        let t = std::thread::spawn(move || {
            send(&mut s, &payload);
            s
        });
        let mut peer = accepted.recv().unwrap();
        let _ = recv(&mut peer, CHUNK + 100);
        let s = t.join().unwrap();
        let report = recorder.report();
        let per_stream = report.per_stream();
        let (_, totals) = per_stream
            .iter()
            .find(|(id, _)| *id == sid)
            .expect("stream appears in per-stream totals");
        assert_eq!(totals.sent_bytes, (CHUNK + 100) as u64);
        assert_eq!(totals.sent_count, 2, "two DATA frames: CHUNK + remainder");
        drop(s);
    }
}
