//! A [`Transport`] wrapper that can replace its inner connection.
//!
//! [`ReconnectTransport`] holds a *dial factory*: a closure producing a
//! fresh connected transport to the same peer. [`Transport::reconnect`]
//! drops the dead inner transport first — so the peer observes EOF and can
//! park the session for resume — then dials, re-applies the last read
//! deadline, and folds the dead incarnation's traffic counters into a
//! running total. This gives reconnect support to transports that cannot
//! natively re-dial (a [`crate::ChannelTransport`] endpoint has no address
//! to call back), and lets tests spawn a fresh in-process server per
//! connection.

use std::io::{self, Read, Write};
use std::time::Duration;

use crate::stats::TransportStats;
use crate::Transport;

/// A transport whose connection can be replaced via a dial factory.
pub struct ReconnectTransport<T: Transport> {
    inner: Option<T>,
    dial: Box<dyn FnMut() -> io::Result<T> + Send>,
    /// Counters accumulated by previous incarnations of the connection.
    stats_base: TransportStats,
    /// Last deadline set, re-applied after each reconnect.
    read_timeout: Option<Duration>,
}

impl<T: Transport> ReconnectTransport<T> {
    /// Wrap an already-connected transport with a factory for replacements.
    pub fn new(
        initial: T,
        dial: impl FnMut() -> io::Result<T> + Send + 'static,
    ) -> ReconnectTransport<T> {
        ReconnectTransport {
            inner: Some(initial),
            dial: Box::new(dial),
            stats_base: TransportStats::default(),
            read_timeout: None,
        }
    }

    /// The current connection.
    pub fn inner(&self) -> &T {
        self.inner.as_ref().expect("connection present")
    }

    fn inner_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("connection present")
    }
}

impl<T: Transport> Read for ReconnectTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner_mut().read(buf)
    }
}

impl<T: Transport> Write for ReconnectTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner_mut().write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner_mut().flush()
    }
}

impl<T: Transport> Transport for ReconnectTransport<T> {
    fn stats(&self) -> TransportStats {
        let mut total = self.stats_base;
        total.absorb(&self.inner().stats());
        total
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.inner_mut().set_read_deadline(timeout)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        // Retire the old connection *before* dialing: the peer must see the
        // disconnect (and park the session) before the new connection's
        // handshake arrives.
        if let Some(old) = self.inner.take() {
            self.stats_base.absorb(&old.stats());
            drop(old);
        }
        let mut fresh = (self.dial)()?;
        fresh.set_read_deadline(self.read_timeout)?;
        self.stats_base.record_reconnect();
        self.inner = Some(fresh);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{channel_pair, ChannelTransport};
    use std::sync::mpsc;

    /// A dial factory backed by a queue of pre-created endpoints.
    fn queued_dialer(
        endpoints: Vec<ChannelTransport>,
    ) -> impl FnMut() -> io::Result<ChannelTransport> + Send + 'static {
        let mut q: Vec<ChannelTransport> = endpoints.into_iter().rev().collect();
        move || {
            q.pop()
                .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, "dialer exhausted"))
        }
    }

    #[test]
    fn reconnect_swaps_the_connection() {
        let (a1, mut b1) = channel_pair();
        let (a2, mut b2) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));

        rt.write_all(b"one").unwrap();
        rt.flush().unwrap();
        let mut buf = [0u8; 3];
        b1.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"one");

        drop(b1); // peer dies
        rt.write_all(b"x").unwrap();
        assert_eq!(rt.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);

        rt.reconnect().unwrap();
        rt.write_all(b"two").unwrap();
        rt.flush().unwrap();
        b2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"two");
    }

    #[test]
    fn stats_accumulate_across_incarnations() {
        let (a1, b1) = channel_pair();
        let (a2, _b2) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));
        rt.write_all(&[0u8; 10]).unwrap();
        rt.flush().unwrap();
        drop(b1);
        rt.reconnect().unwrap();
        rt.write_all(&[0u8; 5]).unwrap();
        rt.flush().unwrap();
        let s = rt.stats();
        assert_eq!(s.bytes_sent, 15, "totals span the reconnect");
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.reconnects, 1);
    }

    #[test]
    fn deadline_survives_reconnect() {
        let (a1, b1) = channel_pair();
        let (a2, _b2_alive) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));
        rt.set_read_deadline(Some(Duration::from_millis(10)))
            .unwrap();
        drop(b1);
        rt.reconnect().unwrap();
        // The fresh connection (peer alive, silent) must time out rather
        // than block: the deadline was re-applied.
        let mut buf = [0u8; 1];
        assert_eq!(
            rt.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn exhausted_dialer_surfaces_dial_error() {
        let (a1, _b1) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![]));
        assert_eq!(
            rt.reconnect().unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
    }

    #[test]
    fn old_connection_dropped_before_dialing() {
        // The dial factory must observe the old peer's EOF: model a server
        // that only "accepts" after seeing the previous connection close.
        let (a1, b1) = channel_pair();
        let (notify_tx, notify_rx) = mpsc::channel::<()>();
        let watcher = std::thread::spawn(move || {
            let mut b1 = b1;
            let mut buf = [0u8; 1];
            // EOF on the old connection…
            assert_eq!(
                b1.read_exact(&mut buf).unwrap_err().kind(),
                io::ErrorKind::UnexpectedEof
            );
            notify_tx.send(()).unwrap();
        });
        let mut rt = ReconnectTransport::new(a1, move || {
            // …must have been observable before the dial runs.
            notify_rx
                .recv_timeout(Duration::from_secs(2))
                .map_err(|_| io::Error::other("old connection not dropped before dial"))?;
            Ok(channel_pair().0)
        });
        rt.reconnect().unwrap();
        watcher.join().unwrap();
    }
}
