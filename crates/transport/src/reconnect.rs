//! A [`Transport`] wrapper that can replace its inner connection.
//!
//! [`ReconnectTransport`] holds one or more *dial factories*: closures
//! producing a fresh connected transport. [`Transport::reconnect`] drops
//! the dead inner transport first — so the peer observes EOF and can park
//! the session for resume — then dials, re-applies the last read deadline,
//! and folds the dead incarnation's traffic counters into a running total.
//! This gives reconnect support to transports that cannot natively re-dial
//! (a [`crate::ChannelTransport`] endpoint has no address to call back),
//! and lets tests spawn a fresh in-process server per connection.
//!
//! With [`ReconnectTransport::with_candidates`] the wrapper holds a whole
//! candidate *list* (e.g. every daemon a broker advertised): one reconnect
//! walks the list starting from the candidate that last succeeded, so a
//! session sticks to its daemon while it lives but fails over to a survivor
//! when it dies. If every candidate refuses, the *last* dial error is
//! reported — the freshest evidence of the cluster's state — not the first.

use rcuda_obs::ObsHandle;
use std::io::{self, Read, Write};
use std::time::Duration;

use crate::stats::TransportStats;
use crate::Transport;

/// One dial candidate: a closure producing a fresh connected transport.
pub type DialFn<T> = Box<dyn FnMut() -> io::Result<T> + Send>;

/// A transport whose connection can be replaced via dial factories.
pub struct ReconnectTransport<T: Transport> {
    inner: Option<T>,
    /// Candidate dialers, tried in rotation starting at `cursor`.
    dials: Vec<DialFn<T>>,
    /// Index of the candidate that produced the current (or most recent)
    /// connection; the next reconnect starts here.
    cursor: usize,
    /// Counters accumulated by previous incarnations of the connection.
    stats_base: TransportStats,
    /// Last deadline set, re-applied after each reconnect.
    read_timeout: Option<Duration>,
    /// Observer handle, re-installed on each fresh connection.
    obs: ObsHandle,
}

fn not_connected() -> io::Error {
    io::Error::new(
        io::ErrorKind::NotConnected,
        "connection lost and not re-established (last reconnect failed)",
    )
}

impl<T: Transport> ReconnectTransport<T> {
    /// Wrap an already-connected transport with a factory for replacements.
    pub fn new(
        initial: T,
        dial: impl FnMut() -> io::Result<T> + Send + 'static,
    ) -> ReconnectTransport<T> {
        ReconnectTransport::with_candidates(initial, vec![Box::new(dial) as DialFn<T>])
    }

    /// Wrap an already-connected transport with a *list* of dial candidates.
    /// Each reconnect walks the list in rotation starting at the candidate
    /// that last produced a working connection; the first success wins. The
    /// list must be non-empty.
    pub fn with_candidates(initial: T, dials: Vec<DialFn<T>>) -> ReconnectTransport<T> {
        assert!(!dials.is_empty(), "need at least one dial candidate");
        ReconnectTransport {
            inner: Some(initial),
            dials,
            cursor: 0,
            stats_base: TransportStats::default(),
            read_timeout: None,
            obs: ObsHandle::none(),
        }
    }

    /// How many dial candidates this wrapper rotates over.
    pub fn candidate_count(&self) -> usize {
        self.dials.len()
    }

    /// The current connection (`None` between a failed reconnect and the
    /// next successful one).
    pub fn inner(&self) -> Option<&T> {
        self.inner.as_ref()
    }

    fn inner_mut(&mut self) -> io::Result<&mut T> {
        self.inner.as_mut().ok_or_else(not_connected)
    }
}

impl<T: Transport> Read for ReconnectTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner_mut()?.read(buf)
    }
}

impl<T: Transport> Write for ReconnectTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner_mut()?.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        // Forward so a vectored-capable inner transport (TCP) keeps its
        // zero-copy path through the wrapper.
        self.inner_mut()?.write_vectored(bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner_mut()?.flush()
    }
}

impl<T: Transport> Transport for ReconnectTransport<T> {
    fn stats(&self) -> TransportStats {
        // Absorb only a live connection: after a failed re-dial the retired
        // incarnations' counters (already folded into `stats_base`) must
        // still be reported, not dropped — and certainly not panicked over.
        let mut total = self.stats_base;
        if let Some(inner) = &self.inner {
            total.absorb(&inner.stats());
        }
        total
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        match self.inner.as_mut() {
            // Remember the deadline even while disconnected; it is
            // re-applied to the next fresh connection.
            None => Ok(()),
            Some(inner) => inner.set_read_deadline(timeout),
        }
    }

    fn reconnect(&mut self) -> io::Result<()> {
        // Retire the old connection *before* dialing: the peer must see the
        // disconnect (and park the session) before the new connection's
        // handshake arrives.
        if let Some(old) = self.inner.take() {
            self.stats_base.absorb(&old.stats());
            drop(old);
        }
        // Walk the candidates starting at the one that last worked. When
        // every candidate refuses, surface the *last* error — it reflects
        // the freshest cluster state, where the first may describe a daemon
        // that has since been replaced.
        let mut last_err: Option<io::Error> = None;
        for i in 0..self.dials.len() {
            let idx = (self.cursor + i) % self.dials.len();
            match (self.dials[idx])() {
                Ok(mut fresh) => {
                    fresh.set_read_deadline(self.read_timeout)?;
                    fresh.set_observer(self.obs.clone());
                    self.cursor = idx;
                    self.stats_base.record_reconnect();
                    self.obs.emit_reconnect();
                    self.inner = Some(fresh);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(not_connected))
    }

    fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs.clone();
        if let Some(inner) = self.inner.as_mut() {
            inner.set_observer(obs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{channel_pair, ChannelTransport};
    use std::sync::mpsc;

    /// A dial factory backed by a queue of pre-created endpoints.
    fn queued_dialer(
        endpoints: Vec<ChannelTransport>,
    ) -> impl FnMut() -> io::Result<ChannelTransport> + Send + 'static {
        let mut q: Vec<ChannelTransport> = endpoints.into_iter().rev().collect();
        move || {
            q.pop()
                .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, "dialer exhausted"))
        }
    }

    #[test]
    fn reconnect_swaps_the_connection() {
        let (a1, mut b1) = channel_pair();
        let (a2, mut b2) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));

        rt.write_all(b"one").unwrap();
        rt.flush().unwrap();
        let mut buf = [0u8; 3];
        b1.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"one");

        drop(b1); // peer dies
        rt.write_all(b"x").unwrap();
        assert_eq!(rt.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);

        rt.reconnect().unwrap();
        rt.write_all(b"two").unwrap();
        rt.flush().unwrap();
        b2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"two");
    }

    #[test]
    fn stats_accumulate_across_incarnations() {
        let (a1, b1) = channel_pair();
        let (a2, _b2) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));
        rt.write_all(&[0u8; 10]).unwrap();
        rt.flush().unwrap();
        drop(b1);
        rt.reconnect().unwrap();
        rt.write_all(&[0u8; 5]).unwrap();
        rt.flush().unwrap();
        let s = rt.stats();
        assert_eq!(s.bytes_sent, 15, "totals span the reconnect");
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.reconnects, 1);
    }

    #[test]
    fn deadline_survives_reconnect() {
        let (a1, b1) = channel_pair();
        let (a2, _b2_alive) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));
        rt.set_read_deadline(Some(Duration::from_millis(10)))
            .unwrap();
        drop(b1);
        rt.reconnect().unwrap();
        // The fresh connection (peer alive, silent) must time out rather
        // than block: the deadline was re-applied.
        let mut buf = [0u8; 1];
        assert_eq!(
            rt.read_exact(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn exhausted_dialer_surfaces_dial_error() {
        let (a1, _b1) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![]));
        assert_eq!(
            rt.reconnect().unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
    }

    #[test]
    fn failed_redial_keeps_counters_and_degrades_gracefully() {
        let (a1, b1) = channel_pair();
        let (a2, mut b2) = channel_pair();
        // First dial attempt fails, second succeeds.
        let mut attempts = vec![Ok(a2), Err(io::ErrorKind::ConnectionRefused)];
        let mut rt = ReconnectTransport::new(a1, move || match attempts.pop().unwrap() {
            Ok(t) => Ok(t),
            Err(kind) => Err(io::Error::new(kind, "refused")),
        });
        rt.write_all(&[0u8; 10]).unwrap();
        rt.flush().unwrap();
        drop(b1);

        assert_eq!(
            rt.reconnect().unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        // No connection — but the retired incarnation's counters survive
        // (this used to panic on `stats()` and every IO method).
        let s = rt.stats();
        assert_eq!(s.bytes_sent, 10);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.reconnects, 0, "failed attempts are not reconnects");
        let mut buf = [0u8; 1];
        assert_eq!(
            rt.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::NotConnected
        );
        assert_eq!(
            rt.write(&[1]).unwrap_err().kind(),
            io::ErrorKind::NotConnected
        );
        assert_eq!(rt.flush().unwrap_err().kind(), io::ErrorKind::NotConnected);
        // Deadlines set while disconnected are remembered, not errors.
        rt.set_read_deadline(Some(Duration::from_millis(10)))
            .unwrap();

        // The next attempt succeeds and service resumes with continuous
        // counters and the remembered deadline.
        rt.reconnect().unwrap();
        rt.write_all(&[0u8; 5]).unwrap();
        rt.flush().unwrap();
        b2.read_exact(&mut [0u8; 5]).unwrap();
        let s = rt.stats();
        assert_eq!(s.bytes_sent, 15, "no counter lost across the outage");
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.reconnects, 1);
        assert_eq!(
            rt.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::TimedOut,
            "deadline survived the outage"
        );
    }

    #[test]
    fn candidate_list_fails_over_to_the_next_dialer() {
        let (a1, b1) = channel_pair();
        let (a2, mut b2) = channel_pair();
        // Candidate 0 is permanently dead; candidate 1 serves.
        let dead: DialFn<ChannelTransport> = Box::new(|| {
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "daemon down",
            ))
        });
        let mut rest = vec![a2];
        let alive: DialFn<ChannelTransport> = Box::new(move || {
            rest.pop()
                .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, "exhausted"))
        });
        let mut rt = ReconnectTransport::with_candidates(a1, vec![dead, alive]);
        assert_eq!(rt.candidate_count(), 2);
        drop(b1);
        rt.reconnect().unwrap();
        rt.write_all(b"hi").unwrap();
        rt.flush().unwrap();
        let mut buf = [0u8; 2];
        b2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        assert_eq!(rt.stats().reconnects, 1);
    }

    #[test]
    fn candidate_rotation_is_sticky_on_the_last_success() {
        // Candidate 1 succeeds once; the next reconnect must start there
        // (session affinity), only then move on to candidate 0.
        let order = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mk = |id: usize,
                  endpoints: Vec<ChannelTransport>,
                  order: std::sync::Arc<std::sync::Mutex<Vec<usize>>>|
         -> DialFn<ChannelTransport> {
            let mut q: Vec<ChannelTransport> = endpoints.into_iter().rev().collect();
            Box::new(move || {
                order.lock().unwrap().push(id);
                q.pop()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, "down"))
            })
        };
        let (a1, b1) = channel_pair();
        let (c1a, _c1b) = channel_pair();
        let (c1c, _c1d) = channel_pair();
        let d0 = mk(0, vec![], order.clone()); // always refuses
        let d1 = mk(1, vec![c1a, c1c], order.clone()); // serves twice
        let mut rt = ReconnectTransport::with_candidates(a1, vec![d0, d1]);
        drop(b1);
        rt.reconnect().unwrap(); // tries 0 (refused), then 1 (ok)
        rt.reconnect().unwrap(); // starts at 1 directly
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 1]);
    }

    #[test]
    fn exhausted_candidate_list_reports_the_last_error() {
        let (a1, _b1) = channel_pair();
        let first: DialFn<ChannelTransport> = Box::new(|| {
            Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "stale: first candidate",
            ))
        });
        let second: DialFn<ChannelTransport> = Box::new(|| {
            Err(io::Error::new(
                io::ErrorKind::HostUnreachable,
                "fresh: last candidate",
            ))
        });
        let mut rt = ReconnectTransport::with_candidates(a1, vec![first, second]);
        let err = rt.reconnect().unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::HostUnreachable,
            "exhaustion must surface the most recent dial error, got: {err}"
        );
    }

    #[test]
    fn observer_is_reinstalled_on_the_fresh_connection() {
        let rec = rcuda_obs::Recorder::new();
        let (a1, b1) = channel_pair();
        let (a2, mut b2) = channel_pair();
        let mut rt = ReconnectTransport::new(a1, queued_dialer(vec![a2]));
        rt.set_observer(rec.handle());
        rt.write_all(&[0u8; 3]).unwrap();
        rt.flush().unwrap();
        drop(b1);
        rt.reconnect().unwrap();
        rt.write_all(&[0u8; 7]).unwrap();
        rt.flush().unwrap();
        b2.read_exact(&mut [0u8; 7]).unwrap();
        let report = rec.report();
        assert_eq!(report.reconnects, 1);
        assert_eq!(
            report.messages.sent_count, 2,
            "messages on both incarnations observed"
        );
        assert_eq!(report.messages.sent_bytes, 10);
    }

    #[test]
    fn old_connection_dropped_before_dialing() {
        // The dial factory must observe the old peer's EOF: model a server
        // that only "accepts" after seeing the previous connection close.
        let (a1, b1) = channel_pair();
        let (notify_tx, notify_rx) = mpsc::channel::<()>();
        let watcher = std::thread::spawn(move || {
            let mut b1 = b1;
            let mut buf = [0u8; 1];
            // EOF on the old connection…
            assert_eq!(
                b1.read_exact(&mut buf).unwrap_err().kind(),
                io::ErrorKind::UnexpectedEof
            );
            notify_tx.send(()).unwrap();
        });
        let mut rt = ReconnectTransport::new(a1, move || {
            // …must have been observable before the dial runs.
            notify_rx
                .recv_timeout(Duration::from_secs(2))
                .map_err(|_| io::Error::other("old connection not dropped before dial"))?;
            Ok(channel_pair().0)
        });
        rt.reconnect().unwrap();
        watcher.join().unwrap();
    }
}
