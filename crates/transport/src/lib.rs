//! Byte transports between the rCUDA client and server.
//!
//! The protocol (`rcuda-proto`) is transport-agnostic: it only needs a byte
//! stream in each direction with message boundaries marked by `flush`. Three
//! transports implement that contract:
//!
//! * [`TcpTransport`] — real sockets with `TCP_NODELAY` set, reproducing the
//!   paper's configuration ("we disabled the TCP-layer congestion control
//!   algorithm ... Nagle's algorithm", §IV-A). Used by the functional
//!   client/server over loopback or a real network.
//! * [`ChannelTransport`] — in-process crossbeam channels; zero-latency, for
//!   unit and integration tests.
//! * [`SimTransport`] — a channel pair that charges each flushed message's
//!   latency to a shared (virtual) clock according to a
//!   [`rcuda_netsim::NetworkModel`]; this is how a full client/server
//!   execution is simulated over GigaE, 40GI, or any of the paper's five
//!   target HPC networks.
//!
//! ## Contract
//!
//! Writers MUST call [`std::io::Write::flush`] exactly once per protocol
//! message: the flush marks the message boundary that latency accounting
//! (and TCP packetization) keys on.

pub mod channel;
pub mod fault;
pub mod reconnect;
pub mod sim;
pub mod stats;
pub mod tcp;

use std::io;
use std::time::Duration;

pub use rcuda_obs::ObsHandle;

pub use channel::{channel_pair, ChannelTransport};
pub use fault::{Fault, FaultInjector, FaultKind, FaultPlan};
pub use reconnect::ReconnectTransport;
pub use sim::{sim_pair, SimTransport};
pub use stats::TransportStats;
pub use tcp::TcpTransport;

/// A bidirectional byte stream with per-message flush semantics.
pub trait Transport: io::Read + io::Write + Send {
    /// Cumulative traffic counters (used by tests to verify the Table I /
    /// Table II byte accounting end-to-end).
    fn stats(&self) -> TransportStats;

    /// Bound every subsequent read: a read that makes no progress for
    /// `timeout` fails with [`io::ErrorKind::TimedOut`]. `None` restores
    /// blocking reads. Transports without a timing source accept the call
    /// as a no-op (the default) — callers must not rely on enforcement
    /// unless the concrete transport documents it.
    fn set_read_deadline(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }

    /// Tear down the current connection and establish a fresh one to the
    /// same peer. Counters survive; buffered/un-acked data does not.
    /// Transports that cannot re-dial return [`io::ErrorKind::Unsupported`]
    /// (the default).
    fn reconnect(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport cannot reconnect",
        ))
    }

    /// Install an observability sink: the transport reports one
    /// [`rcuda_obs::MessageEvent`] per protocol message (at flush time for
    /// sends, at consumption time for receives) and reconnect episodes.
    /// Uninstrumented transports accept the call as a no-op (the default);
    /// a disarmed handle uninstalls any previous observer.
    fn set_observer(&mut self, _obs: ObsHandle) {}
}
