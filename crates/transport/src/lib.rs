//! Byte transports between the rCUDA client and server.
//!
//! The protocol (`rcuda-proto`) is transport-agnostic: it only needs a byte
//! stream in each direction with message boundaries marked by `flush`. Three
//! transports implement that contract:
//!
//! * [`TcpTransport`] — real sockets with `TCP_NODELAY` set, reproducing the
//!   paper's configuration ("we disabled the TCP-layer congestion control
//!   algorithm ... Nagle's algorithm", §IV-A). Used by the functional
//!   client/server over loopback or a real network.
//! * [`ChannelTransport`] — in-process crossbeam channels; zero-latency, for
//!   unit and integration tests.
//! * [`SimTransport`] — a channel pair that charges each flushed message's
//!   latency to a shared (virtual) clock according to a
//!   [`rcuda_netsim::NetworkModel`]; this is how a full client/server
//!   execution is simulated over GigaE, 40GI, or any of the paper's five
//!   target HPC networks.
//!
//! ## Contract
//!
//! Writers MUST call [`std::io::Write::flush`] exactly once per protocol
//! message: the flush marks the message boundary that latency accounting
//! (and TCP packetization) keys on.

pub mod channel;
pub mod fault;
pub mod mux;
pub mod reconnect;
pub mod sim;
pub mod stats;
pub mod tcp;

use std::io;
use std::time::Duration;

pub use rcuda_obs::ObsHandle;

pub use channel::{channel_pair, ChannelTransport};
pub use fault::{
    Fault, FaultInjector, FaultKind, FaultPlan, FiredFaults, StreamFault, StreamFaultPlan,
    StreamFaultWrite,
};
pub use mux::{MuxConfig, MuxPeer, MuxRole, MuxStream};
pub use reconnect::{DialFn, ReconnectTransport};
pub use sim::{sim_pair, SimTransport};
pub use stats::TransportStats;
pub use tcp::TcpTransport;

/// The owned read half of a split transport (see [`Transport::into_split`]).
pub type ReadHalf = Box<dyn io::Read + Send>;
/// The owned write half of a split transport.
pub type WriteHalf = Box<dyn io::Write + Send>;

/// Progress of one nonblocking I/O attempt (the `WouldBlock`-aware result
/// of [`Transport::try_read`] / [`Transport::try_write`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// `n` bytes moved. `Ready(0)` from a read means end-of-stream (the
    /// peer is gone), mirroring `read`'s 0-return — it is never "try
    /// again".
    Ready(usize),
    /// The operation would block right now; re-attempt after the next
    /// readiness signal. No bytes moved, no state changed.
    Pending,
}

/// A bidirectional byte stream with per-message flush semantics.
///
/// ## The nonblocking half
///
/// Readiness-driven servers (the sharded reactor in `rcuda-server`)
/// multiplex many transports on one thread, so they need I/O attempts that
/// *never park the caller*: [`Transport::set_nonblocking`] switches the
/// endpoint over, after which [`Transport::try_read`] and
/// [`Transport::try_write`] translate `WouldBlock` into
/// [`Progress::Pending`] instead of blocking, and
/// [`Transport::poll_readable`] answers "would a read make progress right
/// now?" without consuming anything. Transports that cannot operate
/// nonblocking keep the defaults and report
/// [`io::ErrorKind::Unsupported`] — the blocking half of the trait is
/// unchanged and remains the contract for client-side use.
pub trait Transport: io::Read + io::Write + Send {
    /// Cumulative traffic counters (used by tests to verify the Table I /
    /// Table II byte accounting end-to-end).
    fn stats(&self) -> TransportStats;

    /// Bound every subsequent read: a read that makes no progress for
    /// `timeout` fails with [`io::ErrorKind::TimedOut`]. `None` restores
    /// blocking reads. Transports without a timing source accept the call
    /// as a no-op (the default) — callers must not rely on enforcement
    /// unless the concrete transport documents it.
    fn set_read_deadline(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }

    /// Tear down the current connection and establish a fresh one to the
    /// same peer. Counters survive; buffered/un-acked data does not.
    /// Transports that cannot re-dial return [`io::ErrorKind::Unsupported`]
    /// (the default).
    fn reconnect(&mut self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport cannot reconnect",
        ))
    }

    /// Install an observability sink: the transport reports one
    /// [`rcuda_obs::MessageEvent`] per protocol message (at flush time for
    /// sends, at consumption time for receives) and reconnect episodes.
    /// Uninstrumented transports accept the call as a no-op (the default);
    /// a disarmed handle uninstalls any previous observer.
    fn set_observer(&mut self, _obs: ObsHandle) {}

    /// Switch the endpoint between blocking and nonblocking operation.
    /// While nonblocking, `try_read`/`try_write` report [`Progress::Pending`]
    /// instead of parking the caller. Transports without a nonblocking mode
    /// return [`io::ErrorKind::Unsupported`] (the default).
    fn set_nonblocking(&mut self, _nonblocking: bool) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no nonblocking mode",
        ))
    }

    /// Whether a `try_read` right now would make progress (data buffered or
    /// EOF observable), without consuming anything. `Ok(false)` means a read
    /// would return [`Progress::Pending`].
    fn poll_readable(&mut self) -> io::Result<bool> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no nonblocking mode",
        ))
    }

    /// Nonblocking read attempt: `Ready(n)` bytes landed in `buf` (`Ready(0)`
    /// = end-of-stream), or `Pending` if the operation would block. Requires
    /// [`Transport::set_nonblocking`] first on transports that distinguish
    /// modes.
    fn try_read(&mut self, _buf: &mut [u8]) -> io::Result<Progress> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no nonblocking mode",
        ))
    }

    /// Nonblocking write attempt: `Ready(n)` bytes accepted, or `Pending` if
    /// the peer's buffers are full. Callers still mark message boundaries
    /// with `flush` once a whole message has been accepted; on a nonblocking
    /// endpoint a flush that cannot complete fails with
    /// [`io::ErrorKind::WouldBlock`] and is safe to retry.
    fn try_write(&mut self, _buf: &[u8]) -> io::Result<Progress> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no nonblocking mode",
        ))
    }

    /// Consume the transport into independently owned read and write
    /// halves, so a demultiplexer thread can block on reads while other
    /// threads write (the foundation of the [`mux`] layer). Splitting
    /// restores blocking mode and clears any read deadline; per-message
    /// accounting moves to the layer above. Transports whose two directions
    /// cannot be separated return [`io::ErrorKind::Unsupported`] (the
    /// default).
    fn into_split(self: Box<Self>) -> io::Result<(ReadHalf, WriteHalf)> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport cannot be split",
        ))
    }
}

impl Transport for Box<dyn Transport> {
    fn stats(&self) -> TransportStats {
        (**self).stats()
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        (**self).set_read_deadline(timeout)
    }

    fn reconnect(&mut self) -> io::Result<()> {
        (**self).reconnect()
    }

    fn set_observer(&mut self, obs: ObsHandle) {
        (**self).set_observer(obs)
    }

    fn set_nonblocking(&mut self, nonblocking: bool) -> io::Result<()> {
        (**self).set_nonblocking(nonblocking)
    }

    fn poll_readable(&mut self) -> io::Result<bool> {
        (**self).poll_readable()
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<Progress> {
        (**self).try_read(buf)
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<Progress> {
        (**self).try_write(buf)
    }

    fn into_split(self: Box<Self>) -> io::Result<(ReadHalf, WriteHalf)> {
        (*self).into_split()
    }
}
