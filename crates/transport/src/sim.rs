//! Simulated-network transport: in-process delivery, modeled time.
//!
//! Wraps a [`ChannelTransport`] pair and charges each flushed message's
//! one-way latency — per the attached [`NetworkModel`] — to a clock shared
//! by both endpoints. With a virtual clock, a complete client/server
//! execution therefore unrolls on the network's timeline: this is how the
//! middleware runs "over" GigaE, 40GI, or any projected HPC network without
//! the physical equipment, which is precisely the capability the paper's
//! conclusion advertises.
//!
//! The charge uses [`NetworkModel::app_transfer`], so GigaE messages include
//! the TCP-window distortion that real application transfers suffer (§V) —
//! the simulated "measured" times then deviate from the pure bandwidth model
//! exactly the way the paper's real measurements do.

use rcuda_core::SharedClock;
use rcuda_netsim::NetworkModel;
use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::channel::{channel_pair, ChannelTransport};
use crate::stats::TransportStats;
use crate::Transport;

/// One endpoint of a simulated network link.
pub struct SimTransport {
    inner: ChannelTransport,
    net: Arc<dyn NetworkModel>,
    clock: SharedClock,
    /// Bytes accumulated toward the current message.
    pending: u64,
}

/// Create a connected pair sharing a network model and a clock.
pub fn sim_pair(net: Arc<dyn NetworkModel>, clock: SharedClock) -> (SimTransport, SimTransport) {
    let (a, b) = channel_pair();
    let mk = |inner| SimTransport {
        inner,
        net: Arc::clone(&net),
        clock: clock.clone(),
        pending: 0,
    };
    (mk(a), mk(b))
}

impl SimTransport {
    /// The network this link simulates.
    pub fn network(&self) -> &dyn NetworkModel {
        &*self.net
    }

    /// The shared clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

impl Read for SimTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Latency was charged by the sender at flush time; reading is free.
        self.inner.read(buf)
    }
}

impl Write for SimTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending += buf.len() as u64;
        self.inner.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let n = self.inner.write_vectored(bufs)?;
        self.pending += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.clock.advance(self.net.app_transfer(self.pending));
            self.pending = 0;
        }
        self.inner.flush()
    }
}

impl Transport for SimTransport {
    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn set_read_deadline(&mut self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        // Deadlines are wall-time bounds on the underlying channel; the
        // virtual clock is unaffected.
        self.inner.set_read_deadline(timeout)
    }

    fn set_observer(&mut self, obs: rcuda_obs::ObsHandle) {
        // The channel reports send events from its own flush, which runs
        // after this transport charges the message's network latency to the
        // shared clock — so a clock-stamping observer sees each message at
        // its (simulated) arrival time.
        self.inner.set_observer(obs);
    }

    fn into_split(self: Box<Self>) -> io::Result<(crate::ReadHalf, crate::WriteHalf)> {
        let this = *self;
        let (rd, inner_wr) = Box::new(this.inner).into_split()?;
        Ok((
            rd,
            Box::new(SimWriteHalf {
                inner: inner_wr,
                net: this.net,
                clock: this.clock,
                pending: this.pending,
            }),
        ))
    }
}

/// The send half of a split [`SimTransport`]: still charges each flushed
/// message's latency to the shared clock before delivery.
pub struct SimWriteHalf {
    inner: crate::WriteHalf,
    net: Arc<dyn NetworkModel>,
    clock: SharedClock,
    pending: u64,
}

impl Write for SimWriteHalf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.pending += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.clock.advance(self.net.app_transfer(self.pending));
            self.pending = 0;
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::time::virtual_clock;
    use rcuda_core::Clock as _;
    use rcuda_netsim::{GigaEModel, Ib40GModel};

    #[test]
    fn small_message_charges_small_packet_latency() {
        let clock = virtual_clock();
        let (mut a, mut b) = sim_pair(Arc::new(GigaEModel::new()), clock.clone());
        a.write_all(&[0u8; 8]).unwrap();
        a.flush().unwrap();
        // Table II: an 8-byte GigaE message costs 22.2 µs.
        assert!((clock.now().as_micros_f64() - 22.2).abs() < 0.05);
        let mut buf = [0u8; 8];
        b.read_exact(&mut buf).unwrap();
        // Reading charges nothing further.
        assert!((clock.now().as_micros_f64() - 22.2).abs() < 0.05);
    }

    #[test]
    fn bulk_message_charges_app_transfer() {
        let clock = virtual_clock();
        let net = Arc::new(GigaEModel::new());
        let expected = net.app_transfer(64 << 20);
        let (mut a, _b) = sim_pair(net, clock.clone());
        a.write_all(&vec![0u8; 64 << 20]).unwrap();
        a.flush().unwrap();
        assert_eq!(clock.now(), expected);
    }

    #[test]
    fn request_response_accumulates_both_directions() {
        let clock = virtual_clock();
        let net = Arc::new(Ib40GModel::new());
        let req_cost = net.app_transfer(20);
        let resp_cost = net.app_transfer(4);
        let (mut a, mut b) = sim_pair(net, clock.clone());
        a.write_all(&[0u8; 20]).unwrap();
        a.flush().unwrap();
        let mut req = [0u8; 20];
        b.read_exact(&mut req).unwrap();
        b.write_all(&[0u8; 4]).unwrap();
        b.flush().unwrap();
        let mut resp = [0u8; 4];
        a.read_exact(&mut resp).unwrap();
        assert_eq!(clock.now(), req_cost + resp_cost);
    }

    #[test]
    fn multiple_writes_one_flush_is_one_message() {
        let clock = virtual_clock();
        let net = Arc::new(GigaEModel::new());
        let one_20b_msg = net.app_transfer(20);
        let (mut a, _b) = sim_pair(net, clock.clone());
        // Five 4-byte header fields written separately, flushed once —
        // exactly how the client sends a memcpy request.
        for _ in 0..5 {
            a.write_all(&[0u8; 4]).unwrap();
        }
        a.flush().unwrap();
        assert_eq!(clock.now(), one_20b_msg, "charged as one 20-byte message");
    }

    #[test]
    fn wall_clock_sim_transport_still_delivers() {
        // With a wall clock the advance is a no-op but data still flows.
        let clock = rcuda_core::time::wall_clock();
        let (mut a, mut b) = sim_pair(Arc::new(GigaEModel::new()), clock);
        a.write_all(b"data").unwrap();
        a.flush().unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"data");
    }
}
