//! Traffic counters shared by all transports.

/// Cumulative transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Payload bytes written (before any transport framing).
    pub bytes_sent: u64,
    /// Payload bytes read.
    pub bytes_received: u64,
    /// Messages sent (flush calls with pending data).
    pub messages_sent: u64,
    /// Messages received (peer flushes consumed by this endpoint).
    pub messages_received: u64,
    /// Times this endpoint's connection was re-established.
    pub reconnects: u64,
}

impl TransportStats {
    pub fn record_send(&mut self, bytes: u64) {
        self.bytes_sent += bytes;
    }

    pub fn record_recv(&mut self, bytes: u64) {
        self.bytes_received += bytes;
    }

    pub fn record_message(&mut self) {
        self.messages_sent += 1;
    }

    pub fn record_message_received(&mut self) {
        self.messages_received += 1;
    }

    pub fn record_reconnect(&mut self) {
        self.reconnects += 1;
    }

    /// Fold another endpoint-incarnation's counters into this one (used by
    /// reconnecting transports to keep totals across connections).
    pub fn absorb(&mut self, other: &TransportStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.messages_sent += other.messages_sent;
        self.messages_received += other.messages_received;
        self.reconnects += other.reconnects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TransportStats::default();
        s.record_send(10);
        s.record_send(5);
        s.record_recv(3);
        s.record_message();
        s.record_message_received();
        s.record_message_received();
        s.record_reconnect();
        assert_eq!(s.bytes_sent, 15);
        assert_eq!(s.bytes_received, 3);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.messages_received, 2);
        assert_eq!(s.reconnects, 1);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let mut a = TransportStats {
            bytes_sent: 1,
            bytes_received: 2,
            messages_sent: 3,
            messages_received: 4,
            reconnects: 5,
        };
        a.absorb(&a.clone());
        assert_eq!(
            a,
            TransportStats {
                bytes_sent: 2,
                bytes_received: 4,
                messages_sent: 6,
                messages_received: 8,
                reconnects: 10,
            }
        );
    }
}
