//! Traffic counters shared by all transports.

/// Cumulative transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Payload bytes written (before any transport framing).
    pub bytes_sent: u64,
    /// Payload bytes read.
    pub bytes_received: u64,
    /// Messages sent (flush calls with pending data).
    pub messages_sent: u64,
}

impl TransportStats {
    pub fn record_send(&mut self, bytes: u64) {
        self.bytes_sent += bytes;
    }

    pub fn record_recv(&mut self, bytes: u64) {
        self.bytes_received += bytes;
    }

    pub fn record_message(&mut self) {
        self.messages_sent += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TransportStats::default();
        s.record_send(10);
        s.record_send(5);
        s.record_recv(3);
        s.record_message();
        assert_eq!(s.bytes_sent, 15);
        assert_eq!(s.bytes_received, 3);
        assert_eq!(s.messages_sent, 1);
    }
}
