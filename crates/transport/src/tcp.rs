//! Real TCP transport, configured as the paper configures it.
//!
//! §IV-A: "we disabled the TCP-layer congestion control algorithm ... in
//! order to avoid unnecessary delays introduced by the default congestion
//! control algorithm in this protocol (Nagle's algorithm)". We set
//! `TCP_NODELAY` on every stream and additionally buffer writes so each
//! protocol message leaves in as few segments as possible.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::stats::TransportStats;
use crate::Transport;

/// A TCP-backed transport endpoint.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    stats: TransportStats,
    /// Whether any bytes were written since the last flush.
    dirty: bool,
}

impl TcpTransport {
    /// Connect to a server (sets `TCP_NODELAY`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Wrap an accepted stream (sets `TCP_NODELAY`).
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(256 * 1024, stream.try_clone()?);
        let writer = BufWriter::with_capacity(256 * 1024, stream);
        Ok(TcpTransport {
            reader,
            writer,
            stats: TransportStats::default(),
            dirty: false,
        })
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.reader.get_ref().peer_addr()
    }

    /// Shut down both directions (finalization stage).
    pub fn shutdown(&mut self) -> io::Result<()> {
        let _ = self.writer.flush();
        self.reader.get_ref().shutdown(std::net::Shutdown::Both)
    }
}

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.reader.read(buf)?;
        self.stats.record_recv(n as u64);
        Ok(n)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.writer.write(buf)?;
        self.stats.record_send(n as u64);
        if n > 0 {
            self.dirty = true;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dirty {
            self.stats.record_message();
            self.dirty = false;
        }
        self.writer.flush()
    }
}

impl Transport for TcpTransport {
    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// Loopback echo round trip through real sockets.
    #[test]
    fn loopback_echo() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = [0u8; 12];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&buf).unwrap();
            t.flush().unwrap();
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        client.write_all(b"ping-payload").unwrap();
        client.flush().unwrap();
        let mut echo = [0u8; 12];
        client.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"ping-payload");
        assert_eq!(client.stats().bytes_sent, 12);
        assert_eq!(client.stats().bytes_received, 12);
        assert_eq!(client.stats().messages_sent, 1);
        server.join().unwrap();
    }

    #[test]
    fn nodelay_is_set() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            TcpTransport::from_stream(stream).unwrap()
        });
        let client = TcpTransport::connect(addr).unwrap();
        assert!(
            client.reader.get_ref().nodelay().unwrap(),
            "Nagle must be off"
        );
        let srv = server.join().unwrap();
        assert!(srv.reader.get_ref().nodelay().unwrap());
    }

    #[test]
    fn large_payload_crosses_loopback() {
        // A payload far larger than socket buffers, to exercise chunked
        // reads/writes (an 8 MiB FFT-batch-sized message).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..8 << 20).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = vec![0u8; expect.len()];
            t.read_exact(&mut buf).unwrap();
            assert_eq!(buf, expect);
            t.write_all(&[1]).unwrap();
            t.flush().unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.write_all(&payload).unwrap();
        client.flush().unwrap();
        let mut ack = [0u8; 1];
        client.read_exact(&mut ack).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn closed_peer_surfaces_as_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        server.join().unwrap();
        let mut buf = [0u8; 1];
        assert!(client.read_exact(&mut buf).is_err());
    }
}
