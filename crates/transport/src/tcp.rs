//! Real TCP transport, configured as the paper configures it.
//!
//! §IV-A: "we disabled the TCP-layer congestion control algorithm ... in
//! order to avoid unnecessary delays introduced by the default congestion
//! control algorithm in this protocol (Nagle's algorithm)". We set
//! `TCP_NODELAY` on every stream and additionally buffer writes so each
//! protocol message leaves in as few segments as possible.

use rcuda_obs::{Dir, ObsHandle};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::stats::TransportStats;
use crate::{Progress, Transport};

/// Buffer capacity for both directions of the socket, shared by `connect`
/// and `reconnect` so the two paths cannot drift.
const STREAM_BUF_CAPACITY: usize = 256 * 1024;

/// Messages at or above this size bypass the `BufWriter` with one vectored
/// write straight to the socket. Below it, copying into the write buffer is
/// cheaper than an extra syscall and keeps small messages packed into as
/// few segments as possible.
const VECTORED_WRITE_MIN: usize = 64 * 1024;

/// A TCP-backed transport endpoint.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    stats: TransportStats,
    /// Whether any bytes were written since the last flush.
    dirty: bool,
    /// Bytes written since the last flush (the size of the message a flush
    /// will put on the wire).
    pending_out: u64,
    obs: ObsHandle,
    /// The address `connect` dialed — `Some` makes [`Transport::reconnect`]
    /// possible; accepted streams (`from_stream`) cannot re-dial.
    dial_addr: Option<SocketAddr>,
    /// Last deadline set, re-applied to the fresh socket after a reconnect.
    read_timeout: Option<Duration>,
    /// Set by flush, cleared by the next successful read: counts one
    /// received message per request/response exchange (TCP itself has no
    /// message boundaries to count exactly).
    awaiting_response: bool,
}

impl TcpTransport {
    /// Connect to a server (sets `TCP_NODELAY`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let dial_addr = stream.peer_addr().ok();
        let mut t = Self::from_stream(stream)?;
        t.dial_addr = dial_addr;
        Ok(t)
    }

    /// Wrap an accepted stream (sets `TCP_NODELAY`).
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(STREAM_BUF_CAPACITY, stream.try_clone()?);
        let writer = BufWriter::with_capacity(STREAM_BUF_CAPACITY, stream);
        Ok(TcpTransport {
            reader,
            writer,
            stats: TransportStats::default(),
            dirty: false,
            pending_out: 0,
            obs: ObsHandle::none(),
            dial_addr: None,
            read_timeout: None,
            awaiting_response: false,
        })
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.reader.get_ref().peer_addr()
    }

    /// A cloned handle to the underlying socket. Lets a supervisor shut the
    /// connection down from outside (e.g. to unblock a demultiplexer thread
    /// parked in a read on the split read half).
    pub fn raw_stream(&self) -> io::Result<TcpStream> {
        self.reader.get_ref().try_clone()
    }

    /// Shut down both directions (finalization stage).
    pub fn shutdown(&mut self) -> io::Result<()> {
        let _ = self.writer.flush();
        self.reader.get_ref().shutdown(std::net::Shutdown::Both)
    }
}

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.reader.read(buf)?;
        self.stats.record_recv(n as u64);
        if n > 0 {
            // TCP has no message boundaries: receive events are per read
            // chunk, not per protocol message (byte totals still match).
            self.obs.emit_message(Dir::Received, n as u64);
        }
        if n > 0 && self.awaiting_response {
            self.stats.record_message_received();
            self.awaiting_response = false;
        }
        Ok(n)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.writer.write(buf)?;
        self.stats.record_send(n as u64);
        if n > 0 {
            self.dirty = true;
            self.pending_out += n as u64;
        }
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        if total == 0 {
            return Ok(0);
        }
        if total < VECTORED_WRITE_MIN {
            // Small message: stage in the BufWriter like plain writes, so
            // it still leaves in as few segments as possible.
            for b in bufs {
                self.writer.write_all(b)?;
            }
            self.stats.record_send(total as u64);
            self.dirty = true;
            self.pending_out += total as u64;
            return Ok(total);
        }
        // Large message: drain the staging buffer, then hand the kernel all
        // the pieces in one writev — the payload is never coalesced into an
        // owned buffer. Only the BufWriter is flushed here; the message
        // boundary (dirty/pending_out) is still marked by `flush`.
        self.writer.flush()?;
        let n = self.writer.get_mut().write_vectored(bufs)?;
        self.stats.record_send(n as u64);
        if n > 0 {
            self.dirty = true;
            self.pending_out += n as u64;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dirty {
            self.stats.record_message();
            self.obs.emit_message(Dir::Sent, self.pending_out);
            self.dirty = false;
            self.pending_out = 0;
            self.awaiting_response = true;
        }
        self.writer.flush()
    }
}

impl Transport for TcpTransport {
    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        // A socket read timeout bounds each read syscall, not the whole
        // message; for the protocol's small fixed-size reads that is the
        // same bound in practice.
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let addr = self.dial_addr.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "accepted stream has no dial address to reconnect to",
            )
        })?;
        // Drop the dead socket before dialing so the server sees the EOF
        // promptly and can park the session for resume.
        let _ = self.reader.get_ref().shutdown(std::net::Shutdown::Both);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.reader = BufReader::with_capacity(STREAM_BUF_CAPACITY, stream.try_clone()?);
        self.writer = BufWriter::with_capacity(STREAM_BUF_CAPACITY, stream);
        self.dirty = false;
        self.pending_out = 0;
        self.awaiting_response = false;
        self.stats.record_reconnect();
        self.obs.emit_reconnect();
        Ok(())
    }

    fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn set_nonblocking(&mut self, nonblocking: bool) -> io::Result<()> {
        // Reader and writer are clones of one socket, so O_NONBLOCK set on
        // either applies to both directions.
        self.reader.get_ref().set_nonblocking(nonblocking)
    }

    fn poll_readable(&mut self) -> io::Result<bool> {
        if !self.reader.buffer().is_empty() {
            return Ok(true);
        }
        let mut probe = [0u8; 1];
        // peek(Ok(0)) is EOF: that *is* readable progress (read returns 0).
        match self.reader.get_ref().peek(&mut probe) {
            Ok(_) => Ok(true),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<Progress> {
        // Route through `Read::read` so stats and message accounting stay
        // identical between the blocking and nonblocking paths.
        match Read::read(self, buf) {
            Ok(n) => Ok(Progress::Ready(n)),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Progress::Pending)
            }
            Err(e) => Err(e),
        }
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<Progress> {
        // Drain any bytes a blocking-path write staged in the BufWriter
        // first, so ordering is preserved; `flush` on WouldBlock keeps the
        // unwritten remainder buffered, making the retry safe.
        if !self.writer.buffer().is_empty() {
            match self.writer.flush() {
                Ok(()) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) =>
                {
                    return Ok(Progress::Pending)
                }
                Err(e) => return Err(e),
            }
        }
        // Then write straight to the socket: the caller already batches a
        // whole message, so BufWriter staging would only add a copy.
        match self.writer.get_mut().write(buf) {
            Ok(n) => {
                self.stats.record_send(n as u64);
                Ok(Progress::Ready(n))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Progress::Pending)
            }
            Err(e) => Err(e),
        }
    }

    fn into_split(self: Box<Self>) -> io::Result<(crate::ReadHalf, crate::WriteHalf)> {
        // The halves are used by a blocking demultiplexer: undo any
        // nonblocking mode or read deadline left over from reactor use.
        self.reader.get_ref().set_nonblocking(false)?;
        self.reader.get_ref().set_read_timeout(None)?;
        let this = *self;
        Ok((Box::new(this.reader), Box::new(this.writer)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// Loopback echo round trip through real sockets.
    #[test]
    fn loopback_echo() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = [0u8; 12];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&buf).unwrap();
            t.flush().unwrap();
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        client.write_all(b"ping-payload").unwrap();
        client.flush().unwrap();
        let mut echo = [0u8; 12];
        client.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"ping-payload");
        assert_eq!(client.stats().bytes_sent, 12);
        assert_eq!(client.stats().bytes_received, 12);
        assert_eq!(client.stats().messages_sent, 1);
        server.join().unwrap();
    }

    #[test]
    fn nodelay_is_set() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            TcpTransport::from_stream(stream).unwrap()
        });
        let client = TcpTransport::connect(addr).unwrap();
        assert!(
            client.reader.get_ref().nodelay().unwrap(),
            "Nagle must be off"
        );
        let srv = server.join().unwrap();
        assert!(srv.reader.get_ref().nodelay().unwrap());
    }

    #[test]
    fn large_payload_crosses_loopback() {
        // A payload far larger than socket buffers, to exercise chunked
        // reads/writes (an 8 MiB FFT-batch-sized message).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..8 << 20).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = vec![0u8; expect.len()];
            t.read_exact(&mut buf).unwrap();
            assert_eq!(buf, expect);
            t.write_all(&[1]).unwrap();
            t.flush().unwrap();
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client.write_all(&payload).unwrap();
        client.flush().unwrap();
        let mut ack = [0u8; 1];
        client.read_exact(&mut ack).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn vectored_write_preserves_bytes_and_message_accounting() {
        // One small (buffered) and one large (writev bypass) vectored
        // message; both must arrive intact and count as exactly one message
        // each, with byte totals matching the slices.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let small_body = vec![7u8; 100];
        let large_body: Vec<u8> = (0..VECTORED_WRITE_MIN + 4096)
            .map(|i| (i % 251) as u8)
            .collect();
        let expect_small = small_body.clone();
        let expect_large = large_body.clone();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut head = [0u8; 20];
            let mut body = vec![0u8; expect_small.len()];
            t.read_exact(&mut head).unwrap();
            t.read_exact(&mut body).unwrap();
            assert_eq!(head, [1u8; 20]);
            assert_eq!(body, expect_small);
            let mut body = vec![0u8; expect_large.len()];
            t.read_exact(&mut head).unwrap();
            t.read_exact(&mut body).unwrap();
            assert_eq!(head, [2u8; 20]);
            assert_eq!(body, expect_large);
            t.write_all(&[0]).unwrap();
            t.flush().unwrap();
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        rcuda_proto::wire::write_all_vectored(&mut client, &[1u8; 20], &small_body).unwrap();
        client.flush().unwrap();
        rcuda_proto::wire::write_all_vectored(&mut client, &[2u8; 20], &large_body).unwrap();
        client.flush().unwrap();
        let mut ack = [0u8; 1];
        client.read_exact(&mut ack).unwrap();
        let stats = client.stats();
        assert_eq!(
            stats.bytes_sent,
            (20 + small_body.len() + 20 + large_body.len()) as u64
        );
        assert_eq!(stats.messages_sent, 2, "one flush per message");
        server.join().unwrap();
    }

    #[test]
    fn reconnect_redials_the_original_address() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            // First connection: echo one byte, then close.
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = [0u8; 1];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&buf).unwrap();
            t.flush().unwrap();
            drop(t);
            // Second connection after the client reconnects.
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = [0u8; 1];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&[buf[0] + 1]).unwrap();
            t.flush().unwrap();
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        client.write_all(&[5]).unwrap();
        client.flush().unwrap();
        let mut echo = [0u8; 1];
        client.read_exact(&mut echo).unwrap();
        assert_eq!(echo, [5]);

        client.reconnect().unwrap();
        client.write_all(&[6]).unwrap();
        client.flush().unwrap();
        client.read_exact(&mut echo).unwrap();
        assert_eq!(echo, [7]);
        let stats = client.stats();
        assert_eq!(stats.reconnects, 1);
        assert_eq!(stats.messages_sent, 2, "counters span the reconnect");
        assert_eq!(stats.messages_received, 2);
        server.join().unwrap();
    }

    #[test]
    fn accepted_stream_cannot_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            TcpTransport::from_stream(stream).unwrap()
        });
        let _client = TcpTransport::connect(addr).unwrap();
        let mut srv = server.join().unwrap();
        assert_eq!(
            srv.reconnect().unwrap_err().kind(),
            io::ErrorKind::Unsupported
        );
    }

    #[test]
    fn read_deadline_bounds_a_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the connection open without ever writing.
            thread::sleep(std::time::Duration::from_millis(300));
            drop(stream);
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        client
            .set_read_deadline(Some(std::time::Duration::from_millis(30)))
            .unwrap();
        let start = std::time::Instant::now();
        let mut buf = [0u8; 1];
        let err = client.read_exact(&mut buf).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            "got {err:?}"
        );
        assert!(start.elapsed() < std::time::Duration::from_millis(250));
        server.join().unwrap();
    }

    #[test]
    fn nonblocking_try_read_pending_then_ready_then_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (sync_tx, sync_rx) = std::sync::mpsc::channel();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            sync_rx.recv().unwrap(); // wait until the client saw Pending
            t.write_all(b"pong").unwrap();
            t.flush().unwrap();
            sync_rx.recv().unwrap(); // wait until the client read it
        });

        let mut client = TcpTransport::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut buf = [0u8; 16];
        assert!(!client.poll_readable().unwrap());
        assert_eq!(client.try_read(&mut buf).unwrap(), Progress::Pending);
        sync_tx.send(()).unwrap();
        // Spin until the 4 bytes arrive — never blocking, only re-polling.
        let mut got = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got < 4 {
            assert!(std::time::Instant::now() < deadline, "data never arrived");
            match client.try_read(&mut buf[got..]).unwrap() {
                Progress::Ready(n) => got += n,
                Progress::Pending => std::thread::yield_now(),
            }
        }
        assert_eq!(&buf[..4], b"pong");
        sync_tx.send(()).unwrap();
        server.join().unwrap();
        // Server side gone: the next progress report is EOF, not Pending.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            assert!(std::time::Instant::now() < deadline, "EOF never surfaced");
            match client.try_read(&mut buf).unwrap() {
                Progress::Ready(0) => break,
                Progress::Ready(_) => panic!("no more data was sent"),
                Progress::Pending => std::thread::yield_now(),
            }
        }
    }

    #[test]
    fn nonblocking_try_write_round_trips_a_message() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            let mut buf = [0u8; 8];
            t.read_exact(&mut buf).unwrap();
            buf
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        // Stage two bytes through the blocking half first: try_write must
        // preserve ordering by draining the BufWriter before its own bytes.
        client.write_all(b"ab").unwrap();
        client.set_nonblocking(true).unwrap();
        let mut sent = 0;
        let payload = b"cdefgh";
        while sent < payload.len() {
            match client.try_write(&payload[sent..]).unwrap() {
                Progress::Ready(n) => sent += n,
                Progress::Pending => std::thread::yield_now(),
            }
        }
        assert_eq!(&server.join().unwrap(), b"abcdefgh");
        assert_eq!(client.stats().bytes_sent, 8);
    }

    #[test]
    fn closed_peer_surfaces_as_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        server.join().unwrap();
        let mut buf = [0u8; 1];
        assert!(client.read_exact(&mut buf).is_err());
    }
}
