//! With no observer installed, the per-call hot path performs no heap
//! allocation.
//!
//! A counting `#[global_allocator]` wraps the system allocator while a
//! `RemoteRuntime<TcpTransport>` drives real sockets on loopback. The
//! server pre-writes the measured window's acknowledgements in one burst
//! and then sits blocked in `read`, so the only thread doing work during
//! the window is the client's — and its 8 synchronous calls must leave the
//! allocation counter untouched. (The trace buffer is pre-grown by the
//! warmup calls; `Op` labels, span payloads, and the disarmed `ObsHandle`
//! are all `Copy`.)

use rcuda_api::CudaRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::wall_clock;
use rcuda_proto::{Frame, Request, Response, SessionHello};
use rcuda_transport::TcpTransport;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Warmup calls: enough to grow the trace buffer past the measured window.
const WARMUP: usize = 32;
/// Calls inside the counted window.
const MEASURED: usize = 8;

#[test]
fn unobserved_calls_do_not_allocate() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (ready_tx, ready_rx) = mpsc::channel::<()>();

    let server = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_nodelay(true).unwrap();
        // CC push (compute capability 1.3), then the init handshake.
        let mut cc = [0u8; 8];
        cc[..4].copy_from_slice(&1u32.to_le_bytes());
        cc[4..].copy_from_slice(&3u32.to_le_bytes());
        stream.write_all(&cc).unwrap();
        match SessionHello::read(&mut stream).unwrap() {
            SessionHello::Fresh { .. } => {}
            other => panic!("unexpected hello: {other:?}"),
        }
        Response::Ack(Ok(())).write(&mut stream).unwrap();

        // Warmup: serve each call normally.
        for _ in 0..WARMUP {
            match Frame::read(&mut stream).unwrap() {
                Frame::Single(Request::ThreadSynchronize) => {}
                other => panic!("unexpected frame: {other:?}"),
            }
            Response::Ack(Ok(())).write(&mut stream).unwrap();
        }

        // Pre-write the measured window's acks in one burst, allocate the
        // drain buffer, and only then release the client: from here on this
        // thread allocates nothing until the connection closes.
        for _ in 0..MEASURED {
            Response::Ack(Ok(())).write(&mut stream).unwrap();
        }
        stream.flush().unwrap();
        let mut sink = [0u8; 4096];
        ready_tx.send(()).unwrap();
        loop {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });

    let transport = TcpTransport::connect(addr).unwrap();
    let mut rt = RemoteRuntime::new(transport, wall_clock());
    rt.initialize(&[]).unwrap();
    for _ in 0..WARMUP {
        rt.thread_synchronize().unwrap();
    }

    ready_rx.recv().unwrap();
    let before = allocations();
    for _ in 0..MEASURED {
        rt.thread_synchronize().unwrap();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "the unobserved per-call hot path allocated"
    );

    assert_eq!(rt.metrics().calls, 1 + (WARMUP + MEASURED) as u64);
    drop(rt);
    server.join().unwrap();
}
