//! Execution traces: per-call records of what crossed the network when.
//!
//! The estimation model of §V is built by analyzing such traces: summing the
//! bulk-transfer portions, subtracting them from the measured total to get
//! the network-independent "fixed time", and re-adding a different network's
//! transfer times. [`Trace`] captures everything that procedure needs.

use rcuda_core::SimTime;
use rcuda_obs::Op;
use serde::{Deserialize, Serialize};

/// One remote API call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallEvent {
    /// Operation label (`cudaMemcpyH2D`, `cudaLaunch`, `batch[n]`, ...) —
    /// a `Copy` token, so recording a call never heap-allocates.
    pub op: Op,
    /// Bytes sent client → server (request message).
    pub sent: u64,
    /// Bytes received server → client (response message).
    pub received: u64,
    /// Clock time when the call started.
    pub start: SimTime,
    /// Clock time when the call returned.
    pub end: SimTime,
}

impl CallEvent {
    /// Wall (or virtual) duration of the call.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// Application payload moved by this call, if it is a bulk memcpy
    /// (header bytes excluded): `x` of Table I.
    pub fn bulk_payload(&self) -> u64 {
        match self.op.as_named() {
            // Request carries 20 header bytes + payload.
            Some("cudaMemcpyH2D" | "cudaMemcpyAsyncH2D") => self.sent.saturating_sub(20),
            // Response carries 4 status bytes + payload (async adds a
            // stream field to the request, not the response).
            Some("cudaMemcpyD2H" | "cudaMemcpyAsyncD2H") => self.received.saturating_sub(4),
            _ => 0,
        }
    }
}

/// A full session trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    pub events: Vec<CallEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    pub fn record(&mut self, event: CallEvent) {
        self.events.push(event);
    }

    /// Total bytes sent / received across the session.
    pub fn totals(&self) -> (u64, u64) {
        self.events
            .iter()
            .fold((0, 0), |(s, r), e| (s + e.sent, r + e.received))
    }

    /// Total bulk memcpy payload (the quantity Tables III/V price).
    pub fn bulk_payload(&self) -> u64 {
        self.events.iter().map(|e| e.bulk_payload()).sum()
    }

    /// Time from first call start to last call end.
    pub fn span(&self) -> SimTime {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.end.saturating_sub(first.start),
            _ => SimTime::ZERO,
        }
    }

    /// Summed durations of calls whose op matches `op`.
    pub fn time_in(&self, op: &str) -> SimTime {
        self.events
            .iter()
            .filter(|e| e.op == op)
            .map(|e| e.duration())
            .sum()
    }

    /// Serialize to JSON (for the planner example and offline analysis).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parse a JSON trace.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &str, sent: u64, received: u64, start: u64, end: u64) -> CallEvent {
        CallEvent {
            op: Op::parse(op),
            sent,
            received,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn totals_and_span() {
        let mut t = Trace::new();
        t.record(ev("cudaMalloc", 8, 8, 100, 200));
        t.record(ev("cudaMemcpyH2D", 1044, 4, 200, 900));
        let (s, r) = t.totals();
        assert_eq!((s, r), (1052, 12));
        assert_eq!(t.span(), SimTime::from_nanos(800));
        assert_eq!(t.time_in("cudaMalloc"), SimTime::from_nanos(100));
    }

    #[test]
    fn bulk_payload_counts_only_memcpy_payloads() {
        let mut t = Trace::new();
        t.record(ev("cudaMalloc", 8, 8, 0, 1));
        t.record(ev("cudaMemcpyH2D", 1024 + 20, 4, 1, 2));
        t.record(ev("cudaMemcpyD2H", 20, 2048 + 4, 2, 3));
        t.record(ev("cudaLaunch", 52, 4, 3, 4));
        assert_eq!(t.bulk_payload(), 1024 + 2048);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::new();
        assert_eq!(t.totals(), (0, 0));
        assert_eq!(t.span(), SimTime::ZERO);
        assert_eq!(t.bulk_payload(), 0);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Trace::new();
        t.record(ev("cudaLaunch", 52, 4, 5, 9));
        let json = t.to_json();
        assert_eq!(Trace::from_json(&json).unwrap(), t);
    }
}
