//! Transport failure → CUDA error-code mapping.
//!
//! Real rCUDA surfaces every transport fault as `cudaErrorUnknown`, which
//! makes a dead server indistinguishable from a genuine CUDA failure. The
//! client instead preserves the [`io::ErrorKind`] of the failure in one of
//! the dedicated transport codes (10001+), so callers can tell a timeout
//! from a lost connection from a protocol violation.

use rcuda_core::CudaError;
use std::io;

/// Map a transport-layer I/O failure to the CUDA error surfaced to the
/// application, preserving the failure class.
pub fn transport_error(e: &io::Error) -> CudaError {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => CudaError::TransportTimedOut,
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::ConnectionRefused
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::NotConnected
        | io::ErrorKind::UnexpectedEof => CudaError::TransportConnectionLost,
        // The protocol layer reports undecodable bytes (bad selector, bad
        // memcpy kind, mismatched batch response) as InvalidData.
        io::ErrorKind::InvalidData => CudaError::ProtocolViolation,
        _ => CudaError::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_distinct_causes() {
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "t");
        assert_eq!(transport_error(&timeout), CudaError::TransportTimedOut);

        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::NotConnected,
            io::ErrorKind::UnexpectedEof,
        ] {
            let e = io::Error::new(kind, "gone");
            assert_eq!(
                transport_error(&e),
                CudaError::TransportConnectionLost,
                "{kind:?}"
            );
        }

        let garbage = io::Error::new(io::ErrorKind::InvalidData, "bad selector");
        assert_eq!(transport_error(&garbage), CudaError::ProtocolViolation);

        let other = io::Error::other("mystery");
        assert_eq!(transport_error(&other), CudaError::Unknown);
    }

    #[test]
    fn all_mapped_errors_are_transport_class() {
        for kind in [
            io::ErrorKind::TimedOut,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::InvalidData,
        ] {
            let e = io::Error::new(kind, "x");
            assert!(transport_error(&e).is_transport());
        }
    }
}
