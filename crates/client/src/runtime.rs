//! [`RemoteRuntime`]: the CUDA Runtime implemented by remote forwarding.
//!
//! Every method marshals one request per `rcuda-proto`, flushes it as one
//! message, and blocks on the response — the synchronous semantics the
//! paper's model covers. Connection loss surfaces as `cudaErrorUnknown`,
//! mirroring how real rCUDA reports a dead server to the application.

use rcuda_api::CudaRuntime;
use rcuda_core::{CudaError, CudaResult, DeviceProperties, DevicePtr, Dim3, SharedClock};
use rcuda_proto::ids::MemcpyKind;
use rcuda_proto::{LaunchConfig, Request, Response};
use rcuda_transport::Transport;

use crate::trace::{CallEvent, Trace};

/// The client side of an rCUDA session.
pub struct RemoteRuntime<T: Transport> {
    transport: T,
    clock: SharedClock,
    trace: Trace,
    /// Compute capability announced by the server at connect time.
    server_cc: Option<(u32, u32)>,
    initialized: bool,
}

impl<T: Transport> RemoteRuntime<T> {
    /// Wrap a connected transport. The clock timestamps the trace (wall for
    /// real runs, virtual for simulated ones).
    pub fn new(transport: T, clock: SharedClock) -> Self {
        RemoteRuntime {
            transport,
            clock,
            trace: Trace::new(),
            server_cc: None,
            initialized: false,
        }
    }

    /// The compute capability the server announced (after `initialize`).
    pub fn server_compute_capability(&self) -> Option<(u32, u32)> {
        self.server_cc
    }

    /// The recorded session trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take ownership of the trace (e.g. to persist it).
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// One request/response round trip, traced.
    fn call(&mut self, op: &'static str, req: Request) -> CudaResult<Response> {
        let start = self.clock.now();
        let sent = req.wire_bytes();
        req.write(&mut self.transport)
            .and_then(|_| self.transport.flush())
            .map_err(|_| CudaError::Unknown)?;
        let resp = Response::read(&mut self.transport, &req).map_err(|_| CudaError::Unknown)?;
        let end = self.clock.now();
        self.trace.record(CallEvent {
            op: op.to_string(),
            sent,
            received: resp.wire_bytes(),
            start,
            end,
        });
        Ok(resp)
    }

    fn ensure_initialized(&self) -> CudaResult<()> {
        if self.initialized {
            Ok(())
        } else {
            Err(CudaError::InitializationError)
        }
    }
}

impl<T: Transport> CudaRuntime for RemoteRuntime<T> {
    fn initialize(&mut self, module: &[u8]) -> CudaResult<()> {
        // Phase 1 (Fig. 2): the server pushes its 8-byte compute capability
        // on connect; then we ship the module and take the result code.
        let start = self.clock.now();
        let mut cc = [0u8; 8];
        self.transport
            .read_exact(&mut cc)
            .map_err(|_| CudaError::Unknown)?;
        self.server_cc = Some(DeviceProperties::compute_capability_from_wire(cc));

        let req = Request::Init {
            module: module.to_vec(),
        };
        let sent = req.wire_bytes();
        req.write(&mut self.transport)
            .and_then(|_| self.transport.flush())
            .map_err(|_| CudaError::Unknown)?;
        let resp = Response::read(&mut self.transport, &req).map_err(|_| CudaError::Unknown)?;
        let end = self.clock.now();
        self.trace.record(CallEvent {
            op: "initialization".to_string(),
            sent,
            received: 8 + resp.wire_bytes(), // CC push + result code = 12
            start,
            end,
        });
        resp.into_ack()?;
        self.initialized = true;
        Ok(())
    }

    fn device_properties(&mut self) -> CudaResult<DeviceProperties> {
        self.ensure_initialized()?;
        let resp = self.call("cudaGetDeviceProperties", Request::DeviceProps)?;
        match resp {
            Response::DeviceProps(Ok(blob)) => {
                serde_json::from_slice(&blob).map_err(|_| CudaError::Unknown)
            }
            Response::DeviceProps(Err(e)) => Err(e),
            _ => Err(CudaError::Unknown),
        }
    }

    fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr> {
        self.ensure_initialized()?;
        self.call("cudaMalloc", Request::Malloc { size })?
            .into_malloc()
    }

    fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaFree", Request::Free { ptr })?.into_ack()
    }

    fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> CudaResult<()> {
        self.ensure_initialized()?;
        let req = Request::Memcpy {
            dst: dst.addr(),
            src: 0,
            size: data.len() as u32,
            kind: MemcpyKind::HostToDevice,
            data: Some(data.to_vec()),
        };
        self.call("cudaMemcpyH2D", req)?.into_ack()
    }

    fn memcpy_d2h(&mut self, src: DevicePtr, size: u32) -> CudaResult<Vec<u8>> {
        self.ensure_initialized()?;
        let req = Request::Memcpy {
            dst: 0,
            src: src.addr(),
            size,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        self.call("cudaMemcpyD2H", req)?.into_memcpy_to_host()
    }

    fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        let req = Request::Memcpy {
            dst: dst.addr(),
            src: src.addr(),
            size,
            kind: MemcpyKind::DeviceToDevice,
            data: None,
        };
        self.call("cudaMemcpyD2D", req)?.into_ack()
    }

    fn memset(&mut self, dst: DevicePtr, value: u8, size: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        let req = Request::Memset {
            dst: dst.addr(),
            value: value as u32,
            size,
        };
        self.call("cudaMemset", req)?.into_ack()
    }

    fn event_create(&mut self) -> CudaResult<u32> {
        self.ensure_initialized()?;
        match self.call("cudaEventCreate", Request::EventCreate)? {
            Response::EventCreate(r) => r,
            _ => Err(CudaError::Unknown),
        }
    }

    fn event_record(&mut self, event: u32, stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaEventRecord", Request::EventRecord { event, stream })?
            .into_ack()
    }

    fn event_synchronize(&mut self, event: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaEventSynchronize", Request::EventSynchronize { event })?
            .into_ack()
    }

    fn event_elapsed_ms(&mut self, start: u32, end: u32) -> CudaResult<f32> {
        self.ensure_initialized()?;
        match self.call("cudaEventElapsedTime", Request::EventElapsed { start, end })? {
            Response::EventElapsed(r) => r,
            _ => Err(CudaError::Unknown),
        }
    }

    fn event_destroy(&mut self, event: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaEventDestroy", Request::EventDestroy { event })?
            .into_ack()
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid: Dim3,
        block: Dim3,
        shared_bytes: u32,
        stream: u32,
        args: &[u8],
    ) -> CudaResult<()> {
        self.ensure_initialized()?;
        let config = LaunchConfig {
            texture_offset: 0,
            parameters_offset: 0, // filled by Request::launch
            num_textures: 0,
            block,
            grid,
            shared_bytes,
            stream,
        };
        let req = Request::launch(kernel, args, config);
        self.call("cudaLaunch", req)?.into_ack()
    }

    fn thread_synchronize(&mut self) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaThreadSynchronize", Request::ThreadSynchronize)?
            .into_ack()
    }

    fn stream_create(&mut self) -> CudaResult<u32> {
        self.ensure_initialized()?;
        match self.call("cudaStreamCreate", Request::StreamCreate)? {
            Response::StreamCreate(r) => r,
            _ => Err(CudaError::Unknown),
        }
    }

    fn stream_synchronize(&mut self, stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call(
            "cudaStreamSynchronize",
            Request::StreamSynchronize { stream },
        )?
        .into_ack()
    }

    fn stream_destroy(&mut self, stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaStreamDestroy", Request::StreamDestroy { stream })?
            .into_ack()
    }

    fn memcpy_h2d_async(&mut self, dst: DevicePtr, data: &[u8], stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        let req = Request::MemcpyAsync {
            dst: dst.addr(),
            src: 0,
            size: data.len() as u32,
            kind: MemcpyKind::HostToDevice,
            stream,
            data: Some(data.to_vec()),
        };
        self.call("cudaMemcpyAsyncH2D", req)?.into_ack()
    }

    fn memcpy_d2h_async(&mut self, src: DevicePtr, size: u32, stream: u32) -> CudaResult<Vec<u8>> {
        self.ensure_initialized()?;
        let req = Request::MemcpyAsync {
            dst: 0,
            src: src.addr(),
            size,
            kind: MemcpyKind::DeviceToHost,
            stream,
            data: None,
        };
        self.call("cudaMemcpyAsyncD2H", req)?.into_memcpy_to_host()
    }

    fn finalize(&mut self) -> CudaResult<()> {
        if !self.initialized {
            return Ok(());
        }
        self.call("finalization", Request::Quit)?.into_ack()?;
        self.initialized = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::error::result_code;
    use rcuda_core::time::wall_clock;
    use rcuda_proto::wire::{get_u32, put_bytes, put_u32};
    use rcuda_transport::{channel_pair, ChannelTransport};
    use std::io::Write;
    use std::thread;

    /// One scripted exchange of the fake server.
    type ScriptStep = Box<dyn FnOnce(&Request, &mut ChannelTransport) + Send>;

    /// A minimal protocol-speaking fake server: announces CC, acks the
    /// module, then answers `n` scripted responses.
    fn fake_server(mut side: ChannelTransport, script: Vec<ScriptStep>) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            // CC push.
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            // Module upload.
            let _init = Request::read_init(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            // Scripted exchanges.
            for step in script {
                let req = Request::read(&mut side).unwrap();
                step(&req, &mut side);
            }
        })
    }

    fn ack(req: &Request, side: &mut ChannelTransport) {
        let _ = req;
        put_u32(side, result_code(&Ok(()))).unwrap();
        side.flush().unwrap();
    }

    #[test]
    fn initialize_reads_cc_then_ships_module() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[1, 2, 3]).unwrap();
        assert_eq!(rt.server_compute_capability(), Some((1, 3)));
        // Trace: one initialization event with Table I byte counts.
        let ev = &rt.trace().events[0];
        assert_eq!(ev.op, "initialization");
        assert_eq!(ev.sent, 3 + 4); // x + 4
        assert_eq!(ev.received, 12); // 8 + 4
        h.join().unwrap();
    }

    #[test]
    fn calls_before_initialize_are_rejected_locally() {
        let (client_side, _server_side) = channel_pair();
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        assert_eq!(rt.malloc(4), Err(CudaError::InitializationError));
        assert_eq!(
            rt.memcpy_h2d(DevicePtr::new(1), &[0]),
            Err(CudaError::InitializationError)
        );
        assert!(rt.trace().events.is_empty(), "nothing crossed the wire");
    }

    #[test]
    fn malloc_decodes_pointer_and_traces_bytes() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![Box::new(|req, side| {
                assert!(matches!(req, Request::Malloc { size: 4096 }));
                put_u32(side, 0).unwrap();
                put_u32(side, 0x2000).unwrap();
                side.flush().unwrap();
            })],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        let ptr = rt.malloc(4096).unwrap();
        assert_eq!(ptr, DevicePtr::new(0x2000));
        let ev = rt.trace().events.last().unwrap();
        assert_eq!((ev.sent, ev.received), (8, 8)); // Table I cudaMalloc row
        h.join().unwrap();
    }

    #[test]
    fn error_codes_propagate() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![Box::new(|_, side| {
                put_u32(side, CudaError::MemoryAllocation.code()).unwrap();
                side.flush().unwrap();
            })],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        assert_eq!(rt.malloc(1 << 31), Err(CudaError::MemoryAllocation));
        h.join().unwrap();
    }

    #[test]
    fn severed_connection_is_cuda_error_unknown() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        h.join().unwrap(); // server is gone now
        assert_eq!(rt.malloc(16), Err(CudaError::Unknown));
    }

    #[test]
    fn memcpy_trace_carries_table1_sizes() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![
                Box::new(ack), // H2D
                Box::new(|req, side| {
                    // D2H: status + payload of requested size.
                    let size = match req {
                        Request::Memcpy { size, .. } => *size,
                        _ => panic!(),
                    };
                    put_u32(side, 0).unwrap();
                    put_bytes(side, &vec![7u8; size as usize]).unwrap();
                    side.flush().unwrap();
                }),
            ],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.memcpy_h2d(DevicePtr::new(0x10), &[0u8; 1000]).unwrap();
        let back = rt.memcpy_d2h(DevicePtr::new(0x10), 500).unwrap();
        assert_eq!(back, vec![7u8; 500]);
        let t = rt.trace();
        let h2d = &t.events[1];
        assert_eq!((h2d.sent, h2d.received), (1020, 4)); // x+20 / 4
        let d2h = &t.events[2];
        assert_eq!((d2h.sent, d2h.received), (20, 504)); // 20 / x+4
        assert_eq!(t.bulk_payload(), 1500);
        h.join().unwrap();
    }

    #[test]
    fn get_u32_helper_used_by_fake_is_sane() {
        // Keep the helper import exercised.
        let mut buf = Vec::new();
        put_u32(&mut buf, 9).unwrap();
        assert_eq!(get_u32(&mut std::io::Cursor::new(buf)).unwrap(), 9);
    }
}
