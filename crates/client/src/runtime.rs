//! [`RemoteRuntime`]: the CUDA Runtime implemented by remote forwarding.
//!
//! Every method marshals one request per `rcuda-proto`. In the default
//! (paper-faithful) mode each request flushes as one message and blocks on
//! the response — the synchronous semantics the paper's model covers, where
//! every CUDA call costs a network round trip.
//!
//! ## Deferred-completion pipelining
//!
//! That round trip per call is exactly what sinks short-kernel workloads on
//! high-latency networks (the paper's FFT-on-GigaE result, §IV-B). With
//! [`RemoteRuntime::set_pipeline_depth`] the client instead *defers* calls
//! that return no data — `memcpy_h2d`, `memset`, `launch`, `free`,
//! `thread_synchronize` — into an in-flight window, which drains as **one**
//! batched write (and one combined read) when:
//!
//! * the window reaches the configured depth,
//! * a result-bearing call (`malloc`, `memcpy_d2h`, ...) arrives — it rides
//!   as the final element of the batch, so even the forced flush costs a
//!   single round trip, or
//! * the application calls [`RemoteRuntime::flush_pipeline`] explicitly.
//!
//! A deferred `thread_synchronize` still executes in order on the server's
//! context (device-side ordering is preserved); only the host-blocking
//! completion moves to the drain point. Use [`RemoteRuntime::flush_pipeline`]
//! when strict host-blocking semantics are required.
//!
//! Deferred calls return `Ok(())` immediately; a failure surfaces at the
//! drain point (first failed element wins), mirroring CUDA's own
//! asynchronous error reporting. Results are bit-identical to the unbatched
//! path — the server executes batch elements in submission order on the same
//! context.
//!
//! Transport faults are reported with their cause preserved
//! ([`crate::error::transport_error`]): timeout, connection loss and
//! protocol violation each get a distinct code instead of the
//! `cudaErrorUnknown` catch-all real rCUDA uses.

use rcuda_api::{CudaRuntime, CudaRuntimeAsyncExt};
use rcuda_core::{CudaError, CudaResult, DeviceProperties, DevicePtr, Dim3, SharedClock};
use rcuda_obs::{CallSpan, ObsHandle, Op, PoolStats, SessionMetrics};
use rcuda_proto::codec::{split_minor_word, CodecHello, CodecStats, CAP_LZ4};
use rcuda_proto::handshake::{read_hello_reply, ServerHello};
use rcuda_proto::ids::{FunctionId, MemcpyKind};
use rcuda_proto::wire::{get_u32, write_all_vectored};
use rcuda_proto::{
    Batch, BatchResponse, BufferPool, Codec, CodecMode, LaunchConfig, Payload, Request, Response,
    SessionHello,
};
use rcuda_transport::Transport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::error::transport_error;
use crate::failover::{Expect, FailoverJournal};
use crate::retry::{batch_is_idempotent, is_idempotent, RetryPolicy};
use crate::trace::{CallEvent, Trace};

/// Process-wide session-token sequence (uniqueness within the process is
/// all the registry needs; the pid guards against cross-process clashes on
/// a shared daemon).
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh session token — public so a connection layer that
/// needs the token *before* `initialize` (e.g. to ask a broker where the
/// session should run) can mint one and announce it with
/// [`RemoteRuntime::set_session_token`].
pub fn fresh_session_token() -> u64 {
    ((std::process::id() as u64) << 32) ^ SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// The client side of an rCUDA session.
pub struct RemoteRuntime<T: Transport> {
    transport: T,
    clock: SharedClock,
    trace: Trace,
    /// Compute capability announced by the server at connect time.
    server_cc: Option<(u32, u32)>,
    initialized: bool,
    /// Deferred-completion window size; 0 = synchronous per-call round trips
    /// (the paper's protocol).
    pipeline_depth: usize,
    /// Calls deferred but not yet on the wire, in submission order.
    window: Vec<Request>,
    /// Per-call wall-clock budget; `None` = block indefinitely (the
    /// paper-faithful default).
    deadline: Option<Duration>,
    /// Fault retry policy; default fail-fast.
    retry: RetryPolicy,
    /// Token announced via the resumable handshake — `Some` iff retries
    /// were enabled before `initialize`.
    session_token: Option<u64>,
    /// Observer for per-call spans and retry/reconnect episodes; disarmed
    /// by default (every emission is then a `None` check, no allocation).
    obs: ObsHandle,
    /// Completed calls (batch frames count once, initialization included).
    calls: u64,
    /// Deferred calls that crossed inside batch frames.
    batched_calls: u64,
    /// Transport-fault replays across all calls.
    retries_total: u64,
    /// Retry hint from the server's last `Busy` rejection, consumed by the
    /// next backoff (which honors it as a jittered floor).
    busy_retry_hint: Option<Duration>,
    /// Replay journal for daemon-failure failover; `None` (the default)
    /// keeps recovery resume-only.
    journal: Option<FailoverJournal>,
    /// Xorshift state for the `Busy`-hint jitter. Re-seeded from the
    /// session token, so backoff schedules are deterministic per session
    /// yet decorrelated across a fleet of shed clients.
    jitter_rng: u64,
    /// Payload-buffer pool: deferred H2D bodies and launch name regions are
    /// staged in recycled buffers, so the pipelined steady state allocates
    /// nothing per call.
    pool: BufferPool,
    /// Wire codec, present iff the application opted in via
    /// [`RemoteRuntime::set_codec`]. Created once and kept across
    /// reconnects so its learned throughput model survives failover.
    codec: Option<Codec>,
    /// Whether the *current* connection negotiated the codec framing: the
    /// knob was on and the server advertised [`CAP_LZ4`] in its hello.
    /// Re-derived on every (re)connect; legacy peers leave it false.
    codec_active: bool,
}

impl<T: Transport> RemoteRuntime<T> {
    /// Wrap a connected transport. The clock timestamps the trace (wall for
    /// real runs, virtual for simulated ones).
    pub fn new(transport: T, clock: SharedClock) -> Self {
        RemoteRuntime {
            transport,
            clock,
            trace: Trace::new(),
            server_cc: None,
            initialized: false,
            pipeline_depth: 0,
            window: Vec::new(),
            deadline: None,
            retry: RetryPolicy::default(),
            session_token: None,
            obs: ObsHandle::none(),
            calls: 0,
            batched_calls: 0,
            retries_total: 0,
            busy_retry_hint: None,
            journal: None,
            jitter_rng: 0x9E37_79B9_7F4A_7C15,
            pool: BufferPool::new(),
            codec: None,
            codec_active: false,
        }
    }

    /// The compute capability the server announced (after `initialize`).
    pub fn server_compute_capability(&self) -> Option<(u32, u32)> {
        self.server_cc
    }

    /// The recorded session trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take ownership of the trace (e.g. to persist it).
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// The underlying transport — e.g. to inspect a
    /// `rcuda_transport::FaultInjector`'s fired-fault record in tests.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Install an observer: the runtime reports one [`CallSpan`] per call
    /// (and per batch frame) plus retry episodes, and the transport reports
    /// per-message byte events and reconnects. A disarmed handle uninstalls
    /// everything.
    pub fn set_observer(&mut self, obs: ObsHandle) {
        self.obs = obs.clone();
        self.transport.set_observer(obs);
    }

    /// A point-in-time snapshot of the session's cumulative counters:
    /// transport bytes/messages plus the runtime's call accounting. The
    /// `messages_sent` counter is the number of network flushes — the
    /// quantity pipelining exists to reduce.
    pub fn metrics(&self) -> SessionMetrics {
        let stats = self.transport.stats();
        SessionMetrics {
            bytes_sent: stats.bytes_sent,
            bytes_received: stats.bytes_received,
            messages_sent: stats.messages_sent,
            messages_received: stats.messages_received,
            reconnects: stats.reconnects,
            calls: self.calls,
            batched_calls: self.batched_calls,
            retries: self.retries_total,
        }
    }

    /// A snapshot of the session's payload-buffer pool counters: how often
    /// request stagings were served from recycled buffers.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Enable (depth ≥ 1) or disable (0) deferred-completion pipelining.
    /// Any deferred calls are drained first so a depth change never
    /// reorders work.
    pub fn set_pipeline_depth(&mut self, depth: usize) -> CudaResult<()> {
        self.flush_pipeline()?;
        self.pipeline_depth = depth;
        Ok(())
    }

    /// The configured in-flight window size (0 = pipelining off).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Bound every call's wall-clock time (attempts + backoffs + replays).
    /// A call that cannot complete within the budget fails with
    /// [`CudaError::TransportTimedOut`]. `None` (the default) blocks
    /// indefinitely, as the paper's synchronous protocol does.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// The per-call deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Configure fault retries. Must be set before [`CudaRuntime::initialize`]
    /// to take effect: enabling retries switches initialization to the
    /// resumable handshake that makes server-side session resume possible.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The session token announced to the server (`Some` iff the resumable
    /// handshake was used).
    pub fn session_token(&self) -> Option<u64> {
        self.session_token
    }

    /// Announce a pre-allocated session token (see [`fresh_session_token`]).
    /// Must be called before [`CudaRuntime::initialize`]; with retries
    /// enabled and no explicit token, `initialize` mints its own.
    pub fn set_session_token(&mut self, token: u64) {
        self.session_token = Some(token);
    }

    /// Arm (`Some(cap_bytes)`) or disarm (`None`) the failover replay
    /// journal. With a journal armed, a rejected session resume — the
    /// signature of the daemon holding the session having died — triggers
    /// a verified replay of the session's state-mutating prefix on
    /// whichever daemon the reconnect reached, instead of failing. The
    /// journal disarms itself permanently once its weight exceeds
    /// `cap_bytes` (H2D payloads dominate). Set before `initialize`.
    pub fn set_failover(&mut self, cap_bytes: Option<u64>) {
        self.journal = cap_bytes.map(FailoverJournal::new);
    }

    /// Whether the failover journal is armed and able to replay.
    pub fn failover_armed(&self) -> bool {
        self.journal.as_ref().is_some_and(|j| j.armed())
    }

    /// Opt into (or out of) the adaptive wire codec. Off by default — the
    /// default wire stays byte-identical to the paper's protocol (Table I).
    /// With the knob on, `initialize` reads the server's capability bits
    /// out of the compute-capability push and, when the server advertises
    /// LZ4, switches both directions of the session to the codec framing;
    /// a legacy server leaves the session raw. Set before
    /// [`CudaRuntime::initialize`]. The codec's learned throughput model
    /// persists across reconnects and failovers.
    pub fn set_codec(&mut self, enabled: bool) {
        if enabled {
            if self.codec.is_none() {
                self.codec = Some(Codec::new(self.pool.clone()));
            }
        } else {
            self.codec = None;
            self.codec_active = false;
        }
    }

    /// Override the codec's compression policy (default
    /// [`CodecMode::Adaptive`]). A no-op until [`RemoteRuntime::set_codec`]
    /// enables the codec.
    pub fn set_codec_mode(&mut self, mode: CodecMode) {
        if let Some(codec) = &self.codec {
            codec.set_mode(mode);
        }
    }

    /// Whether the current connection negotiated the codec framing.
    pub fn codec_active(&self) -> bool {
        self.codec_active
    }

    /// A snapshot of the codec's decision and byte counters (`None` when
    /// the codec was never enabled).
    pub fn codec_stats(&self) -> Option<CodecStats> {
        self.codec.as_ref().map(|c| c.stats())
    }

    /// Split the server's folded hello minor word, activate the codec when
    /// both ends support it, and queue the one-way [`CodecHello`] (it rides
    /// the same flush as the session hello that must follow). Returns the
    /// true minor compute-capability digit, caps masked off — legacy
    /// servers fold nothing, so the word passes through unchanged.
    fn negotiate_codec(&mut self, minor_word: u32) -> CudaResult<u32> {
        let (minor, caps) = split_minor_word(minor_word);
        self.codec_active = false;
        if self.codec.is_some() && caps & CAP_LZ4 != 0 {
            CodecHello { caps: CAP_LZ4 }
                .write(&mut self.transport)
                .map_err(|e| transport_error(&e))?;
            self.codec_active = true;
        }
        Ok(minor)
    }

    /// Journaled calls and their weight in bytes (`(0, 0)` when disarmed).
    pub fn failover_journal_stats(&self) -> (usize, u64) {
        self.journal
            .as_ref()
            .map_or((0, 0), |j| (j.len(), j.bytes()))
    }

    /// Deferred calls currently waiting in the window.
    pub fn pending_calls(&self) -> usize {
        self.window.len()
    }

    /// Drain the in-flight window, if any: one batched write, one combined
    /// read. Returns the first deferred failure, if any element failed.
    pub fn flush_pipeline(&mut self) -> CudaResult<()> {
        if self.window.is_empty() {
            return Ok(());
        }
        let requests = std::mem::take(&mut self.window);
        let batch = Batch::new(requests).map_err(|_| CudaError::InvalidValue)?;
        let resp = self.send_batch(&batch)?;
        first_failure(&resp.responses)
    }

    /// Arm the transport's read deadline with the call's remaining budget.
    /// Fails with [`CudaError::TransportTimedOut`] once the budget is spent.
    fn arm_deadline(&mut self, started: Instant) -> CudaResult<()> {
        let timeout = match self.deadline {
            Some(budget) => Some(
                budget
                    .checked_sub(started.elapsed())
                    .filter(|r| !r.is_zero())
                    .ok_or(CudaError::TransportTimedOut)?,
            ),
            None => None,
        };
        self.transport
            .set_read_deadline(timeout)
            .map_err(|e| transport_error(&e))
    }

    /// Whether a fault of class `err` on attempt `attempt` may be retried
    /// for a request whose idempotency is `replayable`.
    fn may_retry(&self, attempt: u32, replayable: bool, err: CudaError) -> bool {
        replayable
            && attempt < self.retry.max_retries
            && self.session_token.is_some()
            && matches!(
                err,
                CudaError::TransportTimedOut | CudaError::TransportConnectionLost
            )
    }

    /// Reconnect the transport and resume the parked server session: read
    /// the fresh connection's compute-capability push, present the session
    /// token, take the resume verdict. A server rejection surfaces as
    /// [`CudaError::InitializationError`].
    fn reestablish(&mut self) -> CudaResult<()> {
        let token = self
            .session_token
            .ok_or(CudaError::TransportConnectionLost)?;
        self.transport
            .reconnect()
            .map_err(|e| transport_error(&e))?;
        let mut cc = [0u8; 8];
        self.transport
            .read_exact(&mut cc)
            .map_err(|e| transport_error(&e))?;
        match ServerHello::from_wire(cc) {
            ServerHello::Busy { retry_after_ms } => {
                // The daemon shed the reconnect at admission; the parked
                // session is still there for a later attempt.
                self.busy_retry_hint = Some(Duration::from_millis(retry_after_ms as u64));
                return Err(CudaError::ServerBusy);
            }
            // Codec terms do not carry over a reconnect: the session may
            // resume on a daemon with different capabilities.
            ServerHello::Ready { minor, .. } => {
                self.negotiate_codec(minor)?;
            }
        }
        SessionHello::Reconnect { session: token }
            .write(&mut self.transport)
            .and_then(|_| self.transport.flush())
            .map_err(|e| transport_error(&e))?;
        read_hello_reply(&mut self.transport).map_err(|e| transport_error(&e))?
    }

    /// The pause before retry `attempt`, honoring a pending `Busy` hint.
    /// The server's hint is a jittered floor, not an exact schedule: a
    /// deterministic xorshift stretch of up to half the hint again keeps a
    /// fleet of clients shed together from returning together and
    /// re-shedding itself, while the per-session seed keeps each client's
    /// schedule reproducible.
    fn backoff_with_busy_hint(&mut self, attempt: u32) -> Duration {
        let backoff = self.retry.backoff(attempt);
        match self.busy_retry_hint.take() {
            Some(hint) => {
                self.jitter_rng ^= self.jitter_rng << 13;
                self.jitter_rng ^= self.jitter_rng >> 7;
                self.jitter_rng ^= self.jitter_rng << 17;
                let span_us = (hint.as_micros() as u64 / 2).max(1);
                backoff.max(hint + Duration::from_micros(self.jitter_rng % span_us))
            }
            None => backoff,
        }
    }

    /// The error a fault surfaces when it cannot be retried. With a
    /// failover journal armed, a transport-class fault on a non-replayable
    /// call is a *lost session*, typed as such: neither resume (the
    /// in-flight call may have executed before the daemon died) nor
    /// journal replay (it may not have) can re-establish a context that is
    /// provably the one the application was using.
    fn surface(&self, replayable: bool, err: CudaError) -> CudaError {
        if !replayable
            && self.failover_armed()
            && matches!(
                err,
                CudaError::TransportTimedOut | CudaError::TransportConnectionLost
            )
        {
            return CudaError::SessionLost;
        }
        err
    }

    /// Back off, reconnect, resume. Returns the error the caller should
    /// surface if recovery fails: a rejected resume fails over to journal
    /// replay (ending in [`CudaError::SessionLost`] if that cannot
    /// restore a provably identical context); any other recovery failure
    /// preserves the original fault.
    fn recover(&mut self, attempt: u32, original: CudaError) -> CudaResult<()> {
        let backoff = self.backoff_with_busy_hint(attempt);
        std::thread::sleep(backoff);
        match self.reestablish() {
            Ok(()) => Ok(()),
            // The server does not know the session: the daemon that held
            // it is gone (or evicted it). Only a verified replay of the
            // journaled prefix can rebuild the exact context.
            Err(CudaError::InitializationError) => self.replay_failover(),
            Err(_) => Err(original),
        }
    }

    /// Rebuild the session on whichever daemon the next dial reaches: a
    /// fresh resumable hello under the *same* token re-creates the
    /// context, then the journaled state-mutating prefix replays with each
    /// response verified against the original daemon's answer. Any
    /// failure — no journal, overflowed journal, rejected hello, a
    /// transport fault mid-replay, or a diverging handle — is terminal for
    /// the session and surfaces as [`CudaError::SessionLost`].
    fn replay_failover(&mut self) -> CudaResult<()> {
        if !self.failover_armed() || self.session_token.is_none() {
            return Err(if self.journal.is_some() {
                CudaError::SessionLost
            } else {
                CudaError::InitializationError
            });
        }
        self.try_replay_failover()
            .map_err(|_| CudaError::SessionLost)
    }

    fn try_replay_failover(&mut self) -> CudaResult<()> {
        let token = self.session_token.expect("checked by caller");
        // The resume-rejecting server closes its connection after the
        // verdict, so the replay needs a fresh dial — which a candidate-
        // rotating transport may point at a different daemon.
        self.transport
            .reconnect()
            .map_err(|e| transport_error(&e))?;
        let mut cc = [0u8; 8];
        self.transport
            .read_exact(&mut cc)
            .map_err(|e| transport_error(&e))?;
        match ServerHello::from_wire(cc) {
            ServerHello::Busy { .. } => return Err(CudaError::ServerBusy),
            ServerHello::Ready { minor, .. } => {
                self.negotiate_codec(minor)?;
            }
        }
        let journal = self.journal.as_ref().expect("armed implies a journal");
        SessionHello::Resumable {
            session: token,
            module: journal.module().to_vec(),
        }
        .write(&mut self.transport)
        .and_then(|_| self.transport.flush())
        .map_err(|e| transport_error(&e))?;
        read_hello_reply(&mut self.transport).map_err(|e| transport_error(&e))??;
        // Disjoint field borrows: the journal and codec are read while the
        // transport is driven, so no `self` method calls inside the loop.
        let codec = if self.codec_active {
            self.codec.as_ref()
        } else {
            None
        };
        for (req, expect) in journal.ops() {
            req.write_codec(&mut self.transport, codec)
                .and_then(|_| self.transport.flush())
                .map_err(|e| transport_error(&e))?;
            let resp = Response::read_codec(&mut self.transport, req, None, codec)
                .map_err(|e| transport_error(&e))?;
            if !expect.matches(&resp) {
                return Err(CudaError::SessionLost);
            }
        }
        Ok(())
    }

    /// Feed a completed exchange to the journal, if one is armed.
    fn journal_observe(&mut self, req: &Request, resp: &Response) {
        if let Some(journal) = self.journal.as_mut() {
            journal.observe(req, resp);
        }
    }

    /// Journal a borrowed-payload H2D exchange that never built a
    /// [`Request`]: the equivalent owned request is reconstructed (one
    /// copy — the price of replayability, paid only with a journal armed).
    fn journal_borrowed_h2d(&mut self, dst: DevicePtr, data: &[u8], stream: Option<u32>) {
        if !self.failover_armed() {
            return;
        }
        let req = match stream {
            None => Request::Memcpy {
                dst: dst.addr(),
                src: 0,
                size: data.len() as u32,
                kind: MemcpyKind::HostToDevice,
                data: Some(Payload::Owned(data.to_vec())),
            },
            Some(stream) => Request::MemcpyAsync {
                dst: dst.addr(),
                src: 0,
                size: data.len() as u32,
                kind: MemcpyKind::HostToDevice,
                stream,
                data: Some(Payload::Owned(data.to_vec())),
            },
        };
        if let Some(journal) = self.journal.as_mut() {
            journal.record(req, Expect::Ack);
        }
    }

    /// One write-flush-read exchange of `batch` (no retry logic).
    fn try_batch(&mut self, batch: &Batch, started: Instant) -> CudaResult<BatchResponse> {
        self.arm_deadline(started)?;
        let codec = if self.codec_active {
            self.codec.as_ref()
        } else {
            None
        };
        batch
            .write_codec(&mut self.transport, codec)
            .and_then(|_| self.transport.flush())
            .map_err(|e| transport_error(&e))?;
        BatchResponse::read_codec(&mut self.transport, batch, codec)
            .map_err(|e| transport_error(&e))
    }

    /// Write `batch` as one message, read the combined response, trace it.
    /// Faults replay (under the policy) only if *every* element is
    /// idempotent.
    fn send_batch(&mut self, batch: &Batch) -> CudaResult<BatchResponse> {
        let started = Instant::now();
        let replayable = batch_is_idempotent(batch);
        let op = Op::Batch(batch.len() as u32);
        let start = self.clock.now();
        let sent = batch.wire_bytes();
        let mut attempt = 0;
        let resp = loop {
            match self.try_batch(batch, started) {
                Ok(resp) => break resp,
                Err(e) => {
                    if !self.may_retry(attempt, replayable, e) {
                        return Err(self.surface(replayable, e));
                    }
                    self.obs.emit_retry(op, attempt);
                    self.recover(attempt, e)?;
                    attempt += 1;
                }
            }
        };
        for (req, elem) in batch.requests().iter().zip(&resp.responses) {
            self.journal_observe(req, elem);
        }
        let end = self.clock.now();
        let event = CallEvent {
            op,
            sent,
            received: resp.wire_bytes(),
            start,
            end,
        };
        self.trace.record(event);
        self.calls += 1;
        self.batched_calls += batch.len() as u64;
        self.retries_total += attempt as u64;
        self.obs.emit_call(&CallSpan {
            op,
            bytes_sent: event.sent,
            bytes_received: event.received,
            start,
            end,
            retries: attempt,
        });
        Ok(resp)
    }

    /// One write-flush-read exchange of `req` (no retry logic).
    fn try_single(&mut self, req: &Request, started: Instant) -> CudaResult<Response> {
        self.arm_deadline(started)?;
        let codec = if self.codec_active {
            self.codec.as_ref()
        } else {
            None
        };
        req.write_codec(&mut self.transport, codec)
            .and_then(|_| self.transport.flush())
            .map_err(|e| transport_error(&e))?;
        Response::read_codec(&mut self.transport, req, None, codec).map_err(|e| transport_error(&e))
    }

    /// One result-bearing exchange, traced. If deferred calls are pending,
    /// `req` rides as the final element of the draining batch, so the whole
    /// window plus this call still costs a single round trip.
    ///
    /// On a transport fault, idempotent requests replay transparently after
    /// a backed-off reconnect (when retries are configured); non-idempotent
    /// ones surface the fault immediately — a replayed `cudaMalloc` or
    /// `cudaLaunch` could double-execute.
    fn call(&mut self, op: &'static str, req: Request) -> CudaResult<Response> {
        if !self.window.is_empty() {
            let mut requests = std::mem::take(&mut self.window);
            requests.push(req);
            let batch = Batch::new(requests).map_err(|_| CudaError::InvalidValue)?;
            let mut resp = self.send_batch(&batch)?;
            let last = resp.responses.pop().ok_or(CudaError::ProtocolViolation)?;
            // Deferred failures take precedence: they happened first.
            first_failure(&resp.responses)?;
            return Ok(last);
        }
        let started = Instant::now();
        let replayable = is_idempotent(&req);
        let start = self.clock.now();
        let sent = req.wire_bytes();
        let mut attempt = 0;
        let resp = loop {
            match self.try_single(&req, started) {
                Ok(resp) => break resp,
                Err(e) => {
                    if !self.may_retry(attempt, replayable, e) {
                        return Err(self.surface(replayable, e));
                    }
                    self.obs.emit_retry(Op::Named(op), attempt);
                    self.recover(attempt, e)?;
                    attempt += 1;
                }
            }
        };
        self.journal_observe(&req, &resp);
        let end = self.clock.now();
        let received = resp.wire_bytes();
        self.trace.record(CallEvent {
            op: Op::Named(op),
            sent,
            received,
            start,
            end,
        });
        self.calls += 1;
        self.retries_total += attempt as u64;
        self.obs.emit_call(&CallSpan {
            op: Op::Named(op),
            bytes_sent: sent,
            bytes_received: received,
            start,
            end,
            retries: attempt,
        });
        Ok(resp)
    }

    /// One write-flush-read round of a borrowed-payload exchange (no retry
    /// logic). `head` and `body` go out as a single vectored message —
    /// byte-identical to the equivalent [`Request::write`] — and the reply's
    /// payload, if the caller expects one, lands straight in `into`.
    ///
    /// The outer `Err` is a transport fault (retryable); the inner result is
    /// the server's verdict (final). On a server error no payload follows
    /// the code, so `into` is left untouched.
    fn try_exchange(
        &mut self,
        head: &[u8],
        body: &[u8],
        into: Option<&mut [u8]>,
        started: Instant,
    ) -> CudaResult<CudaResult<()>> {
        self.arm_deadline(started)?;
        write_all_vectored(&mut self.transport, head, body)
            .and_then(|_| self.transport.flush())
            .map_err(|e| transport_error(&e))?;
        let status = get_u32(&mut self.transport).map_err(|e| transport_error(&e))?;
        if let Err(e) = CudaError::from_code(status) {
            return Ok(Err(e));
        }
        if let Some(buf) = into {
            // On a codec session the reply payload arrives `enc_len`-framed
            // and inflates straight into the caller's buffer. Disjoint field
            // borrows: the codec is read while the transport is driven.
            match (self.codec_active, self.codec.as_ref()) {
                (true, Some(codec)) => codec
                    .read_block_into(&mut self.transport, buf)
                    .map_err(|e| transport_error(&e))?,
                _ => self
                    .transport
                    .read_exact(buf)
                    .map_err(|e| transport_error(&e))?,
            }
        }
        Ok(Ok(()))
    }

    /// A complete borrowed-payload call: the caller's slices cross the wire
    /// (and the reply lands) without staging copies or allocation, with the
    /// same retry, deadline, trace, and observer treatment as [`call`]. Only
    /// used for idempotent memcpy exchanges, so transport faults always
    /// replay under the configured policy.
    ///
    /// [`call`]: RemoteRuntime::call
    fn exchange_borrowed(
        &mut self,
        op: &'static str,
        head: &[u8],
        body: &[u8],
        mut into: Option<&mut [u8]>,
    ) -> CudaResult<()> {
        let started = Instant::now();
        let start = self.clock.now();
        let sent = (head.len() + body.len()) as u64;
        let mut attempt = 0;
        let result = loop {
            match self.try_exchange(head, body, into.as_deref_mut(), started) {
                Ok(result) => break result,
                Err(e) => {
                    if !self.may_retry(attempt, true, e) {
                        return Err(e);
                    }
                    self.obs.emit_retry(Op::Named(op), attempt);
                    self.recover(attempt, e)?;
                    attempt += 1;
                }
            }
        };
        let end = self.clock.now();
        // Error replies carry no payload: only the 4-byte code came back.
        let received = match result {
            Ok(()) => 4 + into.map_or(0, |b| b.len() as u64),
            Err(_) => 4,
        };
        // Feed the codec's link-throughput estimate from the observed
        // round trip (bulk exchanges dominate, so the per-call overhead
        // noise washes out of the EMA).
        if result.is_ok() && attempt == 0 {
            if let Some(codec) = self.codec.as_ref() {
                codec.observe_link(sent + received, started.elapsed().as_nanos() as u64);
            }
        }
        self.trace.record(CallEvent {
            op: Op::Named(op),
            sent,
            received,
            start,
            end,
        });
        self.calls += 1;
        self.retries_total += attempt as u64;
        self.obs.emit_call(&CallSpan {
            op: Op::Named(op),
            bytes_sent: sent,
            bytes_received: received,
            start,
            end,
            retries: attempt,
        });
        result
    }

    /// Codec-aware borrowed H2D send: on a negotiated session the body is
    /// encoded through the codec (pooled scratch, no allocation) and the
    /// 4-byte `enc_len` word joins the stack-built head; a legacy session
    /// passes the caller's slices through untouched.
    fn exchange_borrowed_h2d(
        &mut self,
        op: &'static str,
        head: &[u8],
        data: &[u8],
    ) -> CudaResult<()> {
        if !self.codec_active {
            return self.exchange_borrowed(op, head, data, None);
        }
        let encoded = self
            .codec
            .as_ref()
            .expect("active implies codec")
            .encode(data);
        let body: &[u8] = encoded.as_ref().map_or(data, |p| p.as_slice());
        let mut ext = [0u8; 28];
        ext[..head.len()].copy_from_slice(head);
        ext[head.len()..head.len() + 4].copy_from_slice(&(body.len() as u32).to_le_bytes());
        self.exchange_borrowed(op, &ext[..head.len() + 4], body, None)
    }

    /// Submit a no-result call. With pipelining off this is a synchronous
    /// round trip; with pipelining on it joins the window and completes
    /// immediately, draining when the window fills.
    fn defer(&mut self, op: &'static str, req: Request) -> CudaResult<()> {
        if self.pipeline_depth == 0 {
            return self.call(op, req)?.into_ack();
        }
        self.window.push(req);
        if self.window.len() >= self.pipeline_depth {
            self.flush_pipeline()?;
        }
        Ok(())
    }

    fn ensure_initialized(&self) -> CudaResult<()> {
        if self.initialized {
            Ok(())
        } else {
            Err(CudaError::InitializationError)
        }
    }
}

/// The first error among a batch's responses, if any (submission order).
/// Checked by reference: a payload-bearing success is never cloned.
fn first_failure(responses: &[Response]) -> CudaResult<()> {
    for resp in responses {
        resp.status()?;
    }
    Ok(())
}

/// The fixed 20-byte header of a `Memcpy` request, laid out exactly as
/// [`Request::write`] encodes it (selector + dst + src + size + kind, all
/// little-endian) — the stack-built head of the borrowed fast paths.
fn memcpy_head(dst: u32, src: u32, size: u32, kind: MemcpyKind) -> [u8; 20] {
    let mut head = [0u8; 20];
    let words = [FunctionId::Memcpy.as_u32(), dst, src, size, kind.as_u32()];
    for (slot, word) in head.chunks_exact_mut(4).zip(words) {
        slot.copy_from_slice(&word.to_le_bytes());
    }
    head
}

/// The fixed 24-byte header of a `MemcpyAsync` request ([`memcpy_head`]
/// plus the trailing stream field).
fn memcpy_async_head(dst: u32, src: u32, size: u32, kind: MemcpyKind, stream: u32) -> [u8; 24] {
    let mut head = [0u8; 24];
    let words = [
        FunctionId::MemcpyAsync.as_u32(),
        dst,
        src,
        size,
        kind.as_u32(),
        stream,
    ];
    for (slot, word) in head.chunks_exact_mut(4).zip(words) {
        slot.copy_from_slice(&word.to_le_bytes());
    }
    head
}

impl<T: Transport> RemoteRuntime<T> {
    /// One full initialization exchange: CC push, module upload (resumable
    /// hello when retries are on), acknowledgement. Returns the traced byte
    /// counts.
    fn try_initialize(&mut self, module: &[u8], started: Instant) -> CudaResult<(u64, u64)> {
        self.arm_deadline(started)?;
        let mut cc = [0u8; 8];
        self.transport
            .read_exact(&mut cc)
            .map_err(|e| transport_error(&e))?;
        match ServerHello::from_wire(cc) {
            ServerHello::Busy { retry_after_ms } => {
                // Load-shed at admission: retryable, honoring the server's
                // backoff hint (see the `initialize` retry loop).
                self.busy_retry_hint = Some(Duration::from_millis(retry_after_ms as u64));
                return Err(CudaError::ServerBusy);
            }
            ServerHello::Ready { major, minor } => {
                // The minor word doubles as the capability carrier; strip
                // the caps (and opt in) before recording the CC.
                let minor = self.negotiate_codec(minor)?;
                self.server_cc = Some((major, minor));
            }
        }
        let hello = match self.session_token {
            Some(session) => SessionHello::Resumable {
                session,
                module: module.to_vec(),
            },
            None => SessionHello::Fresh {
                module: module.to_vec(),
            },
        };
        let sent = hello.wire_bytes();
        hello
            .write(&mut self.transport)
            .and_then(|_| self.transport.flush())
            .map_err(|e| transport_error(&e))?;
        read_hello_reply(&mut self.transport).map_err(|e| transport_error(&e))??;
        // Received: 8-byte CC push + 4-byte result code (Table I's 12).
        Ok((sent, 12))
    }
}

impl<T: Transport> CudaRuntime for RemoteRuntime<T> {
    fn initialize(&mut self, module: &[u8]) -> CudaResult<()> {
        // Phase 1 (Fig. 2): the server pushes its 8-byte compute capability
        // on connect; then we ship the module and take the result code.
        // With retries configured the upload becomes a resumable hello
        // (announcing the session token); the wire is otherwise unchanged,
        // so default sessions keep Table I's exact byte counts.
        if self.retry.max_retries > 0 && self.session_token.is_none() {
            self.session_token = Some(fresh_session_token());
        }
        if let Some(token) = self.session_token {
            // Per-session jitter seed (any nonzero value; tokens are).
            self.jitter_rng = token | 1;
        }
        let started = Instant::now();
        let start = self.clock.now();
        let mut attempt = 0;
        let (sent, received) = loop {
            match self.try_initialize(module, started) {
                Ok(counts) => break counts,
                Err(e) => {
                    // Nothing to resume yet: a failed initialization
                    // re-dials and redoes the full fresh handshake. A
                    // `Busy` rejection is retryable like a transport fault,
                    // but backs off at least the server's hint.
                    let retryable = matches!(
                        e,
                        CudaError::TransportTimedOut
                            | CudaError::TransportConnectionLost
                            | CudaError::ServerBusy
                    );
                    if !(retryable && attempt < self.retry.max_retries) {
                        return Err(e);
                    }
                    self.obs.emit_retry(Op::Named("initialization"), attempt);
                    let backoff = self.backoff_with_busy_hint(attempt);
                    std::thread::sleep(backoff);
                    self.transport.reconnect().map_err(|_| e)?;
                    attempt += 1;
                }
            }
        };
        let end = self.clock.now();
        self.trace.record(CallEvent {
            op: Op::Named("initialization"),
            sent,
            received,
            start,
            end,
        });
        self.calls += 1;
        self.retries_total += attempt as u64;
        self.obs.emit_call(&CallSpan {
            op: Op::Named("initialization"),
            bytes_sent: sent,
            bytes_received: received,
            start,
            end,
            retries: attempt,
        });
        if let Some(journal) = self.journal.as_mut() {
            journal.set_module(module);
        }
        self.initialized = true;
        Ok(())
    }

    fn device_properties(&mut self) -> CudaResult<DeviceProperties> {
        self.ensure_initialized()?;
        let resp = self.call("cudaGetDeviceProperties", Request::DeviceProps)?;
        match resp {
            Response::DeviceProps(Ok(blob)) => {
                serde_json::from_slice(&blob).map_err(|_| CudaError::Unknown)
            }
            Response::DeviceProps(Err(e)) => Err(e),
            _ => Err(CudaError::Unknown),
        }
    }

    fn malloc(&mut self, size: u32) -> CudaResult<DevicePtr> {
        self.ensure_initialized()?;
        self.call("cudaMalloc", Request::Malloc { size })?
            .into_malloc()
    }

    fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.defer("cudaFree", Request::Free { ptr })
    }

    fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> CudaResult<()> {
        self.ensure_initialized()?;
        // Synchronous fast path: the caller's slice goes out as the body of
        // a vectored write — no `Request` is built and nothing is copied.
        // (Safe to replay: H2D is idempotent, and the borrow outlives the
        // retry loop.) The deferred path must own its bytes until the drain,
        // so it stages one copy in a pooled buffer.
        if self.pipeline_depth == 0 && self.window.is_empty() {
            let head = memcpy_head(dst.addr(), 0, data.len() as u32, MemcpyKind::HostToDevice);
            self.exchange_borrowed_h2d("cudaMemcpyH2D", &head, data)?;
            self.journal_borrowed_h2d(dst, data, None);
            return Ok(());
        }
        let req = Request::Memcpy {
            dst: dst.addr(),
            src: 0,
            size: data.len() as u32,
            kind: MemcpyKind::HostToDevice,
            data: Some(Payload::Pooled(self.pool.copy_from(data))),
        };
        self.defer("cudaMemcpyH2D", req)
    }

    fn memcpy_d2h_into(&mut self, src: DevicePtr, buf: &mut [u8]) -> CudaResult<()> {
        self.ensure_initialized()?;
        // Any deferred work must complete first (the copy reads its
        // results); after the drain the exchange is borrowed end to end —
        // the reply payload lands straight in the caller's buffer.
        self.flush_pipeline()?;
        let head = memcpy_head(0, src.addr(), buf.len() as u32, MemcpyKind::DeviceToHost);
        self.exchange_borrowed("cudaMemcpyD2H", &head, &[], Some(buf))
    }

    fn memcpy_d2h(&mut self, src: DevicePtr, size: u32) -> CudaResult<Vec<u8>> {
        self.ensure_initialized()?;
        let req = Request::Memcpy {
            dst: 0,
            src: src.addr(),
            size,
            kind: MemcpyKind::DeviceToHost,
            data: None,
        };
        self.call("cudaMemcpyD2H", req)?.into_memcpy_to_host()
    }

    fn memcpy_d2d(&mut self, dst: DevicePtr, src: DevicePtr, size: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        let req = Request::Memcpy {
            dst: dst.addr(),
            src: src.addr(),
            size,
            kind: MemcpyKind::DeviceToDevice,
            data: None,
        };
        self.call("cudaMemcpyD2D", req)?.into_ack()
    }

    fn memset(&mut self, dst: DevicePtr, value: u8, size: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        let req = Request::Memset {
            dst: dst.addr(),
            value: value as u32,
            size,
        };
        self.defer("cudaMemset", req)
    }

    fn launch(
        &mut self,
        kernel: &str,
        grid: Dim3,
        block: Dim3,
        shared_bytes: u32,
        stream: u32,
        args: &[u8],
    ) -> CudaResult<()> {
        self.ensure_initialized()?;
        let config = LaunchConfig {
            texture_offset: 0,
            parameters_offset: 0, // filled by Request::launch
            num_textures: 0,
            block,
            grid,
            shared_bytes,
            stream,
        };
        let req = Request::launch_pooled(kernel, args, config, &self.pool);
        self.defer("cudaLaunch", req)
    }

    fn thread_synchronize(&mut self) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.defer("cudaThreadSynchronize", Request::ThreadSynchronize)
    }

    fn finalize(&mut self) -> CudaResult<()> {
        if !self.initialized {
            return Ok(());
        }
        self.call("finalization", Request::Quit)?.into_ack()?;
        self.initialized = false;
        Ok(())
    }
}

impl<T: Transport> CudaRuntimeAsyncExt for RemoteRuntime<T> {
    fn stream_create(&mut self) -> CudaResult<u32> {
        self.ensure_initialized()?;
        match self.call("cudaStreamCreate", Request::StreamCreate)? {
            Response::StreamCreate(r) => r,
            _ => Err(CudaError::Unknown),
        }
    }

    fn stream_synchronize(&mut self, stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call(
            "cudaStreamSynchronize",
            Request::StreamSynchronize { stream },
        )?
        .into_ack()
    }

    fn stream_destroy(&mut self, stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaStreamDestroy", Request::StreamDestroy { stream })?
            .into_ack()
    }

    fn memcpy_h2d_async(&mut self, dst: DevicePtr, data: &[u8], stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        // Same split as the synchronous path: borrowed vectored write when
        // nothing is pending, pooled staging when the request must ride a
        // draining batch.
        if self.window.is_empty() {
            let head = memcpy_async_head(
                dst.addr(),
                0,
                data.len() as u32,
                MemcpyKind::HostToDevice,
                stream,
            );
            self.exchange_borrowed_h2d("cudaMemcpyAsyncH2D", &head, data)?;
            self.journal_borrowed_h2d(dst, data, Some(stream));
            return Ok(());
        }
        let req = Request::MemcpyAsync {
            dst: dst.addr(),
            src: 0,
            size: data.len() as u32,
            kind: MemcpyKind::HostToDevice,
            stream,
            data: Some(Payload::Pooled(self.pool.copy_from(data))),
        };
        self.call("cudaMemcpyAsyncH2D", req)?.into_ack()
    }

    fn memcpy_d2h_async(&mut self, src: DevicePtr, size: u32, stream: u32) -> CudaResult<Vec<u8>> {
        self.ensure_initialized()?;
        let req = Request::MemcpyAsync {
            dst: 0,
            src: src.addr(),
            size,
            kind: MemcpyKind::DeviceToHost,
            stream,
            data: None,
        };
        self.call("cudaMemcpyAsyncD2H", req)?.into_memcpy_to_host()
    }

    fn memcpy_d2h_async_into(
        &mut self,
        src: DevicePtr,
        buf: &mut [u8],
        stream: u32,
    ) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.flush_pipeline()?;
        let head = memcpy_async_head(
            0,
            src.addr(),
            buf.len() as u32,
            MemcpyKind::DeviceToHost,
            stream,
        );
        self.exchange_borrowed("cudaMemcpyAsyncD2H", &head, &[], Some(buf))
    }

    fn event_create(&mut self) -> CudaResult<u32> {
        self.ensure_initialized()?;
        match self.call("cudaEventCreate", Request::EventCreate)? {
            Response::EventCreate(r) => r,
            _ => Err(CudaError::Unknown),
        }
    }

    fn event_record(&mut self, event: u32, stream: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaEventRecord", Request::EventRecord { event, stream })?
            .into_ack()
    }

    fn event_synchronize(&mut self, event: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaEventSynchronize", Request::EventSynchronize { event })?
            .into_ack()
    }

    fn event_elapsed_ms(&mut self, start: u32, end: u32) -> CudaResult<f32> {
        self.ensure_initialized()?;
        match self.call("cudaEventElapsedTime", Request::EventElapsed { start, end })? {
            Response::EventElapsed(r) => r,
            _ => Err(CudaError::Unknown),
        }
    }

    fn event_destroy(&mut self, event: u32) -> CudaResult<()> {
        self.ensure_initialized()?;
        self.call("cudaEventDestroy", Request::EventDestroy { event })?
            .into_ack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::error::result_code;
    use rcuda_core::time::wall_clock;
    use rcuda_proto::wire::{get_u32, put_bytes, put_u32};
    use rcuda_transport::{channel_pair, ChannelTransport};
    use std::io::Write;
    use std::thread;

    /// One scripted exchange of the fake server.
    type ScriptStep = Box<dyn FnOnce(&Request, &mut ChannelTransport) + Send>;

    /// A minimal protocol-speaking fake server: announces CC, acks the
    /// module, then answers `n` scripted responses.
    fn fake_server(mut side: ChannelTransport, script: Vec<ScriptStep>) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            // CC push.
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            // Module upload — read as a session hello so the fake server
            // understands both fresh uploads and the token-announcing
            // resumable form that retry-enabled clients send.
            let _hello = SessionHello::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            // Scripted exchanges.
            for step in script {
                let req = Request::read(&mut side).unwrap();
                step(&req, &mut side);
            }
        })
    }

    fn ack(req: &Request, side: &mut ChannelTransport) {
        let _ = req;
        put_u32(side, result_code(&Ok(()))).unwrap();
        side.flush().unwrap();
    }

    #[test]
    fn initialize_reads_cc_then_ships_module() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[1, 2, 3]).unwrap();
        assert_eq!(rt.server_compute_capability(), Some((1, 3)));
        // Trace: one initialization event with Table I byte counts.
        let ev = &rt.trace().events[0];
        assert_eq!(ev.op, "initialization");
        assert_eq!(ev.sent, 3 + 4); // x + 4
        assert_eq!(ev.received, 12); // 8 + 4
        h.join().unwrap();
    }

    #[test]
    fn calls_before_initialize_are_rejected_locally() {
        let (client_side, _server_side) = channel_pair();
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        assert_eq!(rt.malloc(4), Err(CudaError::InitializationError));
        assert_eq!(
            rt.memcpy_h2d(DevicePtr::new(1), &[0]),
            Err(CudaError::InitializationError)
        );
        assert!(rt.trace().events.is_empty(), "nothing crossed the wire");
    }

    #[test]
    fn malloc_decodes_pointer_and_traces_bytes() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![Box::new(|req, side| {
                assert!(matches!(req, Request::Malloc { size: 4096 }));
                put_u32(side, 0).unwrap();
                put_u32(side, 0x2000).unwrap();
                side.flush().unwrap();
            })],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        let ptr = rt.malloc(4096).unwrap();
        assert_eq!(ptr, DevicePtr::new(0x2000));
        let ev = rt.trace().events.last().unwrap();
        assert_eq!((ev.sent, ev.received), (8, 8)); // Table I cudaMalloc row
        h.join().unwrap();
    }

    #[test]
    fn error_codes_propagate() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![Box::new(|_, side| {
                put_u32(side, CudaError::MemoryAllocation.code()).unwrap();
                side.flush().unwrap();
            })],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        assert_eq!(rt.malloc(1 << 31), Err(CudaError::MemoryAllocation));
        h.join().unwrap();
    }

    #[test]
    fn severed_connection_reports_connection_lost() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        h.join().unwrap(); // server is gone now
                           // The cause is preserved (UnexpectedEof/BrokenPipe → connection
                           // lost), not collapsed into cudaErrorUnknown like real rCUDA does.
        assert_eq!(rt.malloc(16), Err(CudaError::TransportConnectionLost));
    }

    #[test]
    fn memcpy_trace_carries_table1_sizes() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![
                Box::new(ack), // H2D
                Box::new(|req, side| {
                    // D2H: status + payload of requested size.
                    let size = match req {
                        Request::Memcpy { size, .. } => *size,
                        _ => panic!(),
                    };
                    put_u32(side, 0).unwrap();
                    put_bytes(side, &vec![7u8; size as usize]).unwrap();
                    side.flush().unwrap();
                }),
            ],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.memcpy_h2d(DevicePtr::new(0x10), &[0u8; 1000]).unwrap();
        let back = rt.memcpy_d2h(DevicePtr::new(0x10), 500).unwrap();
        assert_eq!(back, vec![7u8; 500]);
        let t = rt.trace();
        let h2d = &t.events[1];
        assert_eq!((h2d.sent, h2d.received), (1020, 4)); // x+20 / 4
        let d2h = &t.events[2];
        assert_eq!((d2h.sent, d2h.received), (20, 504)); // 20 / x+4
        assert_eq!(t.bulk_payload(), 1500);
        h.join().unwrap();
    }

    /// A protocol-speaking fake that answers batched frames: one combined
    /// response with an Ack per element (and the scripted closure for any
    /// result-bearing tail).
    fn fake_batch_server(
        mut side: ChannelTransport,
        mut exchanges: u32,
    ) -> thread::JoinHandle<Vec<usize>> {
        use rcuda_proto::Frame;
        thread::spawn(move || {
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            let _init = Request::read_init(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            let mut batch_sizes = Vec::new();
            while exchanges > 0 {
                match Frame::read(&mut side).unwrap() {
                    Frame::Single(req) => {
                        exchanges -= 1;
                        answer(&req, &mut side);
                        side.flush().unwrap();
                    }
                    Frame::Batch(batch) => {
                        exchanges -= 1;
                        batch_sizes.push(batch.len());
                        put_u32(&mut side, batch.len() as u32).unwrap();
                        for req in batch.requests() {
                            answer(req, &mut side);
                        }
                        side.flush().unwrap();
                    }
                }
            }
            batch_sizes
        })
    }

    /// Answer one request with a plausible success response.
    fn answer(req: &Request, side: &mut ChannelTransport) {
        match req {
            Request::Malloc { .. } => {
                put_u32(side, 0).unwrap();
                put_u32(side, 0x4000).unwrap();
            }
            Request::Memcpy { size, kind, .. } if *kind == MemcpyKind::DeviceToHost => {
                put_u32(side, 0).unwrap();
                put_bytes(side, &vec![9u8; *size as usize]).unwrap();
            }
            _ => put_u32(side, 0).unwrap(),
        }
    }

    #[test]
    fn deferred_calls_drain_as_one_batch_when_window_fills() {
        let (client_side, server_side) = channel_pair();
        // Expect: init exchange handled separately; then ONE batch frame.
        let h = fake_batch_server(server_side, 1);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.set_pipeline_depth(3).unwrap();
        rt.memcpy_h2d(DevicePtr::new(0x10), &[1, 2, 3, 4]).unwrap();
        assert_eq!(rt.pending_calls(), 1, "deferred, not sent");
        rt.memset(DevicePtr::new(0x10), 0, 4).unwrap();
        assert_eq!(rt.pending_calls(), 2);
        rt.free(DevicePtr::new(0x10)).unwrap(); // window full -> drains
        assert_eq!(rt.pending_calls(), 0);
        let sizes = h.join().unwrap();
        assert_eq!(sizes, vec![3], "three calls crossed as one frame");
        // Trace shows one batch event covering all three calls.
        let ev = rt.trace().events.last().unwrap();
        assert_eq!(ev.op, "batch[3]");
    }

    #[test]
    fn result_bearing_call_rides_as_final_batch_element() {
        let (client_side, server_side) = channel_pair();
        let h = fake_batch_server(server_side, 1);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.set_pipeline_depth(8).unwrap();
        rt.memcpy_h2d(DevicePtr::new(0x10), &[1, 2, 3, 4]).unwrap();
        rt.launch("k", Dim3::new(1, 1, 1), Dim3::new(1, 1, 1), 0, 0, &[])
            .unwrap();
        // D2H forces the drain and joins the same frame.
        let back = rt.memcpy_d2h(DevicePtr::new(0x10), 4).unwrap();
        assert_eq!(back, vec![9u8; 4]);
        assert_eq!(rt.pending_calls(), 0);
        let sizes = h.join().unwrap();
        assert_eq!(sizes, vec![3], "h2d + launch + d2h in one frame");
    }

    #[test]
    fn explicit_flush_drains_the_window() {
        let (client_side, server_side) = channel_pair();
        let h = fake_batch_server(server_side, 1);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.set_pipeline_depth(8).unwrap();
        rt.memset(DevicePtr::new(0x10), 7, 16).unwrap();
        assert_eq!(rt.pending_calls(), 1);
        rt.flush_pipeline().unwrap();
        assert_eq!(rt.pending_calls(), 0);
        assert_eq!(h.join().unwrap(), vec![1]);
    }

    #[test]
    fn depth_zero_is_bitwise_the_synchronous_protocol() {
        // With pipelining off nothing batches: the fake sees only single
        // frames, exactly as before this feature existed.
        let (client_side, server_side) = channel_pair();
        let h = fake_batch_server(server_side, 2);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.memcpy_h2d(DevicePtr::new(0x10), &[1]).unwrap();
        rt.free(DevicePtr::new(0x10)).unwrap();
        assert_eq!(h.join().unwrap(), Vec::<usize>::new(), "no batch frames");
    }

    #[test]
    fn deferred_error_surfaces_at_the_drain_point() {
        use rcuda_proto::Frame;
        let (client_side, server_side) = channel_pair();
        let h = thread::spawn(move || {
            let mut side = server_side;
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            let _ = Request::read_init(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            // One batch of 2: first element fails, second succeeds.
            let batch = match Frame::read(&mut side).unwrap() {
                Frame::Batch(b) => b,
                other => panic!("{other:?}"),
            };
            assert_eq!(batch.len(), 2);
            put_u32(&mut side, 2).unwrap();
            put_u32(&mut side, CudaError::InvalidDevicePointer.code()).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
        });
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.set_pipeline_depth(2).unwrap();
        // The doomed call itself completes immediately...
        rt.free(DevicePtr::new(0xBAD)).unwrap();
        // ...and its failure surfaces when the window drains.
        assert_eq!(
            rt.memset(DevicePtr::new(0x10), 0, 4),
            Err(CudaError::InvalidDevicePointer)
        );
        h.join().unwrap();
    }

    #[test]
    fn pipelining_halves_message_count_for_deferred_runs() {
        let (client_side, server_side) = channel_pair();
        let h = fake_batch_server(server_side, 2);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        let after_init = rt.metrics().messages_sent;
        rt.set_pipeline_depth(4).unwrap();
        for _ in 0..2 {
            rt.memcpy_h2d(DevicePtr::new(0x10), &[0; 8]).unwrap();
            rt.memset(DevicePtr::new(0x10), 0, 8).unwrap();
            rt.launch("k", Dim3::new(1, 1, 1), Dim3::new(1, 1, 1), 0, 0, &[])
                .unwrap();
            rt.free(DevicePtr::new(0x10)).unwrap();
        }
        let flushes = rt.metrics().messages_sent - after_init;
        assert_eq!(flushes, 2, "8 calls crossed in 2 flushes");
        assert_eq!(h.join().unwrap(), vec![4, 4]);
    }

    #[test]
    fn deadline_bounds_a_silent_server() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![Box::new(|_req, _side| {
                // Swallow the request: never respond (a stalled network).
                std::thread::sleep(Duration::from_millis(300));
            })],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[]).unwrap();
        rt.set_deadline(Some(Duration::from_millis(50)));
        let begun = Instant::now();
        assert_eq!(rt.malloc(16), Err(CudaError::TransportTimedOut));
        assert!(
            begun.elapsed() < Duration::from_millis(280),
            "returned within the deadline, not when the server got around to it"
        );
        h.join().unwrap();
    }

    #[test]
    fn retries_announce_a_session_token() {
        let (client_side, mut side) = channel_pair();
        let h = thread::spawn(move || {
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            let hello = rcuda_proto::SessionHello::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            hello
        });
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        assert_eq!(rt.session_token(), None);
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(2));
        rt.initialize(&[9, 9]).unwrap();
        match h.join().unwrap() {
            rcuda_proto::SessionHello::Resumable { session, module } => {
                assert_eq!(Some(session), rt.session_token());
                assert_eq!(module, vec![9, 9]);
            }
            other => panic!("expected resumable hello, got {other:?}"),
        }
        // Received bytes keep Table I's 12; sent grows by exactly the
        // 12-byte hello overhead (selector + token).
        let ev = &rt.trace().events[0];
        assert_eq!(ev.received, 12);
        assert_eq!(ev.sent, 12 + 4 + 2);
    }

    #[test]
    fn default_sessions_have_no_token_and_unchanged_wire() {
        // fake_server parses the paper's positional init: if the default
        // path grew a selector this would fail to parse.
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.initialize(&[1, 2, 3]).unwrap();
        assert_eq!(rt.session_token(), None);
        h.join().unwrap();
    }

    #[test]
    fn get_u32_helper_used_by_fake_is_sane() {
        // Keep the helper import exercised.
        let mut buf = Vec::new();
        put_u32(&mut buf, 9).unwrap();
        assert_eq!(get_u32(&mut std::io::Cursor::new(buf)).unwrap(), 9);
    }

    #[test]
    fn busy_hint_backoff_is_jittered_but_floored_at_the_hint() {
        let (client_side, _server) = channel_pair();
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(3));
        let hint = Duration::from_millis(10);
        let mut draws = Vec::new();
        for _ in 0..8 {
            rt.busy_retry_hint = Some(hint);
            let b = rt.backoff_with_busy_hint(0);
            assert!(b >= hint, "the server's hint is a floor: {b:?}");
            assert!(
                b < hint * 3 / 2 + Duration::from_micros(1),
                "jitter ≤ half the hint: {b:?}"
            );
            draws.push(b);
        }
        assert!(
            draws.windows(2).any(|w| w[0] != w[1]),
            "successive draws must not all collide: {draws:?}"
        );
        // Without a pending hint the plain deterministic curve applies.
        assert_eq!(rt.backoff_with_busy_hint(0), rt.retry_policy().backoff(0));
    }

    #[test]
    fn busy_hint_jitter_is_deterministic_per_seed_and_differs_across_seeds() {
        let hint = Duration::from_millis(20);
        let schedule = |seed: u64| -> Vec<Duration> {
            let (side, _peer) = channel_pair();
            let mut rt = RemoteRuntime::new(side, wall_clock());
            rt.set_retry_policy(crate::retry::RetryPolicy::retries(3));
            rt.jitter_rng = seed | 1;
            (0..4)
                .map(|_| {
                    rt.busy_retry_hint = Some(hint);
                    rt.backoff_with_busy_hint(0)
                })
                .collect()
        };
        assert_eq!(schedule(0xAB), schedule(0xAB), "reproducible per session");
        assert_ne!(
            schedule(0xAB),
            schedule(0xCD),
            "shed clients with different tokens spread out"
        );
    }

    #[test]
    fn journal_records_mutations_and_skips_reads() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(
            server_side,
            vec![
                Box::new(|_, side| {
                    put_u32(side, 0).unwrap();
                    put_u32(side, 0x1000).unwrap();
                    side.flush().unwrap();
                }),
                Box::new(ack), // H2D (borrowed fast path)
                Box::new(|req, side| {
                    let size = match req {
                        Request::Memcpy { size, .. } => *size,
                        _ => panic!(),
                    };
                    put_u32(side, 0).unwrap();
                    put_bytes(side, &vec![1u8; size as usize]).unwrap();
                    side.flush().unwrap();
                }),
            ],
        );
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(2));
        rt.set_failover(Some(1 << 20));
        rt.initialize(&[7, 7]).unwrap();
        let p = rt.malloc(16).unwrap();
        rt.memcpy_h2d(p, &[9u8; 16]).unwrap();
        let _ = rt.memcpy_d2h(p, 16).unwrap();
        let (ops, bytes) = rt.failover_journal_stats();
        assert_eq!(ops, 2, "malloc + h2d journaled, d2h skipped");
        assert!(bytes > 16, "the H2D payload weighs in");
        assert!(rt.failover_armed());
        h.join().unwrap();
    }

    #[test]
    fn journal_overflow_disarms_failover() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![Box::new(ack), Box::new(ack)]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(2));
        rt.set_failover(Some(64));
        rt.initialize(&[]).unwrap();
        rt.memcpy_h2d(DevicePtr::new(0x1000), &[0u8; 40]).unwrap();
        assert!(rt.failover_armed());
        rt.memcpy_h2d(DevicePtr::new(0x1000), &[0u8; 40]).unwrap();
        assert!(!rt.failover_armed(), "cap exceeded: journal disarmed");
        assert_eq!(rt.failover_journal_stats().0, 0);
        h.join().unwrap();
    }

    /// A server scripting the failover sequence: rejects the Reconnect
    /// resume (daemon died), then serves the replay — resumable hello +
    /// journaled prefix — answering `replay` with each step's response.
    fn failover_server(
        mut side: ChannelTransport,
        reject_resume: bool,
        replay: Vec<ScriptStep>,
    ) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            let hello = rcuda_proto::SessionHello::read(&mut side).unwrap();
            match hello {
                rcuda_proto::SessionHello::Reconnect { .. } => {
                    put_u32(&mut side, CudaError::InitializationError.code()).unwrap();
                    side.flush().unwrap();
                    assert!(reject_resume, "unexpected resume rejection");
                    // The daemon closes a rejected connection.
                }
                rcuda_proto::SessionHello::Resumable { .. } => {
                    put_u32(&mut side, 0).unwrap();
                    side.flush().unwrap();
                    for step in replay {
                        let req = Request::read(&mut side).unwrap();
                        step(&req, &mut side);
                    }
                }
                other => panic!("unexpected hello {other:?}"),
            }
        })
    }

    #[test]
    fn rejected_resume_fails_over_by_verified_replay() {
        use rcuda_transport::ReconnectTransport;
        // Dial plan: the resume-rejecting incarnation, then the survivor
        // that serves the replay, then the retried in-flight call.
        let (c2, s2) = channel_pair();
        let (c3, s3) = channel_pair();
        let mut dials: Vec<ChannelTransport> = vec![c3, c2];
        let (c0, s0) = channel_pair();
        let transport = ReconnectTransport::new(c0, move || {
            dials
                .pop()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "out"))
        });

        // Original daemon: init + malloc + h2d, then dies mid-d2h.
        let h0 = thread::spawn(move || {
            let mut side = s0;
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            let _ = rcuda_proto::SessionHello::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            let _malloc = Request::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            put_u32(&mut side, 0x1000).unwrap();
            side.flush().unwrap();
            let _h2d = Request::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            // Swallow the D2H and die: the daemon crashed.
            let _d2h = Request::read(&mut side).unwrap();
        });
        // Reconnect #1: a daemon that doesn't know the session.
        let h1 = failover_server(s2, true, vec![]);
        // Reconnect #2 (inside replay_failover): serves the verified
        // replay, then the retried D2H.
        let h2 = failover_server(
            s3,
            false,
            vec![
                Box::new(|req, side| {
                    assert!(matches!(req, Request::Malloc { size: 16 }));
                    put_u32(side, 0).unwrap();
                    put_u32(side, 0x1000).unwrap(); // same deterministic ptr
                    side.flush().unwrap();
                }),
                Box::new(|req, side| {
                    match req {
                        Request::Memcpy { kind, data, .. } => {
                            assert_eq!(*kind, MemcpyKind::HostToDevice);
                            assert_eq!(data.as_ref().unwrap().as_slice(), &[9u8; 16]);
                        }
                        other => panic!("{other:?}"),
                    }
                    ack(req, side);
                }),
                Box::new(|req, side| {
                    // The retried in-flight D2H, served after failover.
                    let size = match req {
                        Request::Memcpy { size, .. } => *size,
                        other => panic!("{other:?}"),
                    };
                    put_u32(side, 0).unwrap();
                    put_bytes(side, &vec![9u8; size as usize]).unwrap();
                    side.flush().unwrap();
                }),
            ],
        );

        let mut rt = RemoteRuntime::new(transport, wall_clock());
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(3));
        rt.set_failover(Some(1 << 20));
        rt.initialize(&[1]).unwrap();
        let p = rt.malloc(16).unwrap();
        rt.memcpy_h2d(p, &[9u8; 16]).unwrap();
        // The daemon dies mid-call; the failover must hand back the exact
        // bytes, transparently.
        assert_eq!(rt.memcpy_d2h(p, 16).unwrap(), vec![9u8; 16]);
        h0.join().unwrap();
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn diverging_replay_surfaces_session_lost() {
        use rcuda_transport::ReconnectTransport;
        let (c2, s2) = channel_pair();
        let (c3, s3) = channel_pair();
        let mut dials: Vec<ChannelTransport> = vec![c3, c2];
        let (c0, s0) = channel_pair();
        let transport = ReconnectTransport::new(c0, move || {
            dials
                .pop()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "out"))
        });
        let h0 = thread::spawn(move || {
            let mut side = s0;
            put_bytes(&mut side, &1u32.to_le_bytes()).unwrap();
            put_bytes(&mut side, &3u32.to_le_bytes()).unwrap();
            side.flush().unwrap();
            let _ = rcuda_proto::SessionHello::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            side.flush().unwrap();
            let _malloc = Request::read(&mut side).unwrap();
            put_u32(&mut side, 0).unwrap();
            put_u32(&mut side, 0x1000).unwrap();
            side.flush().unwrap();
            let _sync = Request::read(&mut side).unwrap(); // die mid-call
        });
        let h1 = failover_server(s2, true, vec![]);
        // The survivor's allocator answers a DIFFERENT pointer: the rebuilt
        // context provably diverges, so failover must abort.
        let h2 = failover_server(
            s3,
            false,
            vec![Box::new(|_, side| {
                put_u32(side, 0).unwrap();
                put_u32(side, 0x2000).unwrap();
                side.flush().unwrap();
            })],
        );
        let mut rt = RemoteRuntime::new(transport, wall_clock());
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(3));
        rt.set_failover(Some(1 << 20));
        rt.initialize(&[1]).unwrap();
        let _p = rt.malloc(16).unwrap();
        assert_eq!(
            rt.thread_synchronize(),
            Err(CudaError::SessionLost),
            "a diverging handle must surface the typed loss, not wrong results"
        );
        h0.join().unwrap();
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn non_idempotent_inflight_fault_surfaces_session_lost_with_journal() {
        let (client_side, server_side) = channel_pair();
        let h = fake_server(server_side, vec![]);
        let mut rt = RemoteRuntime::new(client_side, wall_clock());
        rt.set_retry_policy(crate::retry::RetryPolicy::retries(2));
        rt.set_failover(Some(1 << 20));
        rt.initialize(&[]).unwrap();
        h.join().unwrap(); // daemon gone
        assert_eq!(
            rt.malloc(16),
            Err(CudaError::SessionLost),
            "an unknowable in-flight mutation means the session is lost"
        );
    }
}
