//! Retry policy and the idempotency classification that gates it.
//!
//! A transport fault leaves the client unable to tell whether the server
//! executed the in-flight request before the connection died. Replaying is
//! therefore only safe for **idempotent** requests — those whose re-execution
//! on the server's (resumed) context cannot change observable state:
//!
//! * pure reads: device queries, device-to-host copies, elapsed-time reads;
//! * absolute writes: host-to-device copies and memsets to an allocation the
//!   client owns — writing the same bytes to the same address twice equals
//!   writing them once;
//! * synchronization: waiting twice is waiting once.
//!
//! Everything that allocates, frees, creates, destroys, or enqueues work —
//! `cudaMalloc`, `cudaFree`, `cudaLaunch`, stream/event create/destroy,
//! `cudaEventRecord` — is **not** replayable: a retry could double-allocate,
//! double-free, or double-execute a kernel. Faults on those calls surface to
//! the application immediately as a transport-class [`rcuda_core::CudaError`]
//! even when retries are enabled.
//!
//! The backoff sequence is deterministic (no jitter): exponential doubling
//! from `base_backoff`, capped at `max_backoff`. Determinism matters more
//! here than thundering-herd protection — the conformance suite replays
//! fault schedules byte-for-byte.

use rcuda_proto::{Batch, Request};
use std::time::Duration;

/// When and how often a faulted call is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail-fast, the default:
    /// faults surface immediately exactly as before retry support existed).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Fail-fast: no retries (the default).
    pub fn none() -> RetryPolicy {
        RetryPolicy::default()
    }

    /// Retry up to `max_retries` times with the default backoff curve.
    pub fn retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (0-based): exponential
    /// doubling from `base_backoff`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }
}

/// Whether `req` may be transparently replayed after a reconnect.
pub fn is_idempotent(req: &Request) -> bool {
    match req {
        // Pure reads.
        Request::DeviceProps => true,
        // All memcpy kinds: H2D/memset write absolute bytes to an owned
        // allocation, D2H/D2D read or re-copy the same source.
        Request::Memcpy { .. } | Request::MemcpyAsync { .. } | Request::Memset { .. } => true,
        // Waiting twice is waiting once.
        Request::ThreadSynchronize
        | Request::StreamSynchronize { .. }
        | Request::EventSynchronize { .. }
        | Request::EventElapsed { .. } => true,
        // The module upload is replayed in full by re-initialization.
        Request::Init { .. } => true,
        // State-changing: a replay double-allocates, double-frees,
        // double-launches, or re-stamps an event.
        Request::Malloc { .. }
        | Request::Free { .. }
        | Request::Launch { .. }
        | Request::StreamCreate
        | Request::StreamDestroy { .. }
        | Request::EventCreate
        | Request::EventRecord { .. }
        | Request::EventDestroy { .. }
        | Request::Quit => false,
    }
}

/// A batch is replayable only if every element is.
pub fn batch_is_idempotent(batch: &Batch) -> bool {
    batch.requests().iter().all(is_idempotent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::DevicePtr;
    use rcuda_proto::ids::MemcpyKind;

    fn h2d() -> Request {
        Request::Memcpy {
            dst: 0x10,
            src: 0,
            size: 4,
            kind: MemcpyKind::HostToDevice,
            data: Some(vec![0; 4].into()),
        }
    }

    #[test]
    fn default_is_fail_fast() {
        assert_eq!(RetryPolicy::default().max_retries, 0);
        assert_eq!(RetryPolicy::none(), RetryPolicy::default());
        assert_eq!(RetryPolicy::retries(3).max_retries, 3);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(6), Duration::from_millis(64));
        assert_eq!(p.backoff(7), Duration::from_millis(100), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(100), "no overflow");
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::retries(5);
        for attempt in 0..8 {
            assert_eq!(p.backoff(attempt), p.backoff(attempt));
        }
    }

    #[test]
    fn reads_copies_and_syncs_replay() {
        for req in [
            Request::DeviceProps,
            h2d(),
            Request::Memcpy {
                dst: 0,
                src: 0x10,
                size: 4,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
            Request::Memset {
                dst: 0x10,
                value: 0,
                size: 4,
            },
            Request::ThreadSynchronize,
            Request::StreamSynchronize { stream: 1 },
            Request::EventSynchronize { event: 1 },
            Request::EventElapsed { start: 1, end: 2 },
            Request::Init { module: vec![] },
        ] {
            assert!(is_idempotent(&req), "{req:?}");
        }
    }

    #[test]
    fn state_changers_never_replay() {
        for req in [
            Request::Malloc { size: 4 },
            Request::Free {
                ptr: DevicePtr::new(0x10),
            },
            Request::launch("k", &[], rcuda_proto::LaunchConfig::simple(1, 1)),
            Request::StreamCreate,
            Request::StreamDestroy { stream: 1 },
            Request::EventCreate,
            Request::EventRecord {
                event: 1,
                stream: 0,
            },
            Request::EventDestroy { event: 1 },
            Request::Quit,
        ] {
            assert!(!is_idempotent(&req), "{req:?}");
        }
    }

    #[test]
    fn batch_replayability_is_all_or_nothing() {
        let all_safe = Batch::new(vec![h2d(), Request::ThreadSynchronize]).unwrap();
        assert!(batch_is_idempotent(&all_safe));
        let one_unsafe = Batch::new(vec![
            h2d(),
            Request::launch("k", &[], rcuda_proto::LaunchConfig::simple(1, 1)),
        ])
        .unwrap();
        assert!(!batch_is_idempotent(&one_unsafe));
    }
}
