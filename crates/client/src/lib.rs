//! The rCUDA client library.
//!
//! §III: "clients employ a library of wrappers to the CUDA Runtime API"
//! which forward every call to the server as one request/response exchange.
//! [`RemoteRuntime`] is that library: it implements
//! [`rcuda_api::CudaRuntime`] over any [`rcuda_transport::Transport`] — real
//! TCP for functional runs, a simulated network for modeled runs — so
//! applications are oblivious to the GPU being remote.
//!
//! The client also records a [`trace::Trace`] of every call (operation,
//! bytes each way, start/end times), the raw material of the paper's
//! methodology: "we analyze the traces of two different case studies over
//! two different networks" (§I).

pub mod error;
pub(crate) mod failover;
pub mod retry;
pub mod runtime;
pub mod trace;

pub use error::transport_error;
pub use retry::{batch_is_idempotent, is_idempotent, RetryPolicy};
pub use runtime::{fresh_session_token, RemoteRuntime};
pub use trace::{CallEvent, Trace};
