//! Replay journal for daemon-failure failover.
//!
//! When the daemon holding a session dies, the parked context dies with
//! it: the client's `Reconnect` presents a token no surviving daemon
//! knows, and resume is rejected. With a journal armed the client can do
//! better than giving up. The simulated GPU's allocator is deterministic
//! (first-fit over a fixed base, same alignment everywhere), so replaying
//! the session's state-mutating prefix on a fresh context reproduces the
//! same device pointers, stream/event handles, and memory contents, bit
//! for bit. The journal records exactly that prefix: every completed call
//! that changed context state, together with the handle the original
//! daemon answered.
//!
//! Replay is verified, not assumed. Each replayed call's response must
//! equal the recorded outcome; any divergence means the rebuilt context
//! is *not* the session the application was using, and the failover
//! aborts with [`rcuda_core::CudaError::SessionLost`] rather than
//! returning plausible-but-wrong results.
//!
//! The journal is bounded: host-to-device payloads dominate its weight,
//! so once the configured byte cap is exceeded the journal irreversibly
//! disarms (recording stops, the buffered prefix is dropped) and the
//! session falls back to resume-only recovery. A disarmed journal is
//! honest — a truncated one could only replay a context that diverges
//! from the real session silently.

use rcuda_proto::ids::MemcpyKind;
use rcuda_proto::{Payload, Request, Response};

/// What the original daemon answered to a journaled call — verified
/// against the replaying daemon's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Expect {
    /// Bare acknowledgement.
    Ack,
    /// `cudaMalloc` returned this device address.
    Ptr(u32),
    /// `cudaStreamCreate` returned this handle.
    Stream(u32),
    /// `cudaEventCreate` returned this handle.
    Event(u32),
}

impl Expect {
    /// Does the replay's response reproduce the recorded outcome?
    pub(crate) fn matches(&self, resp: &Response) -> bool {
        match (self, resp) {
            (Expect::Ack, Response::Ack(Ok(()))) => true,
            (Expect::Ptr(addr), Response::Malloc(Ok(p))) => p.addr() == *addr,
            (Expect::Stream(h), Response::StreamCreate(Ok(r))) => r == h,
            (Expect::Event(h), Response::EventCreate(Ok(r))) => r == h,
            _ => false,
        }
    }
}

/// The session's replayable state-mutating prefix.
pub(crate) struct FailoverJournal {
    /// Module bytes shipped at initialization (replayed via the resumable
    /// hello that re-creates the context on the surviving daemon).
    module: Vec<u8>,
    /// Completed state-mutating calls in submission order, each with its
    /// verified outcome.
    ops: Vec<(Request, Expect)>,
    /// Journal weight in request wire bytes.
    bytes: u64,
    /// Byte cap; exceeding it disarms the journal for good.
    cap: u64,
    overflowed: bool,
}

impl FailoverJournal {
    pub(crate) fn new(cap: u64) -> FailoverJournal {
        FailoverJournal {
            module: Vec::new(),
            ops: Vec::new(),
            bytes: 0,
            cap,
            overflowed: false,
        }
    }

    /// Still able to replay (the cap was never exceeded).
    pub(crate) fn armed(&self) -> bool {
        !self.overflowed
    }

    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }

    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    pub(crate) fn module(&self) -> &[u8] {
        &self.module
    }

    pub(crate) fn set_module(&mut self, module: &[u8]) {
        self.module = module.to_vec();
    }

    pub(crate) fn ops(&self) -> &[(Request, Expect)] {
        &self.ops
    }

    /// Record one completed exchange, if it mutated context state. Pure
    /// reads (D2H copies, queries) and synchronization don't shape the
    /// context, so they are not replayed; failed calls changed nothing.
    pub(crate) fn observe(&mut self, req: &Request, resp: &Response) {
        if self.overflowed {
            return;
        }
        let entry = match (req, resp) {
            (Request::Malloc { .. }, Response::Malloc(Ok(p))) => {
                Some((req.clone(), Expect::Ptr(p.addr())))
            }
            (Request::StreamCreate, Response::StreamCreate(Ok(h))) => {
                Some((req.clone(), Expect::Stream(*h)))
            }
            (Request::EventCreate, Response::EventCreate(Ok(h))) => {
                Some((req.clone(), Expect::Event(*h)))
            }
            (
                Request::Free { .. }
                | Request::Memset { .. }
                | Request::Launch { .. }
                | Request::StreamDestroy { .. }
                | Request::EventRecord { .. }
                | Request::EventDestroy { .. },
                Response::Ack(Ok(())),
            ) => Some((req.clone(), Expect::Ack)),
            (
                Request::Memcpy { kind, .. } | Request::MemcpyAsync { kind, .. },
                Response::Ack(Ok(())),
            ) if writes_device(*kind) => Some((own_payload(req.clone()), Expect::Ack)),
            _ => None,
        };
        if let Some((req, expect)) = entry {
            self.push(req, expect);
        }
    }

    /// Record an exchange that bypassed [`Request`] marshalling (the
    /// borrowed H2D fast paths): the caller reconstructs the equivalent
    /// owned request.
    pub(crate) fn record(&mut self, req: Request, expect: Expect) {
        if self.overflowed {
            return;
        }
        self.push(req, expect);
    }

    fn push(&mut self, req: Request, expect: Expect) {
        self.bytes += req.wire_bytes();
        if self.bytes > self.cap {
            self.ops.clear();
            self.ops.shrink_to_fit();
            self.overflowed = true;
            return;
        }
        self.ops.push((req, expect));
    }
}

/// Memcpy kinds whose replay re-shapes device contents.
fn writes_device(kind: MemcpyKind) -> bool {
    matches!(kind, MemcpyKind::HostToDevice | MemcpyKind::DeviceToDevice)
}

/// Detach a journaled request from the buffer pool: a pooled payload held
/// for the journal's lifetime would pin its recycled buffer forever.
fn own_payload(req: Request) -> Request {
    match req {
        Request::Memcpy {
            dst,
            src,
            size,
            kind,
            data: Some(Payload::Pooled(buf)),
        } => Request::Memcpy {
            dst,
            src,
            size,
            kind,
            data: Some(Payload::Owned(buf.to_vec())),
        },
        Request::MemcpyAsync {
            dst,
            src,
            size,
            kind,
            stream,
            data: Some(Payload::Pooled(buf)),
        } => Request::MemcpyAsync {
            dst,
            src,
            size,
            kind,
            stream,
            data: Some(Payload::Owned(buf.to_vec())),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_core::{CudaError, DevicePtr};

    fn h2d(size: u32) -> Request {
        Request::Memcpy {
            dst: 0x1000,
            src: 0,
            size,
            kind: MemcpyKind::HostToDevice,
            data: Some(Payload::Owned(vec![7; size as usize])),
        }
    }

    #[test]
    fn state_mutators_are_journaled_with_their_outcomes() {
        let mut j = FailoverJournal::new(1 << 20);
        j.observe(
            &Request::Malloc { size: 64 },
            &Response::Malloc(Ok(DevicePtr::new(0x1000))),
        );
        j.observe(&h2d(64), &Response::Ack(Ok(())));
        j.observe(&Request::StreamCreate, &Response::StreamCreate(Ok(3)));
        assert_eq!(j.len(), 3);
        assert_eq!(j.ops()[0].1, Expect::Ptr(0x1000));
        assert_eq!(j.ops()[2].1, Expect::Stream(3));
    }

    #[test]
    fn reads_syncs_and_failures_are_not_journaled() {
        let mut j = FailoverJournal::new(1 << 20);
        // A pure read.
        j.observe(
            &Request::Memcpy {
                dst: 0,
                src: 0x1000,
                size: 4,
                kind: MemcpyKind::DeviceToHost,
                data: None,
            },
            &Response::MemcpyToHost(Ok(Payload::Owned(vec![0; 4]))),
        );
        // Synchronization.
        j.observe(&Request::ThreadSynchronize, &Response::Ack(Ok(())));
        // A failed mutation changed nothing.
        j.observe(
            &Request::Malloc { size: u32::MAX },
            &Response::Malloc(Err(CudaError::MemoryAllocation)),
        );
        assert_eq!(j.len(), 0);
    }

    #[test]
    fn overflow_disarms_for_good() {
        let mut j = FailoverJournal::new(100);
        j.observe(&h2d(32), &Response::Ack(Ok(())));
        assert!(j.armed());
        j.observe(&h2d(64), &Response::Ack(Ok(())));
        assert!(!j.armed(), "cap exceeded");
        assert_eq!(j.len(), 0, "buffered prefix dropped");
        // Nothing rearms it.
        j.observe(
            &Request::Malloc { size: 4 },
            &Response::Malloc(Ok(DevicePtr::new(0x1000))),
        );
        assert!(!j.armed());
        assert_eq!(j.len(), 0);
    }

    #[test]
    fn expectations_verify_replay_responses() {
        assert!(Expect::Ack.matches(&Response::Ack(Ok(()))));
        assert!(!Expect::Ack.matches(&Response::Ack(Err(CudaError::InvalidValue))));
        assert!(Expect::Ptr(0x2000).matches(&Response::Malloc(Ok(DevicePtr::new(0x2000)))));
        assert!(
            !Expect::Ptr(0x2000).matches(&Response::Malloc(Ok(DevicePtr::new(0x3000)))),
            "a diverging allocator layout must fail verification"
        );
        assert!(Expect::Event(9).matches(&Response::EventCreate(Ok(9))));
        assert!(!Expect::Stream(1).matches(&Response::EventCreate(Ok(1))));
    }

    #[test]
    fn journaled_pooled_payloads_are_detached_from_the_pool() {
        let pool = rcuda_proto::BufferPool::new();
        let mut j = FailoverJournal::new(1 << 20);
        let req = Request::Memcpy {
            dst: 0x1000,
            src: 0,
            size: 4,
            kind: MemcpyKind::HostToDevice,
            data: Some(Payload::Pooled(pool.copy_from(&[1, 2, 3, 4]))),
        };
        j.observe(&req, &Response::Ack(Ok(())));
        match &j.ops()[0].0 {
            Request::Memcpy {
                data: Some(Payload::Owned(v)),
                ..
            } => assert_eq!(v, &[1, 2, 3, 4]),
            other => panic!("expected owned payload, got {other:?}"),
        }
    }
}
