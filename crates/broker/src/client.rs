//! Client-side broker connections: the shared authentication dial, the
//! placement client used by CUDA clients, and the registration link used by
//! daemons.
//!
//! Both roles speak the same opening sequence — the broker pushes an 8-byte
//! server hello, then the peer proves possession of the shared token with
//! the PR-8 challenge-response handshake ([`rcuda_proto::mux`]) — before
//! declaring a role with [`BrokerHello`]. The handshake is reused for
//! authentication only: broker conversations are short control messages, so
//! the connection stays a plain byte stream (no mux framing, no cipher).

use rcuda_core::CudaError;
use rcuda_proto::broker::{
    BrokerCommand, BrokerHello, Heartbeat, HeartbeatReply, PlaceReply, PlaceRequest,
};
use rcuda_proto::handshake::ServerHello;
use rcuda_proto::mux::{read_mux_accept, MuxAuth, MuxChallenge, MuxHello, MUX_VERSION};
use rcuda_proto::secure::{auth_proof, random_nonce};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Dial the broker and complete the authentication handshake. With no
/// token both ends MAC under the empty key — same convention as the
/// daemons' trunk handshake.
pub fn connect_authed(addr: SocketAddr, token: Option<&[u8]>) -> io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut hello = [0u8; 8];
    stream.read_exact(&mut hello)?;
    if let ServerHello::Busy { .. } = ServerHello::from_wire(hello) {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "broker is shedding connections",
        ));
    }
    let client_nonce = random_nonce();
    MuxHello {
        version: MUX_VERSION,
        flags: 0,
        client_nonce,
    }
    .write(&mut stream)?;
    stream.flush()?;
    let challenge = MuxChallenge::read(&mut stream)?;
    MuxAuth {
        mac: auth_proof(token.unwrap_or(&[]), &client_nonce, &challenge.server_nonce),
    }
    .write(&mut stream)?;
    stream.flush()?;
    let code = read_mux_accept(&mut stream)?;
    if let Err(e) = CudaError::from_code(code) {
        return Err(io::Error::new(io::ErrorKind::PermissionDenied, e.name()));
    }
    Ok(stream)
}

/// A CUDA client's connection to the broker: ask where sessions should run.
#[derive(Debug)]
pub struct BrokerClient {
    stream: TcpStream,
}

impl BrokerClient {
    /// Connect, authenticate, and announce the client role.
    pub fn connect(addr: SocketAddr, token: Option<&[u8]>) -> io::Result<BrokerClient> {
        let mut stream = connect_authed(addr, token)?;
        BrokerHello::Client.write(&mut stream)?;
        stream.flush()?;
        Ok(BrokerClient { stream })
    }

    /// Bound how long one placement round trip may take (placement rides
    /// the client's reconnect path, which must never hang).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Where should `session` run? `0` asks for a fresh placement. Returns
    /// candidate daemon addresses, best first (empty: nothing placeable).
    pub fn place(&mut self, session: u64) -> io::Result<Vec<String>> {
        PlaceRequest { session }.write(&mut self.stream)?;
        self.stream.flush()?;
        Ok(PlaceReply::read(&mut self.stream)?.addrs)
    }
}

/// A daemon's registration link to the broker: announce once, then
/// heartbeat; each heartbeat reply may carry migration orders.
#[derive(Debug)]
pub struct DaemonLink {
    stream: TcpStream,
}

impl DaemonLink {
    /// Connect, authenticate, and register `daemon_addr` (the address
    /// clients dial) with its device-memory capacity.
    pub fn connect(
        broker: SocketAddr,
        token: Option<&[u8]>,
        daemon_addr: &str,
        capacity: u64,
    ) -> io::Result<DaemonLink> {
        let mut stream = connect_authed(broker, token)?;
        BrokerHello::Daemon {
            addr: daemon_addr.to_string(),
            capacity,
        }
        .write(&mut stream)?;
        stream.flush()?;
        Ok(DaemonLink { stream })
    }

    /// Send one heartbeat and collect any commands the broker queued.
    pub fn heartbeat(&mut self, hb: &Heartbeat) -> io::Result<Vec<BrokerCommand>> {
        hb.write(&mut self.stream)?;
        self.stream.flush()?;
        Ok(HeartbeatReply::read(&mut self.stream)?.commands)
    }

    /// Bound how long a heartbeat round trip may block.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }
}
