//! The broker's membership directory — pure state, no I/O.
//!
//! Every mutation takes an explicit `now: Instant` so tests drive the
//! health state machine deterministically. The network layer
//! ([`crate::broker`]) holds one [`Directory`] behind a mutex and calls in
//! from its per-connection threads and its sweeper.
//!
//! ## Health state machine
//!
//! ```text
//!            heartbeat                        heartbeat × recover_heartbeats
//!   ┌─────┐ ─────────► stays Alive   ┌─────────┐ ───────────────────► Alive
//!   │Alive│                          │ Suspect │
//!   └─────┘ ── no heartbeat for ───► └─────────┘ ── no heartbeat for ──► Down
//!              suspect_after                         down_after (from last
//!                                                    heartbeat) or trunk EOF
//! ```
//!
//! `Down` daemons keep their session lists (those sessions are the orphans
//! failover re-places) but never appear in a placement reply. A heartbeat
//! from a `Down` daemon re-admits it — the daemon restarted or the
//! partition healed.

use rcuda_obs::{BrokerEvent, ObsHandle};
use rcuda_proto::broker::{BrokerCommand, Heartbeat};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Where a daemon sits in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonState {
    /// Heartbeating on schedule; eligible for placement.
    Alive,
    /// Missed heartbeats; still owns its sessions but receives no new ones.
    Suspect,
    /// Declared dead: heartbeat timeout expired or its trunk closed. Its
    /// sessions are orphans awaiting failover.
    Down,
}

/// Hysteresis knobs for the suspect → down transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Silence longer than this marks a daemon suspect.
    pub suspect_after: Duration,
    /// Silence longer than this (from the last heartbeat, not from
    /// suspicion) declares it down.
    pub down_after: Duration,
    /// Consecutive heartbeats a suspect daemon must land to be trusted
    /// alive again — one lucky packet does not clear a flapping daemon.
    pub recover_heartbeats: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            suspect_after: Duration::from_millis(250),
            down_after: Duration::from_millis(1000),
            recover_heartbeats: 2,
        }
    }
}

/// How the broker orders live daemons when answering a placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Fewest live sessions first (ties broken by free bytes, then id).
    #[default]
    LeastLoaded,
    /// Most free device memory first — for memory-bound tenant mixes.
    MemoryFit,
    /// Fewest broker-recorded placements first — spreads sessions evenly
    /// regardless of how quickly they finish.
    Spread,
}

/// One registered daemon as the broker sees it.
#[derive(Debug, Clone)]
pub struct DaemonEntry {
    /// Directory-assigned id (stable for the registration's lifetime).
    pub id: u64,
    /// The address clients dial.
    pub addr: String,
    /// Device memory capacity announced at registration.
    pub capacity: u64,
    /// Headroom from the latest heartbeat.
    pub free_bytes: u64,
    /// Live sessions from the latest heartbeat.
    pub live_sessions: u32,
    /// Parked contexts from the latest heartbeat.
    pub parked: u32,
    /// Lifetime sessions served, from the latest heartbeat.
    pub served: u64,
    /// The daemon asked for no new placements.
    pub draining: bool,
    pub state: DaemonState,
    /// Resume tokens the daemon reported holding.
    pub sessions: HashSet<u64>,
    /// Placements this directory has handed out to the daemon (drives the
    /// `Spread` policy).
    pub placements: u64,
    last_heartbeat: Instant,
    consecutive_ok: u32,
}

impl DaemonEntry {
    /// Eligible to receive new sessions.
    fn placeable(&self) -> bool {
        self.state == DaemonState::Alive && !self.draining
    }
}

/// The membership directory: registration, heartbeats, health sweeps,
/// placement and migration orders.
pub struct Directory {
    daemons: HashMap<u64, DaemonEntry>,
    /// Commands awaiting pickup by each daemon's next heartbeat reply.
    pending: HashMap<u64, Vec<BrokerCommand>>,
    next_id: u64,
    policy: PlacementPolicy,
    health: HealthPolicy,
    obs: ObsHandle,
}

impl Directory {
    pub fn new(policy: PlacementPolicy, health: HealthPolicy, obs: ObsHandle) -> Directory {
        Directory {
            daemons: HashMap::new(),
            pending: HashMap::new(),
            next_id: 1,
            policy,
            health,
            obs,
        }
    }

    /// Register a daemon; returns its directory id. Re-registration at the
    /// same address replaces the old entry (the daemon restarted), keeping
    /// its id so observers see a stable identity.
    pub fn register(&mut self, addr: &str, capacity: u64, now: Instant) -> u64 {
        let id = self
            .daemons
            .values()
            .find(|d| d.addr == addr)
            .map(|d| d.id)
            .unwrap_or_else(|| {
                let id = self.next_id;
                self.next_id += 1;
                id
            });
        self.daemons.insert(
            id,
            DaemonEntry {
                id,
                addr: addr.to_string(),
                capacity,
                free_bytes: capacity,
                live_sessions: 0,
                parked: 0,
                served: 0,
                draining: false,
                state: DaemonState::Alive,
                sessions: HashSet::new(),
                placements: 0,
                last_heartbeat: now,
                consecutive_ok: 0,
            },
        );
        self.obs
            .emit_broker(BrokerEvent::DaemonJoined { daemon: id });
        id
    }

    /// Fold one heartbeat in and drain any commands queued for the daemon.
    pub fn heartbeat(&mut self, id: u64, hb: &Heartbeat, now: Instant) -> Vec<BrokerCommand> {
        let Some(d) = self.daemons.get_mut(&id) else {
            return Vec::new();
        };
        d.free_bytes = hb.free_bytes;
        d.live_sessions = hb.live_sessions;
        d.parked = hb.parked;
        d.served = hb.served;
        d.draining = hb.draining;
        d.sessions = hb.sessions.iter().copied().collect();
        d.last_heartbeat = now;
        match d.state {
            DaemonState::Alive => {}
            DaemonState::Suspect => {
                d.consecutive_ok += 1;
                if d.consecutive_ok >= self.health.recover_heartbeats {
                    d.state = DaemonState::Alive;
                    d.consecutive_ok = 0;
                    self.obs
                        .emit_broker(BrokerEvent::DaemonRecovered { daemon: id });
                }
            }
            DaemonState::Down => {
                // The daemon (or the network to it) came back: re-admit.
                d.state = DaemonState::Alive;
                d.consecutive_ok = 0;
                self.obs
                    .emit_broker(BrokerEvent::DaemonJoined { daemon: id });
            }
        }
        self.pending.remove(&id).unwrap_or_default()
    }

    /// Advance the health state machine: daemons silent past the policy's
    /// thresholds transition Alive → Suspect → Down. Returns the ids that
    /// went down this sweep (their sessions are now orphans).
    pub fn sweep(&mut self, now: Instant) -> Vec<u64> {
        let mut downed = Vec::new();
        for d in self.daemons.values_mut() {
            let silent = now.saturating_duration_since(d.last_heartbeat);
            match d.state {
                DaemonState::Alive if silent > self.health.suspect_after => {
                    d.state = DaemonState::Suspect;
                    d.consecutive_ok = 0;
                    self.obs
                        .emit_broker(BrokerEvent::DaemonSuspect { daemon: d.id });
                }
                _ => {}
            }
            if d.state != DaemonState::Down && silent > self.health.down_after {
                d.state = DaemonState::Down;
                self.obs.emit_broker(BrokerEvent::DaemonDown {
                    daemon: d.id,
                    orphaned_sessions: d.sessions.len() as u64,
                });
                downed.push(d.id);
            }
        }
        downed
    }

    /// Declare a daemon dead immediately — its registration trunk closed,
    /// which is stronger evidence than any heartbeat timer.
    pub fn mark_dead(&mut self, id: u64) {
        if let Some(d) = self.daemons.get_mut(&id) {
            if d.state != DaemonState::Down {
                d.state = DaemonState::Down;
                self.obs.emit_broker(BrokerEvent::DaemonDown {
                    daemon: id,
                    orphaned_sessions: d.sessions.len() as u64,
                });
            }
        }
    }

    /// Answer a placement request: candidate addresses, best first.
    ///
    /// If `session` is a known resume token, the daemon holding it leads
    /// the list (when it is still placeable) so a reconnect finds its
    /// parked context; the remaining candidates are ordered by the
    /// configured policy and serve as failover targets.
    pub fn place(&mut self, session: u64) -> Vec<String> {
        let mut candidates: Vec<&DaemonEntry> =
            self.daemons.values().filter(|d| d.placeable()).collect();
        match self.policy {
            PlacementPolicy::LeastLoaded => {
                candidates.sort_by_key(|d| (d.live_sessions, std::cmp::Reverse(d.free_bytes), d.id))
            }
            PlacementPolicy::MemoryFit => {
                candidates.sort_by_key(|d| (std::cmp::Reverse(d.free_bytes), d.id))
            }
            PlacementPolicy::Spread => {
                candidates.sort_by_key(|d| (d.placements, d.id));
            }
        }
        let mut addrs: Vec<String> = candidates.iter().map(|d| d.addr.clone()).collect();
        let owner = (session != 0)
            .then(|| {
                self.daemons
                    .values()
                    .find(|d| d.placeable() && d.sessions.contains(&session))
                    .map(|d| d.addr.clone())
            })
            .flatten();
        if let Some(owner) = owner {
            addrs.retain(|a| *a != owner);
            addrs.insert(0, owner);
        }
        match addrs.first() {
            Some(first) => {
                let chosen = self
                    .daemons
                    .values_mut()
                    .find(|d| d.addr == *first)
                    .expect("placement candidate came from the directory");
                chosen.placements += 1;
                let id = chosen.id;
                self.obs.emit_broker(BrokerEvent::Placed {
                    daemon: id,
                    candidates: addrs.len() as u32,
                });
            }
            None => self.obs.emit_broker(BrokerEvent::PlacementFailed),
        }
        addrs
    }

    /// Queue a migration order: the daemon holding `session` is told, on
    /// its next heartbeat, to ship the session to `target_addr`. Errors if
    /// no placeable daemon holds the session or the target is unknown.
    pub fn order_migration(&mut self, session: u64, target_addr: &str) -> Result<(), &'static str> {
        let to = self
            .daemons
            .values()
            .find(|d| d.addr == target_addr && d.placeable())
            .map(|d| d.id)
            .ok_or("migration target is not a placeable daemon")?;
        let from = self
            .daemons
            .values()
            .find(|d| d.state != DaemonState::Down && d.sessions.contains(&session))
            .map(|d| d.id)
            .ok_or("no live daemon holds that session")?;
        if from == to {
            return Err("session already lives on the target daemon");
        }
        self.pending
            .entry(from)
            .or_default()
            .push(BrokerCommand::MigrateOut {
                session,
                target: target_addr.to_string(),
            });
        self.obs
            .emit_broker(BrokerEvent::MigrationOrdered { session, from, to });
        Ok(())
    }

    /// Snapshot of every entry, id-ordered (for tests and operators).
    pub fn daemons(&self) -> Vec<DaemonEntry> {
        let mut out: Vec<DaemonEntry> = self.daemons.values().cloned().collect();
        out.sort_by_key(|d| d.id);
        out
    }

    /// The entry for one daemon, if registered.
    pub fn daemon(&self, id: u64) -> Option<&DaemonEntry> {
        self.daemons.get(&id)
    }

    /// Orphaned sessions: tokens whose daemon is `Down`.
    pub fn orphaned_sessions(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .daemons
            .values()
            .filter(|d| d.state == DaemonState::Down)
            .flat_map(|d| d.sessions.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(live: u32, free: u64, sessions: &[u64]) -> Heartbeat {
        Heartbeat {
            live_sessions: live,
            parked: 0,
            free_bytes: free,
            served: 0,
            draining: false,
            sessions: sessions.to_vec(),
        }
    }

    fn dir(policy: PlacementPolicy) -> Directory {
        Directory::new(policy, HealthPolicy::default(), ObsHandle::none())
    }

    #[test]
    fn least_loaded_orders_by_live_sessions() {
        let mut d = dir(PlacementPolicy::LeastLoaded);
        let t = Instant::now();
        let a = d.register("a:1", 100, t);
        let b = d.register("b:2", 100, t);
        let c = d.register("c:3", 100, t);
        d.heartbeat(a, &hb(5, 50, &[]), t);
        d.heartbeat(b, &hb(1, 10, &[]), t);
        d.heartbeat(c, &hb(3, 90, &[]), t);
        assert_eq!(d.place(0), vec!["b:2", "c:3", "a:1"]);
    }

    #[test]
    fn memory_fit_orders_by_headroom() {
        let mut d = dir(PlacementPolicy::MemoryFit);
        let t = Instant::now();
        let a = d.register("a:1", 100, t);
        let b = d.register("b:2", 100, t);
        d.heartbeat(a, &hb(0, 10, &[]), t);
        d.heartbeat(b, &hb(9, 90, &[]), t);
        assert_eq!(d.place(0), vec!["b:2", "a:1"]);
    }

    #[test]
    fn spread_rotates_across_daemons() {
        let mut d = dir(PlacementPolicy::Spread);
        let t = Instant::now();
        d.register("a:1", 100, t);
        d.register("b:2", 100, t);
        d.register("c:3", 100, t);
        let firsts: Vec<String> = (0..6).map(|_| d.place(0).remove(0)).collect();
        // Each daemon leads twice over six placements.
        for addr in ["a:1", "b:2", "c:3"] {
            assert_eq!(
                firsts.iter().filter(|a| *a == addr).count(),
                2,
                "{firsts:?}"
            );
        }
    }

    #[test]
    fn session_owner_leads_the_candidate_list() {
        let mut d = dir(PlacementPolicy::LeastLoaded);
        let t = Instant::now();
        let a = d.register("a:1", 100, t);
        let b = d.register("b:2", 100, t);
        d.heartbeat(a, &hb(9, 1, &[77]), t); // busiest, but owns session 77
        d.heartbeat(b, &hb(0, 99, &[]), t);
        assert_eq!(d.place(77), vec!["a:1", "b:2"]);
        // Unknown session falls back to pure policy order.
        assert_eq!(d.place(78), vec!["b:2", "a:1"]);
    }

    #[test]
    fn health_hysteresis_marks_suspect_then_down_then_recovers() {
        let health = HealthPolicy {
            suspect_after: Duration::from_millis(100),
            down_after: Duration::from_millis(300),
            recover_heartbeats: 2,
        };
        let mut d = Directory::new(PlacementPolicy::LeastLoaded, health, ObsHandle::none());
        let t0 = Instant::now();
        let id = d.register("a:1", 100, t0);

        // Silent past suspect_after: suspect, excluded from placement.
        assert!(d.sweep(t0 + Duration::from_millis(150)).is_empty());
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Suspect);
        assert!(d.place(0).is_empty());

        // One heartbeat is not enough to recover (hysteresis)…
        d.heartbeat(id, &hb(0, 1, &[]), t0 + Duration::from_millis(160));
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Suspect);
        // …the second consecutive one is.
        d.heartbeat(id, &hb(0, 1, &[]), t0 + Duration::from_millis(170));
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Alive);

        // Silence past down_after declares it down and orphans its sessions.
        d.heartbeat(id, &hb(2, 1, &[5, 6]), t0 + Duration::from_millis(200));
        let downed = d.sweep(t0 + Duration::from_millis(600));
        assert_eq!(downed, vec![id]);
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Down);
        assert_eq!(d.orphaned_sessions(), vec![5, 6]);

        // A heartbeat from a down daemon re-admits it.
        d.heartbeat(id, &hb(0, 1, &[]), t0 + Duration::from_millis(700));
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Alive);
        assert!(d.orphaned_sessions().is_empty());
    }

    #[test]
    fn trunk_death_skips_the_timers() {
        let mut d = dir(PlacementPolicy::LeastLoaded);
        let t = Instant::now();
        let id = d.register("a:1", 100, t);
        d.heartbeat(id, &hb(1, 1, &[9]), t);
        d.mark_dead(id);
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Down);
        assert_eq!(d.orphaned_sessions(), vec![9]);
        assert!(d.place(0).is_empty());
    }

    #[test]
    fn draining_daemons_receive_no_placements() {
        let mut d = dir(PlacementPolicy::LeastLoaded);
        let t = Instant::now();
        let a = d.register("a:1", 100, t);
        let b = d.register("b:2", 100, t);
        let mut draining = hb(0, 100, &[]);
        draining.draining = true;
        d.heartbeat(a, &draining, t);
        d.heartbeat(b, &hb(5, 1, &[]), t);
        assert_eq!(d.place(0), vec!["b:2"]);
    }

    #[test]
    fn migration_orders_ride_the_next_heartbeat() {
        let mut d = dir(PlacementPolicy::LeastLoaded);
        let t = Instant::now();
        let a = d.register("a:1", 100, t);
        let _b = d.register("b:2", 100, t);
        d.heartbeat(a, &hb(1, 1, &[42]), t);
        d.order_migration(42, "b:2").unwrap();
        // The command drains with daemon a's next heartbeat, exactly once.
        let cmds = d.heartbeat(a, &hb(1, 1, &[42]), t);
        assert_eq!(
            cmds,
            vec![BrokerCommand::MigrateOut {
                session: 42,
                target: "b:2".into()
            }]
        );
        assert!(d.heartbeat(a, &hb(1, 1, &[42]), t).is_empty());

        // Bad orders are rejected, not silently dropped.
        assert!(d.order_migration(42, "nowhere:1").is_err());
        assert!(d.order_migration(999, "b:2").is_err());
        d.heartbeat(a, &hb(1, 1, &[43]), t);
        assert!(
            d.order_migration(43, "a:1").is_err(),
            "no self-migration orders"
        );
    }

    #[test]
    fn reregistration_keeps_the_daemon_id() {
        let mut d = dir(PlacementPolicy::LeastLoaded);
        let t = Instant::now();
        let id = d.register("a:1", 100, t);
        d.mark_dead(id);
        let id2 = d.register("a:1", 200, t + Duration::from_millis(10));
        assert_eq!(id, id2);
        assert_eq!(d.daemon(id).unwrap().state, DaemonState::Alive);
        assert_eq!(d.daemon(id).unwrap().capacity, 200);
    }
}
