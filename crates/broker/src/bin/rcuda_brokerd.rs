//! `rcuda-brokerd` — the cluster broker as a standalone binary.
//!
//! ```text
//! rcuda-brokerd [--listen ADDR] [--policy least-loaded|memory-fit|spread]
//!               [--suspect-ms N] [--down-ms N] [--auth TOKEN]
//! ```
//!
//! * `--listen` — bind address (default `127.0.0.1:8300`; port 0 picks an
//!   ephemeral port, printed at startup).
//! * `--policy` — placement policy for fresh sessions (default
//!   least-loaded).
//! * `--suspect-ms` / `--down-ms` — heartbeat-silence thresholds for the
//!   Alive→Suspect→Down health transitions (defaults from
//!   [`HealthPolicy::default`]).
//! * `--auth TOKEN` — require daemons and clients to authenticate the
//!   control link with this token (challenge-response; the token never
//!   crosses the wire).
//!
//! Point daemons at it with `rcudad --broker ADDR` and clients with
//! `Endpoint::Broker(addr)`. The broker prints membership transitions as
//! they happen.

use rcuda_broker::{BrokerBuilder, DaemonState, HealthPolicy, PlacementPolicy};
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!("rcuda-brokerd: {msg}");
    eprintln!(
        "usage: rcuda-brokerd [--listen ADDR] \
         [--policy least-loaded|memory-fit|spread] \
         [--suspect-ms N] [--down-ms N] [--auth TOKEN]"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:8300".to_string();
    let mut policy = PlacementPolicy::LeastLoaded;
    let mut health = HealthPolicy::default();
    let mut auth: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                listen = args
                    .next()
                    .unwrap_or_else(|| usage("--listen needs an address"));
            }
            "--policy" => match args.next().as_deref() {
                Some("least-loaded") => policy = PlacementPolicy::LeastLoaded,
                Some("memory-fit") => policy = PlacementPolicy::MemoryFit,
                Some("spread") => policy = PlacementPolicy::Spread,
                _ => usage("--policy is least-loaded, memory-fit or spread"),
            },
            "--suspect-ms" => {
                health.suspect_after = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage("--suspect-ms needs milliseconds"));
            }
            "--down-ms" => {
                health.down_after = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
                    .unwrap_or_else(|| usage("--down-ms needs milliseconds"));
            }
            "--auth" => {
                auth = Some(args.next().unwrap_or_else(|| usage("--auth needs a token")));
            }
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let addr = match listen.parse() {
        Ok(a) => a,
        Err(e) => usage(&format!("cannot parse --listen {listen}: {e}")),
    };
    let mut builder = BrokerBuilder::new().policy(policy).health(health);
    if let Some(token) = auth {
        builder = builder.auth_token(token);
    }
    let broker = match builder.bind(addr) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("rcuda-brokerd: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "rcuda-brokerd: directory on {} ({:?} placement, suspect {:?}, down {:?})",
        broker.addr(),
        policy,
        health.suspect_after,
        health.down_after,
    );

    // Membership report loop: print transitions as the directory sees them.
    let mut last: Vec<(u64, String, DaemonState)> = Vec::new();
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let now: Vec<(u64, String, DaemonState)> = broker
            .daemons()
            .into_iter()
            .map(|d| (d.id, d.addr, d.state))
            .collect();
        for (id, addr, state) in &now {
            match last.iter().find(|(i, _, _)| i == id) {
                None => println!("rcuda-brokerd: daemon {id} at {addr} joined ({state:?})"),
                Some((_, _, prev)) if prev != state => {
                    println!("rcuda-brokerd: daemon {id} at {addr} {prev:?} -> {state:?}")
                }
                _ => {}
            }
        }
        last = now;
    }
}
