//! rCUDA cluster broker.
//!
//! The source paper's deployment is a *cluster* of rCUDA daemons — this
//! crate adds the piece that binds N daemons into one client-visible GPU
//! pool: a directory service with health-checked membership, pluggable
//! placement policy, and migration/failover orders.
//!
//! * [`Directory`] — the pure membership core: registration, heartbeats,
//!   the Alive → Suspect → Down state machine with recovery hysteresis,
//!   and placement ordering ([`PlacementPolicy`]).
//! * [`Broker`]/[`BrokerBuilder`] — the network face: a TCP listener whose
//!   connections authenticate with the PR-8 challenge-response handshake,
//!   then speak the [`rcuda_proto::broker`] control messages.
//! * [`DaemonLink`] — a daemon's registration + heartbeat connection.
//! * [`BrokerClient`] — a CUDA client's placement connection.

pub mod broker;
pub mod client;
pub mod directory;

pub use broker::{Broker, BrokerBuilder};
pub use client::{connect_authed, BrokerClient, DaemonLink};
pub use directory::{DaemonEntry, DaemonState, Directory, HealthPolicy, PlacementPolicy};
