//! The broker process: a TCP listener in front of the [`Directory`].
//!
//! One thread accepts connections; each connection gets a handler thread
//! that completes the authentication handshake, reads the peer's
//! [`BrokerHello`] role, and then loops — heartbeats for daemons,
//! placement requests for clients. A sweeper thread advances the health
//! state machine on a fixed cadence, so a silently-wedged daemon (no EOF,
//! no heartbeats) is still detected.

use parking_lot::Mutex;
use rcuda_core::CudaError;
use rcuda_obs::ObsHandle;
use rcuda_proto::broker::{BrokerHello, Heartbeat, HeartbeatReply, PlaceReply, PlaceRequest};
use rcuda_proto::handshake::ServerHello;
use rcuda_proto::ids::FunctionId;
use rcuda_proto::mux::{write_mux_accept, MuxAuth, MuxChallenge, MuxHello, MUX_VERSION};
use rcuda_proto::secure::{auth_proof, ct_eq, random_nonce, CipherSuiteKind};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::directory::{DaemonEntry, Directory, HealthPolicy, PlacementPolicy};

/// The broker's own protocol revision, pushed in the server-hello slot
/// where daemons push a compute capability.
const BROKER_PROTO_MAJOR: u32 = 1;
const BROKER_PROTO_MINOR: u32 = 0;

/// How long a daemon connection may sit silent before the *reader* gives
/// up on it. The health timers are the real detector; this only bounds how
/// long a handler thread can linger after the peer wedges without EOF.
const DAEMON_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept-loop poll interval (the listener runs nonblocking so shutdown
/// never waits on a dial).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

struct Inner {
    directory: Mutex<Directory>,
    /// Clones of every open connection, shut down to unblock handler
    /// threads at broker shutdown.
    conns: Mutex<Vec<TcpStream>>,
    auth_token: Option<Vec<u8>>,
    stop: AtomicBool,
}

/// Configures and binds a [`Broker`].
pub struct BrokerBuilder {
    policy: PlacementPolicy,
    health: HealthPolicy,
    auth_token: Option<Vec<u8>>,
    observer: ObsHandle,
}

impl Default for BrokerBuilder {
    fn default() -> Self {
        BrokerBuilder::new()
    }
}

impl BrokerBuilder {
    pub fn new() -> BrokerBuilder {
        BrokerBuilder {
            policy: PlacementPolicy::default(),
            health: HealthPolicy::default(),
            auth_token: None,
            observer: ObsHandle::none(),
        }
    }

    /// Placement policy for fresh sessions (default: least-loaded).
    pub fn policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Health-detection thresholds (default: suspect 250 ms, down 1 s).
    pub fn health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Shared token peers must prove possession of (default: open).
    pub fn auth_token(mut self, token: impl Into<Vec<u8>>) -> Self {
        self.auth_token = Some(token.into());
        self
    }

    /// Observer for [`rcuda_obs::BrokerEvent`]s.
    pub fn observer(mut self, obs: ObsHandle) -> Self {
        self.observer = obs;
        self
    }

    /// Bind the listener and start the accept and sweeper threads.
    pub fn bind(self, addr: SocketAddr) -> io::Result<Broker> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            directory: Mutex::new(Directory::new(self.policy, self.health, self.observer)),
            conns: Mutex::new(Vec::new()),
            auth_token: self.auth_token,
            stop: AtomicBool::new(false),
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("rcuda-broker-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;

        let sweep_every = self.health.suspect_after.min(Duration::from_millis(50)) / 2;
        let sweep_inner = Arc::clone(&inner);
        let sweeper = std::thread::Builder::new()
            .name("rcuda-broker-sweep".into())
            .spawn(move || {
                while !sweep_inner.stop.load(Ordering::SeqCst) {
                    sweep_inner.directory.lock().sweep(Instant::now());
                    std::thread::sleep(sweep_every.max(Duration::from_millis(1)));
                }
            })?;

        Ok(Broker {
            addr,
            inner,
            threads: vec![accept, sweeper],
        })
    }
}

/// A running broker. Dropping it shuts everything down.
pub struct Broker {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl Broker {
    /// The bound listen address (what daemons and clients dial).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of every registered daemon, id-ordered.
    pub fn daemons(&self) -> Vec<DaemonEntry> {
        self.inner.directory.lock().daemons()
    }

    /// Sessions stranded on down daemons.
    pub fn orphaned_sessions(&self) -> Vec<u64> {
        self.inner.directory.lock().orphaned_sessions()
    }

    /// Answer a placement locally (same path a remote client's
    /// [`PlaceRequest`] takes; used by tests and in-process embedding).
    pub fn place(&self, session: u64) -> Vec<String> {
        self.inner.directory.lock().place(session)
    }

    /// Order the daemon holding `session` to migrate it to `target_addr`.
    /// The order rides the source daemon's next heartbeat reply.
    pub fn migrate(&self, session: u64, target_addr: &str) -> Result<(), &'static str> {
        self.inner
            .directory
            .lock()
            .order_migration(session, target_addr)
    }

    /// Wait until `n` daemons are registered and alive (test convenience).
    pub fn wait_for_daemons(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let alive = self
                .daemons()
                .iter()
                .filter(|d| d.state == crate::directory::DaemonState::Alive)
                .count();
            if alive >= n {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stop the accept loop, unblock and join every handler thread.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for conn in self.inner.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    inner.conns.lock().push(clone);
                }
                let conn_inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("rcuda-broker-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, conn_inner);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// The broker half of the authentication handshake (mirror of the trunk
/// handshake the daemons host, minus the cipher upgrade — broker traffic
/// is short control messages on a plain stream).
fn authenticate(stream: &mut TcpStream, token: Option<&[u8]>) -> io::Result<bool> {
    stream.set_nodelay(true).ok();
    stream
        .write_all(
            &ServerHello::Ready {
                major: BROKER_PROTO_MAJOR,
                minor: BROKER_PROTO_MINOR,
            }
            .to_wire(),
        )
        .and_then(|_| stream.flush())?;
    let mut selector = [0u8; 4];
    stream.read_exact(&mut selector)?;
    if u32::from_le_bytes(selector) != FunctionId::MuxHello.as_u32() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected an authentication hello on a broker connection",
        ));
    }
    let hello = MuxHello::read_body(stream)?;
    let server_nonce = random_nonce();
    MuxChallenge {
        flags: 0,
        cipher: CipherSuiteKind::None.as_u32(),
        server_nonce,
    }
    .write(stream)?;
    stream.flush()?;
    let auth = MuxAuth::read(stream)?;
    let expected = auth_proof(token.unwrap_or(&[]), &hello.client_nonce, &server_nonce);
    if hello.version != MUX_VERSION || !ct_eq(&expected, &auth.mac) {
        write_mux_accept(stream, CudaError::AuthFailed.code())?;
        stream.flush()?;
        return Ok(false);
    }
    write_mux_accept(stream, 0)?;
    stream.flush()?;
    Ok(true)
}

fn serve_connection(mut stream: TcpStream, inner: Arc<Inner>) -> io::Result<()> {
    if !authenticate(&mut stream, inner.auth_token.as_deref())? {
        return Ok(());
    }
    match BrokerHello::read(&mut stream)? {
        BrokerHello::Daemon { addr, capacity } => serve_daemon(stream, inner, addr, capacity),
        BrokerHello::Client => serve_client(stream, inner),
    }
}

fn serve_daemon(
    mut stream: TcpStream,
    inner: Arc<Inner>,
    addr: String,
    capacity: u64,
) -> io::Result<()> {
    let id = inner
        .directory
        .lock()
        .register(&addr, capacity, Instant::now());
    stream.set_read_timeout(Some(DAEMON_READ_TIMEOUT))?;
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let hb = match Heartbeat::read(&mut stream) {
            Ok(hb) => hb,
            Err(_) => {
                // EOF, reset, or a wedged peer: the registration trunk is
                // dead — stronger evidence than any timer.
                inner.directory.lock().mark_dead(id);
                return Ok(());
            }
        };
        let commands = inner.directory.lock().heartbeat(id, &hb, Instant::now());
        let reply = HeartbeatReply { commands };
        if reply
            .write(&mut stream)
            .and_then(|_| stream.flush())
            .is_err()
        {
            inner.directory.lock().mark_dead(id);
            return Ok(());
        }
    }
}

fn serve_client(mut stream: TcpStream, inner: Arc<Inner>) -> io::Result<()> {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Ok(req) = PlaceRequest::read(&mut stream) else {
            return Ok(()); // client hung up
        };
        let addrs = inner.directory.lock().place(req.session);
        PlaceReply { addrs }.write(&mut stream)?;
        stream.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{BrokerClient, DaemonLink};

    fn any_addr() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn hb(live: u32, free: u64, sessions: &[u64]) -> Heartbeat {
        Heartbeat {
            live_sessions: live,
            parked: 0,
            free_bytes: free,
            served: 0,
            draining: false,
            sessions: sessions.to_vec(),
        }
    }

    #[test]
    fn daemons_register_heartbeat_and_clients_get_placements() {
        let broker = BrokerBuilder::new().bind(any_addr()).unwrap();
        let mut d1 = DaemonLink::connect(broker.addr(), None, "10.0.0.1:9000", 1 << 30).unwrap();
        let mut d2 = DaemonLink::connect(broker.addr(), None, "10.0.0.2:9000", 1 << 30).unwrap();
        assert!(broker.wait_for_daemons(2, Duration::from_secs(2)));
        assert!(d1.heartbeat(&hb(4, 100, &[11])).unwrap().is_empty());
        assert!(d2.heartbeat(&hb(1, 500, &[22])).unwrap().is_empty());

        let mut client = BrokerClient::connect(broker.addr(), None).unwrap();
        // Least-loaded: daemon 2 first; both listed for failover.
        assert_eq!(
            client.place(0).unwrap(),
            vec!["10.0.0.2:9000", "10.0.0.1:9000"]
        );
        // A session's owner leads regardless of load.
        assert_eq!(
            client.place(11).unwrap(),
            vec!["10.0.0.1:9000", "10.0.0.2:9000"]
        );
    }

    #[test]
    fn dead_trunk_marks_the_daemon_down() {
        let broker = BrokerBuilder::new().bind(any_addr()).unwrap();
        let mut d1 = DaemonLink::connect(broker.addr(), None, "a:1", 1024).unwrap();
        let _d2 = DaemonLink::connect(broker.addr(), None, "b:2", 1024).unwrap();
        assert!(broker.wait_for_daemons(2, Duration::from_secs(2)));
        d1.heartbeat(&hb(1, 10, &[7])).unwrap();
        drop(d1); // trunk EOF

        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if broker.orphaned_sessions() == vec![7] {
                break;
            }
            assert!(Instant::now() < deadline, "trunk death not detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(broker.place(0), vec!["b:2"]);
    }

    #[test]
    fn heartbeat_silence_downs_a_daemon_via_the_sweeper() {
        let broker = BrokerBuilder::new()
            .health(HealthPolicy {
                suspect_after: Duration::from_millis(30),
                down_after: Duration::from_millis(80),
                recover_heartbeats: 1,
            })
            .bind(any_addr())
            .unwrap();
        // Keep the trunk open but silent: only the timers can catch this.
        let mut link = DaemonLink::connect(broker.addr(), None, "a:1", 1024).unwrap();
        link.heartbeat(&hb(0, 10, &[5])).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if broker.orphaned_sessions() == vec![5] {
                break;
            }
            assert!(Instant::now() < deadline, "silent daemon not detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The daemon resumes heartbeating: re-admitted.
        link.heartbeat(&hb(0, 10, &[5])).unwrap();
        assert!(broker.wait_for_daemons(1, Duration::from_secs(2)));
    }

    #[test]
    fn migration_orders_reach_the_source_daemon() {
        let broker = BrokerBuilder::new().bind(any_addr()).unwrap();
        let mut d1 = DaemonLink::connect(broker.addr(), None, "a:1", 1024).unwrap();
        let mut d2 = DaemonLink::connect(broker.addr(), None, "b:2", 1024).unwrap();
        d1.heartbeat(&hb(1, 10, &[42])).unwrap();
        d2.heartbeat(&hb(0, 10, &[])).unwrap();
        broker.migrate(42, "b:2").unwrap();
        let cmds = d1.heartbeat(&hb(1, 10, &[42])).unwrap();
        assert_eq!(
            cmds,
            vec![rcuda_proto::broker::BrokerCommand::MigrateOut {
                session: 42,
                target: "b:2".into()
            }]
        );
    }

    #[test]
    fn wrong_token_is_rejected() {
        let broker = BrokerBuilder::new()
            .auth_token(b"cluster-secret".to_vec())
            .bind(any_addr())
            .unwrap();
        let err = BrokerClient::connect(broker.addr(), Some(b"wrong")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        // The right token works.
        let mut ok = BrokerClient::connect(broker.addr(), Some(b"cluster-secret")).unwrap();
        assert_eq!(ok.place(0).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn shutdown_unblocks_open_connections() {
        let mut broker = BrokerBuilder::new().bind(any_addr()).unwrap();
        let _link = DaemonLink::connect(broker.addr(), None, "a:1", 1024).unwrap();
        let _client = BrokerClient::connect(broker.addr(), None).unwrap();
        broker.shutdown(); // must not hang on the idle handler threads
    }
}
