//! Session construction: one builder to stand up a CUDA runtime over any
//! transport.
//!
//! [`Session::builder`] unifies the three transport-specific construction
//! paths (real TCP, in-process channel, simulated network) behind one
//! fluent API, with pipelining as an opt-in knob:
//!
//! ```
//! use rcuda::session::Session;
//! use rcuda::netsim::NetworkId;
//!
//! // Simulated 40 Gbps InfiniBand, deferred-completion window of 4:
//! let sess = Session::builder()
//!     .pipeline(4)
//!     .simulated(NetworkId::Ib40G);
//! # drop(sess);
//! ```
//!
//! Pipelining defaults to **off** (depth 0): the paper's protocol is
//! strictly synchronous — one round trip per CUDA call — and the estimation
//! model of §V prices exactly that. `pipeline(depth)` opts a session into
//! the batched submission path (see `rcuda-client`).
//!
//! The free functions ([`local_functional`], [`local_simulated`]) remain for
//! local runtimes, which involve no transport.
//!
//! Observability: [`SessionBuilder::observer`] installs one observer on the
//! whole stack — the client runtime reports per-call spans, the transport
//! reports per-message byte events, and the in-process server reports
//! per-request service spans, all into the same sink (see `rcuda-obs`).

use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rcuda_api::LocalRuntime;
use rcuda_client::{RemoteRuntime, RetryPolicy};
use rcuda_core::time::{virtual_clock, wall_clock};
use rcuda_core::{CudaResult, SharedClock, VirtualClock};
use rcuda_gpu::GpuDevice;
use rcuda_netsim::NetworkId;
use rcuda_obs::{ObsHandle, SessionMetrics};
use rcuda_server::{
    serve_connection, serve_connection_with_registry, ServerConfig, SessionRegistry, SessionReport,
};
use rcuda_transport::{
    channel_pair, sim_pair, ChannelTransport, FaultInjector, FaultPlan, ReconnectTransport,
    SimTransport, TcpTransport, Transport,
};

/// A functional local-GPU runtime (wall clock, kernels really execute).
pub fn local_functional() -> LocalRuntime {
    LocalRuntime::new(GpuDevice::tesla_c1060_functional(), wall_clock())
}

/// A timing-only local-GPU runtime on a fresh virtual clock.
pub fn local_simulated() -> (LocalRuntime, Arc<VirtualClock>) {
    let clock = virtual_clock();
    let rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
    (rt, clock)
}

/// Entry point for remote-session construction; see [`Session::builder`].
pub struct Session;

impl Session {
    /// Start configuring a remote session. Terminal methods pick the
    /// transport: [`SessionBuilder::tcp`], [`SessionBuilder::channel`],
    /// [`SessionBuilder::simulated`] / [`SessionBuilder::simulated_with`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            pipeline_depth: 0,
            phantom: false,
            deadline: None,
            retry: RetryPolicy::default(),
            observer: ObsHandle::none(),
        }
    }
}

/// Options common to every transport, applied by the terminal methods.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    pipeline_depth: usize,
    phantom: bool,
    deadline: Option<Duration>,
    retry: RetryPolicy,
    observer: ObsHandle,
}

impl SessionBuilder {
    /// Deferred-completion window depth. `0` (the default) keeps the
    /// paper-faithful synchronous protocol; `depth ≥ 1` batches no-result
    /// calls into one message per window (see `rcuda-client`).
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Per-call wall-clock deadline: a call that cannot complete within the
    /// budget fails with `TransportTimedOut` instead of blocking. Default
    /// `None` — block indefinitely, as the paper's synchronous protocol
    /// does.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Retry transport faults up to `max_retries` times (with exponential
    /// backoff): idempotent calls replay transparently after a reconnect,
    /// non-idempotent ones still surface the fault immediately. Default
    /// `0` — fail fast, exactly the pre-retry behavior.
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.retry = RetryPolicy::retries(max_retries);
        self
    }

    /// Full control over the retry policy (backoff curve included).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Phantom server memory: data storage and kernel execution are skipped
    /// (paper-scale problems at negligible host cost — simulated timing is
    /// unaffected). Default `false`: everything executes functionally and
    /// remote results are bit-identical to local ones. Ignored by
    /// [`SessionBuilder::tcp`], where the daemon owns its configuration.
    pub fn phantom(mut self, phantom: bool) -> Self {
        self.phantom = phantom;
        self
    }

    /// Install an observer on the whole session: per-call spans from the
    /// client runtime, per-message byte events from the transport, and (for
    /// the in-process terminal methods) per-request service spans from the
    /// server worker, all reported to the same sink. Accepts an
    /// [`rcuda_obs::ObsHandle`] (e.g. [`rcuda_obs::Recorder::handle`]) or an
    /// `Arc<dyn Observer>`. Default: disarmed — the per-call hot path then
    /// performs no observability work at all.
    pub fn observer(mut self, observer: impl Into<ObsHandle>) -> Self {
        self.observer = observer.into();
        self
    }

    /// Apply every common knob to a freshly constructed runtime. All
    /// terminal methods funnel through here so a new option cannot be
    /// forgotten on one transport path.
    fn configure<T: Transport>(&self, runtime: &mut RemoteRuntime<T>) -> CudaResult<()> {
        runtime.set_pipeline_depth(self.pipeline_depth)?;
        runtime.set_deadline(self.deadline);
        runtime.set_retry_policy(self.retry);
        runtime.set_observer(self.observer.clone());
        Ok(())
    }

    /// The worker configuration shared by every in-process server spawn.
    fn server_config(&self) -> ServerConfig {
        ServerConfig {
            preinitialize_context: true,
            phantom_memory: self.phantom,
            observer: self.observer.clone(),
            ..ServerConfig::default()
        }
    }

    /// Connect to an rCUDA daemon over real TCP (see
    /// [`rcuda_server::RcudaDaemon`]).
    pub fn tcp<A: std::net::ToSocketAddrs>(
        self,
        addr: A,
    ) -> CudaResult<RemoteRuntime<TcpTransport>> {
        let transport =
            TcpTransport::connect(addr).map_err(|e| rcuda_client::transport_error(&e))?;
        let mut rt = RemoteRuntime::new(transport, wall_clock());
        self.configure(&mut rt)?;
        Ok(rt)
    }

    /// A complete in-process session over an OS-free channel transport:
    /// client runtime on one end, a served GPU context on a server thread,
    /// both on the wall clock. The fastest way to drive the full protocol
    /// stack in tests and benches.
    pub fn channel(self) -> ChannelSession {
        let (client_side, server_side) = channel_pair();
        let clock: SharedClock = wall_clock();
        let device = server_device(self.phantom);
        let server = spawn_server(
            server_side,
            device,
            clock.clone(),
            self.server_config(),
            None,
        )
        .expect("spawn session server");
        let mut runtime = RemoteRuntime::new(client_side, clock);
        self.configure(&mut runtime).expect("fresh session");
        ChannelSession {
            runtime,
            server: Some(server),
        }
    }

    /// A fault-injection session: an in-process server behind a
    /// [`FaultInjector`] executing `plan`, over a reconnectable channel
    /// transport. Each (re)connect spawns a fresh server thread; all server
    /// threads share one [`SessionRegistry`], so a session announced with
    /// [`SessionBuilder::retries`] parks on disconnect and resumes — with
    /// device state intact — on the next connection. The workhorse of the
    /// failure-injection conformance suite.
    pub fn channel_faulty(self, plan: FaultPlan) -> FaultSession {
        let clock: SharedClock = wall_clock();
        let device = server_device(self.phantom);
        let config = self.server_config();
        let registry = Arc::new(SessionRegistry::new());
        let servers: ServerSet = Arc::new(Mutex::new(Vec::new()));

        let dial = {
            let device = Arc::clone(&device);
            let registry = Arc::clone(&registry);
            let servers = Arc::clone(&servers);
            let clock = clock.clone();
            move || -> std::io::Result<ChannelTransport> {
                let (client_side, server_side) = channel_pair();
                let handle = spawn_server(
                    server_side,
                    Arc::clone(&device),
                    clock.clone(),
                    config.clone(),
                    Some(Arc::clone(&registry)),
                )?;
                servers.lock().expect("server set lock").push(handle);
                Ok(client_side)
            }
        };
        let initial = dial().expect("spawn first server");
        let transport = FaultInjector::new(ReconnectTransport::new(initial, dial), plan);
        let mut runtime = RemoteRuntime::new(transport, clock);
        self.configure(&mut runtime).expect("fresh session");
        FaultSession {
            runtime,
            servers,
            registry,
        }
    }

    /// A complete in-process session over the simulated network `net`, on a
    /// fresh shared virtual clock.
    pub fn simulated(self, net: NetworkId) -> SimSession {
        self.simulated_with(Arc::from(net.model()))
    }

    /// [`SessionBuilder::simulated`] over an arbitrary network model — e.g.
    /// a [`rcuda_netsim::TopologyNetwork`] binding two specific cluster
    /// hosts, or a custom what-if interconnect.
    pub fn simulated_with(self, model: Arc<dyn rcuda_netsim::NetworkModel>) -> SimSession {
        let clock = virtual_clock();
        let shared: SharedClock = clock.clone();
        let (client_side, server_side) = sim_pair(model, shared.clone());
        let device = server_device(self.phantom);
        let server = spawn_server(
            server_side,
            device,
            shared.clone(),
            self.server_config(),
            None,
        )
        .expect("spawn session server");
        let mut runtime = RemoteRuntime::new(client_side, shared);
        self.configure(&mut runtime).expect("fresh session");
        SimSession {
            runtime,
            clock,
            server: Some(server),
        }
    }
}

/// The device an in-process server session runs on.
fn server_device(phantom: bool) -> Arc<GpuDevice> {
    if phantom {
        GpuDevice::tesla_c1060()
    } else {
        GpuDevice::tesla_c1060_functional()
    }
}

/// Spawn a server thread driving one session over `transport` — the single
/// spawn path for every in-process terminal method. With a registry the
/// session can park on disconnect and resume on a later connection's
/// thread; without one it lives and dies with this connection.
fn spawn_server<T: Transport + 'static>(
    transport: T,
    device: Arc<GpuDevice>,
    clock: SharedClock,
    config: ServerConfig,
    registry: Option<Arc<SessionRegistry>>,
) -> std::io::Result<JoinHandle<std::io::Result<SessionReport>>> {
    std::thread::Builder::new()
        .name("rcuda-session-server".into())
        .spawn(move || match registry {
            Some(reg) => serve_connection_with_registry(transport, &device, clock, &config, &reg),
            None => serve_connection(transport, &device, clock, &config),
        })
}

/// A complete in-process remote session over a simulated network: client
/// runtime on one end, a served GPU context on the other, one shared
/// virtual clock.
pub struct SimSession {
    /// The client-side runtime (use it like any [`rcuda_api::CudaRuntime`]).
    pub runtime: RemoteRuntime<SimTransport>,
    /// The session's virtual clock — `clock.now()` after a run is the
    /// simulated execution time.
    pub clock: Arc<VirtualClock>,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl SimSession {
    /// A point-in-time snapshot of the session's cumulative counters.
    pub fn metrics(&self) -> SessionMetrics {
        self.runtime.metrics()
    }

    /// Join the server side and return its session report.
    pub fn finish(mut self) -> SessionReport {
        // Make sure the server saw a Quit or a hangup: dropping the runtime
        // closes the client endpoint.
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

/// A complete in-process remote session over a channel transport (wall
/// clock); see [`SessionBuilder::channel`].
pub struct ChannelSession {
    /// The client-side runtime.
    pub runtime: RemoteRuntime<ChannelTransport>,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl ChannelSession {
    /// A point-in-time snapshot of the session's cumulative counters.
    pub fn metrics(&self) -> SessionMetrics {
        self.runtime.metrics()
    }

    /// Join the server side and return its session report.
    pub fn finish(mut self) -> SessionReport {
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

type ServerSet = Arc<Mutex<Vec<JoinHandle<std::io::Result<SessionReport>>>>>;

/// A fault-injection session; see [`SessionBuilder::channel_faulty`].
///
/// Every connection attempt — the first one included — spawns its own
/// server thread over a shared [`SessionRegistry`]; [`FaultSession::finish`]
/// joins them all and returns every session report, in connection order.
pub struct FaultSession {
    /// The client-side runtime, behind the fault injector.
    pub runtime: RemoteRuntime<FaultInjector<ReconnectTransport<ChannelTransport>>>,
    servers: ServerSet,
    registry: Arc<SessionRegistry>,
}

impl FaultSession {
    /// A point-in-time snapshot of the session's cumulative counters,
    /// summed across reconnects.
    pub fn metrics(&self) -> SessionMetrics {
        self.runtime.metrics()
    }

    /// Sessions currently parked server-side awaiting a reconnect.
    pub fn parked_sessions(&self) -> usize {
        self.registry.parked_count()
    }

    /// Drop the client and join every server thread spawned over the
    /// session's lifetime. A thread whose connection died before the
    /// handshake yields no report.
    pub fn finish(self) -> Vec<SessionReport> {
        let FaultSession {
            runtime, servers, ..
        } = self;
        drop(runtime);
        let handles = std::mem::take(&mut *servers.lock().expect("server set lock"));
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("server thread panicked").ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::CudaRuntime;
    use rcuda_core::Clock as _;
    use rcuda_gpu::module::build_module;

    #[test]
    fn simulated_session_round_trip() {
        let mut sess = Session::builder().simulated(NetworkId::Ib40G);
        sess.runtime
            .initialize(&build_module(&["fill"], 0))
            .unwrap();
        let p = sess.runtime.malloc(64).unwrap();
        sess.runtime.memcpy_h2d(p, &[7u8; 64]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 64).unwrap(), vec![7u8; 64]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        assert!(sess.clock.now().as_micros_f64() > 0.0, "time passed");
        let report = sess.finish();
        assert!(report.orderly_shutdown);
        assert_eq!(report.leaked_allocations, 0);
    }

    #[test]
    fn channel_session_round_trip() {
        let mut sess = Session::builder().channel();
        sess.runtime.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.runtime.malloc(16).unwrap();
        sess.runtime.memcpy_h2d(p, &[3u8; 16]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 16).unwrap(), vec![3u8; 16]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        let report = sess.finish();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn builder_applies_the_pipeline_depth() {
        let sess = Session::builder().pipeline(4).simulated(NetworkId::GigaE);
        assert_eq!(sess.runtime.pipeline_depth(), 4);
        let default = Session::builder().simulated(NetworkId::GigaE);
        assert_eq!(
            default.runtime.pipeline_depth(),
            0,
            "paper-faithful default"
        );
    }

    #[test]
    fn builder_applies_deadline_and_retries() {
        let sess = Session::builder()
            .deadline(std::time::Duration::from_millis(250))
            .retries(3)
            .channel();
        assert_eq!(
            sess.runtime.deadline(),
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(sess.runtime.retry_policy().max_retries, 3);
        drop(sess);

        let default = Session::builder().simulated(NetworkId::GigaE);
        assert_eq!(default.runtime.deadline(), None, "block forever by default");
        assert_eq!(
            default.runtime.retry_policy().max_retries,
            0,
            "fail-fast by default"
        );
    }

    #[test]
    fn session_surfaces_metrics() {
        let mut sess = Session::builder().channel();
        sess.runtime.initialize(&build_module(&[], 0)).unwrap();
        let m = sess.metrics();
        assert!(m.bytes_sent > 0, "init was sent");
        assert!(m.bytes_received > 0, "cc push + ack were received");
        assert_eq!(m.messages_sent, 1, "one request so far");
        assert_eq!(m.messages_received, 2, "cc push, then the init ack");
        assert_eq!(m.reconnects, 0);
        assert_eq!(m.calls, 1, "initialization is a call");
        assert_eq!(m.retries, 0);

        sess.runtime.finalize().unwrap();
        sess.finish();
    }

    #[test]
    fn observer_records_client_and_server_spans() {
        let rec = rcuda_obs::Recorder::new();
        let mut sess = Session::builder().observer(rec.handle()).channel();
        sess.runtime.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.runtime.malloc(16).unwrap();
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        sess.finish();

        let report = rec.report();
        assert!(report.spans.iter().any(|s| s.op == "cudaMalloc"));
        assert!(report.spans.iter().any(|s| s.op == "initialization"));
        assert!(
            report.server_spans.iter().any(|s| s.op == "cudaMalloc"),
            "the in-process server reports into the same sink"
        );
        assert!(report.messages.sent_count >= 4, "one message per call");
        assert_eq!(report.reconnects, 0);
    }

    #[test]
    fn faulty_session_without_faults_behaves_normally() {
        let mut sess = Session::builder().channel_faulty(FaultPlan::none());
        sess.runtime.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.runtime.malloc(8).unwrap();
        sess.runtime.memcpy_h2d(p, &[9u8; 8]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 8).unwrap(), vec![9u8; 8]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        assert_eq!(sess.parked_sessions(), 0);
        let reports = sess.finish();
        assert_eq!(reports.len(), 1, "a single connection served everything");
        assert!(reports[0].orderly_shutdown);
    }

    #[test]
    fn local_helpers_construct() {
        let _ = local_functional();
        let (_, clock) = local_simulated();
        assert_eq!(clock.now().as_nanos(), 0);
    }
}
