//! Session construction: one builder, one [`Endpoint`] enum, one unified
//! [`Session`] over any transport.
//!
//! [`Session::builder`] configures every knob — pipelining, deadlines,
//! retries, observability, authentication, encryption, multiplexing — and
//! [`SessionBuilder::connect`] stands the session up against any
//! [`Endpoint`]: a real TCP daemon, an in-process channel, a fault-injected
//! channel, or a simulated network on a virtual clock.
//!
//! ```
//! use rcuda::session::{Endpoint, Session};
//! use rcuda::netsim::NetworkId;
//!
//! // Simulated 40 Gbps InfiniBand, deferred-completion window of 4:
//! let sess = Session::builder()
//!     .pipeline(4)
//!     .connect(Endpoint::Simulated(NetworkId::Ib40G))
//!     .unwrap();
//! # drop(sess);
//! ```
//!
//! Pipelining defaults to **off** (depth 0): the paper's protocol is
//! strictly synchronous — one round trip per CUDA call — and the estimation
//! model of §V prices exactly that. `pipeline(depth)` opts a session into
//! the batched submission path (see `rcuda-client`).
//!
//! **Multiplexing** ([`SessionBuilder::mux`]): the connection upgrades to a
//! framed trunk carrying many logical sub-streams, so small calls are not
//! stuck behind a bulk transfer in flight (head-of-line blocking, the
//! multi-tenant analogue of §VI-C's bandwidth observations). Authentication
//! ([`SessionBuilder::auth`]) and payload encryption
//! ([`SessionBuilder::cipher`]) ride the trunk handshake and therefore imply
//! mux. [`SessionBuilder::connector`] returns a [`Connector`] — a shared
//! trunk from which many concurrent [`Session`]s are opened.
//!
//! The free functions ([`local_functional`], [`local_simulated`]) remain for
//! local runtimes, which involve no transport.
//!
//! Observability: [`SessionBuilder::observer`] installs one observer on the
//! whole stack — the client runtime reports per-call spans, the transport
//! reports per-message byte events, and the in-process server reports
//! per-request service spans, all into the same sink (see `rcuda-obs`).

use std::io::{Read, Write};
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rcuda_api::LocalRuntime;
use rcuda_client::{transport_error, RemoteRuntime, RetryPolicy};
use rcuda_core::time::{virtual_clock, wall_clock};
use rcuda_core::{CudaError, CudaResult, SharedClock, VirtualClock};
use rcuda_gpu::GpuDevice;
use rcuda_netsim::NetworkId;
use rcuda_obs::{ObsHandle, SessionMetrics};
use rcuda_proto::handshake::ServerHello;
use rcuda_proto::mux::{MuxAuth, MuxChallenge, MuxHello, FLAG_CIPHER, MUX_VERSION};
use rcuda_proto::secure::{auth_proof, derive_key, random_nonce, CipherSuiteKind};
use rcuda_proto::BufferPool;
use rcuda_server::{
    serve_connection, serve_connection_with_registry, serve_mux_trunk, ServerConfig,
    SessionRegistry, SessionReport,
};
use rcuda_transport::{
    channel_pair, sim_pair, ChannelTransport, FaultInjector, FaultPlan, MuxConfig, MuxPeer,
    ReconnectTransport, TcpTransport, Transport,
};

/// A functional local-GPU runtime (wall clock, kernels really execute).
pub fn local_functional() -> LocalRuntime {
    LocalRuntime::new(GpuDevice::tesla_c1060_functional(), wall_clock())
}

/// A timing-only local-GPU runtime on a fresh virtual clock.
pub fn local_simulated() -> (LocalRuntime, Arc<VirtualClock>) {
    let clock = virtual_clock();
    let rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
    (rt, clock)
}

/// Where a session connects to — the one enum that replaced the old
/// transport-specific terminal methods (`tcp` / `channel` /
/// `channel_faulty` / `simulated` / `simulated_with`).
pub enum Endpoint {
    /// A real rCUDA daemon over TCP (see [`rcuda_server::RcudaDaemon`]).
    Tcp(std::net::SocketAddr),
    /// A cluster of daemons behind a broker (see `rcuda_broker`): each
    /// (re)connect asks the broker where the session should run, then
    /// dials the advertised daemons best-candidate first. With retries
    /// enabled the session announces its token to the broker, arms a
    /// failover replay journal, and survives daemon death: a rejected
    /// resume triggers a verified replay of the session's state-mutating
    /// prefix on a surviving daemon (see `rcuda-client`). When the broker
    /// itself is unreachable, dialing degrades to the last daemon list it
    /// advertised, after a jittered pause. Cluster mode rides the
    /// single-stream resumable protocol; [`SessionBuilder::auth`]
    /// authenticates the broker control link instead of implying a mux
    /// trunk (daemons must then be open or fronted by their own trunks).
    Broker(std::net::SocketAddr),
    /// A complete in-process session over an OS-free channel transport:
    /// client runtime on one end, a served GPU context on a server thread,
    /// both on the wall clock. The fastest way to drive the full protocol
    /// stack in tests and benches.
    Channel,
    /// An in-process server behind a [`FaultInjector`] executing the plan,
    /// over a reconnectable channel transport. Each (re)connect spawns a
    /// fresh server thread; all threads share one [`SessionRegistry`], so a
    /// session announced with [`SessionBuilder::retries`] parks on
    /// disconnect and resumes — device state intact — on the next
    /// connection. Incompatible with [`SessionBuilder::mux`].
    ChannelFaulty(FaultPlan),
    /// An in-process session over the simulated network `NetworkId`, on a
    /// fresh shared virtual clock.
    Simulated(NetworkId),
    /// [`Endpoint::Simulated`] over an arbitrary network model — e.g. a
    /// [`rcuda_netsim::TopologyNetwork`] binding two specific cluster
    /// hosts, or a custom what-if interconnect.
    SimulatedWith(Arc<dyn rcuda_netsim::NetworkModel>),
}

/// Entry point for remote-session construction; see [`Session::builder`].
///
/// A `Session` wraps a [`RemoteRuntime`] over a type-erased transport and
/// derefs to it, so every CUDA-surface call (`malloc`, `memcpy_h2d`,
/// `launch`, …) is available directly on the session. The server side —
/// whatever it is — is joined by [`Session::finish`].
pub struct Session {
    /// The client-side runtime (accessible through `Deref` too).
    runtime: RemoteRuntime<Box<dyn Transport>>,
    clock: Option<Arc<VirtualClock>>,
    backend: Backend,
}

/// What serves the other side of the session's transport.
enum Backend {
    /// An out-of-process daemon owns the server side; nothing to join.
    Daemon,
    /// One in-process server thread.
    Thread(Option<ServerHandle>),
    /// Fault injection: every (re)connect spawned its own server thread
    /// over a shared registry.
    Fault {
        servers: ServerSet,
        registry: Arc<SessionRegistry>,
        fired: rcuda_transport::FiredFaults,
    },
    /// A multiplexed trunk, possibly shared with sibling sessions.
    Trunk(Arc<Trunk>),
}

type ServerHandle = JoinHandle<std::io::Result<SessionReport>>;
type ServerSet = Arc<Mutex<Vec<ServerHandle>>>;
type TrunkHandle = JoinHandle<std::io::Result<Vec<SessionReport>>>;

impl Session {
    /// Start configuring a session; finish with [`SessionBuilder::connect`]
    /// (one session) or [`SessionBuilder::connector`] (a shared mux trunk).
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            pipeline_depth: 0,
            phantom: false,
            deadline: None,
            retry: RetryPolicy::default(),
            observer: ObsHandle::none(),
            auth: None,
            cipher: CipherSuiteKind::None,
            mux: false,
            failover: None,
            codec: false,
        }
    }

    /// The session's virtual clock: `clock().now()` after a run is the
    /// simulated execution time.
    ///
    /// # Panics
    ///
    /// If the session runs on the wall clock (a [`Endpoint::Tcp`],
    /// [`Endpoint::Channel`], or [`Endpoint::ChannelFaulty`] session).
    pub fn clock(&self) -> &Arc<VirtualClock> {
        self.clock
            .as_ref()
            .expect("session runs on the wall clock, not a virtual one")
    }

    /// A point-in-time snapshot of the session's cumulative counters
    /// (summed across reconnects for fault-injected sessions).
    pub fn metrics(&self) -> SessionMetrics {
        self.runtime.metrics()
    }

    /// Sessions currently parked server-side awaiting a reconnect (always
    /// zero outside [`Endpoint::ChannelFaulty`]).
    pub fn parked_sessions(&self) -> usize {
        match &self.backend {
            Backend::Fault { registry, .. } => registry.parked_count(),
            _ => 0,
        }
    }

    /// The faults the injector has fired so far, in firing order (always
    /// empty outside [`Endpoint::ChannelFaulty`]).
    pub fn fired_faults(&self) -> Vec<rcuda_transport::Fault> {
        match &self.backend {
            Backend::Fault { fired, .. } => fired.snapshot(),
            _ => Vec::new(),
        }
    }

    /// Drop the client side and join whatever served it, returning every
    /// session report the server side produced, in connection order.
    ///
    /// Daemon-served ([`Endpoint::Tcp`]) sessions return no reports — the
    /// daemon keeps them (see `RcudaDaemon::session_reports`) — as does a
    /// session whose trunk is still shared with live siblings (the
    /// [`Connector`] returns those).
    pub fn finish(self) -> Vec<SessionReport> {
        let Session {
            runtime, backend, ..
        } = self;
        drop(runtime);
        match backend {
            Backend::Daemon => Vec::new(),
            Backend::Thread(handle) => handle
                .map(|h| {
                    vec![h
                        .join()
                        .expect("server thread panicked")
                        .expect("server io error")]
                })
                .unwrap_or_default(),
            Backend::Fault { servers, .. } => {
                let handles = std::mem::take(&mut *servers.lock().expect("server set lock"));
                handles
                    .into_iter()
                    .filter_map(|h| h.join().expect("server thread panicked").ok())
                    .collect()
            }
            Backend::Trunk(trunk) => match Arc::try_unwrap(trunk) {
                Ok(trunk) => trunk.finish(),
                Err(_) => Vec::new(),
            },
        }
    }

    /// [`Session::finish`] for the common case of exactly one server-side
    /// report.
    ///
    /// # Panics
    ///
    /// If the server side produced zero or multiple reports.
    pub fn finish_report(self) -> SessionReport {
        let mut reports = self.finish();
        assert_eq!(reports.len(), 1, "expected exactly one session report");
        reports.pop().expect("one report")
    }
}

impl Deref for Session {
    type Target = RemoteRuntime<Box<dyn Transport>>;
    fn deref(&self) -> &Self::Target {
        &self.runtime
    }
}

impl DerefMut for Session {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.runtime
    }
}

/// Options common to every endpoint, applied by [`SessionBuilder::connect`]
/// and [`SessionBuilder::connector`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    pipeline_depth: usize,
    phantom: bool,
    deadline: Option<Duration>,
    retry: RetryPolicy,
    observer: ObsHandle,
    auth: Option<Vec<u8>>,
    cipher: CipherSuiteKind,
    mux: bool,
    failover: Option<u64>,
    codec: bool,
}

/// Default failover-journal cap for [`Endpoint::Broker`] sessions with
/// retries enabled (see [`SessionBuilder::failover_journal`]).
const DEFAULT_FAILOVER_JOURNAL_BYTES: u64 = 16 << 20;

impl SessionBuilder {
    /// Deferred-completion window depth. `0` (the default) keeps the
    /// paper-faithful synchronous protocol; `depth ≥ 1` batches no-result
    /// calls into one message per window (see `rcuda-client`).
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Per-call wall-clock deadline: a call that cannot complete within the
    /// budget fails with `TransportTimedOut` instead of blocking. Default
    /// `None` — block indefinitely, as the paper's synchronous protocol
    /// does.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Retry transport faults up to `max_retries` times (with exponential
    /// backoff): idempotent calls replay transparently after a reconnect,
    /// non-idempotent ones still surface the fault immediately. Default
    /// `0` — fail fast, exactly the pre-retry behavior.
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.retry = RetryPolicy::retries(max_retries);
        self
    }

    /// Full control over the retry policy (backoff curve included).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arm the failover replay journal with this byte cap: after a daemon
    /// death, the session's state-mutating prefix replays — verified call
    /// by call — on whichever daemon the reconnect reaches, instead of the
    /// session failing. The journal disarms itself (failover off, session
    /// unaffected) once its weight exceeds the cap. Requires
    /// [`SessionBuilder::retries`]; [`Endpoint::Broker`] sessions with
    /// retries default to a 16 MiB journal without this call.
    pub fn failover_journal(mut self, cap_bytes: u64) -> Self {
        self.failover = Some(cap_bytes);
        self
    }

    /// Phantom server memory: data storage and kernel execution are skipped
    /// (paper-scale problems at negligible host cost — simulated timing is
    /// unaffected). Default `false`: everything executes functionally and
    /// remote results are bit-identical to local ones. Ignored by
    /// [`Endpoint::Tcp`], where the daemon owns its configuration.
    pub fn phantom(mut self, phantom: bool) -> Self {
        self.phantom = phantom;
        self
    }

    /// Install an observer on the whole session: per-call spans from the
    /// client runtime, per-message byte events from the transport, and (for
    /// the in-process endpoints) per-request service spans from the server
    /// worker, all reported to the same sink. Accepts an
    /// [`rcuda_obs::ObsHandle`] (e.g. [`rcuda_obs::Recorder::handle`]) or an
    /// `Arc<dyn Observer>`. Default: disarmed — the per-call hot path then
    /// performs no observability work at all.
    pub fn observer(mut self, observer: impl Into<ObsHandle>) -> Self {
        self.observer = observer.into();
        self
    }

    /// Authenticate with this shared token: the trunk handshake proves
    /// possession via an HMAC challenge-response (the token itself never
    /// crosses the wire) and a wrong token fails with
    /// `rcudaErrorAuthFailed`. Implies [`SessionBuilder::mux`] — the legacy
    /// single-stream hello cannot carry credentials. In-process endpoints
    /// configure their spawned server to require the same token.
    pub fn auth(mut self, token: impl Into<Vec<u8>>) -> Self {
        self.auth = Some(token.into());
        self
    }

    /// Encrypt every sub-stream payload with this cipher suite, negotiated
    /// at the trunk handshake under a key derived from the auth token and
    /// both handshake nonces. Default [`CipherSuiteKind::None`] — off, as
    /// the paper's middleware sends plaintext. Implies
    /// [`SessionBuilder::mux`].
    pub fn cipher(mut self, suite: CipherSuiteKind) -> Self {
        self.cipher = suite;
        self
    }

    /// Opt into the adaptive wire codec: bulk payloads (H2D bodies, launch
    /// argument regions, D2H replies) are LZ4-compressed when an online
    /// cost model predicts the byte savings outweigh the CPU time, and
    /// shipped raw otherwise. Negotiated at the hello — a server that does
    /// not advertise the capability leaves the session on the legacy
    /// framing. Default `false`: the paper-faithful wire (Table I byte
    /// counts) is untouched. Composes with [`SessionBuilder::cipher`]:
    /// payloads compress before the trunk encrypts (compress-then-encrypt).
    pub fn codec(mut self, on: bool) -> Self {
        self.codec = on;
        self
    }

    /// Multiplex the connection: upgrade to a framed trunk whose
    /// sub-streams interleave bulk transfers with small calls in 64 KiB
    /// chunks under windowed credit flow control, so a 16 MiB memcpy in
    /// flight no longer blocks a concurrent `cudaLaunch` behind it.
    /// Default `false` — the paper-faithful single-stream protocol.
    pub fn mux(mut self, on: bool) -> Self {
        self.mux = on;
        self
    }

    /// Whether the connection must carry the mux trunk framing (explicitly
    /// requested, or implied by auth/cipher).
    fn use_mux(&self) -> bool {
        self.mux || self.auth.is_some() || self.cipher != CipherSuiteKind::None
    }

    /// Connect one session to `endpoint`.
    pub fn connect(self, endpoint: Endpoint) -> CudaResult<Session> {
        // Cluster mode first: failover needs the single-stream resumable
        // protocol (a mux trunk cannot carry `Reconnect`), and the auth
        // token authenticates the broker link, not a trunk handshake.
        if let Endpoint::Broker(broker) = endpoint {
            return self.connect_broker(broker);
        }
        if self.use_mux() {
            let trunk = Arc::new(self.open_trunk(endpoint)?);
            return self.session_on(trunk);
        }
        match endpoint {
            Endpoint::Tcp(addr) => {
                let transport = TcpTransport::connect(addr).map_err(|e| transport_error(&e))?;
                let mut runtime = boxed_runtime(transport, wall_clock());
                self.configure(&mut runtime)?;
                Ok(Session {
                    runtime,
                    clock: None,
                    backend: Backend::Daemon,
                })
            }
            Endpoint::Channel => {
                let (client_side, server_side) = channel_pair();
                let clock: SharedClock = wall_clock();
                let server = spawn_server(
                    server_side,
                    server_device(self.phantom),
                    clock.clone(),
                    self.server_config(),
                    None,
                )
                .map_err(|e| transport_error(&e))?;
                let mut runtime = boxed_runtime(client_side, clock);
                self.configure(&mut runtime)?;
                Ok(Session {
                    runtime,
                    clock: None,
                    backend: Backend::Thread(Some(server)),
                })
            }
            Endpoint::ChannelFaulty(plan) => self.connect_faulty(plan),
            Endpoint::Simulated(net) => {
                self.connect(Endpoint::SimulatedWith(Arc::from(net.model())))
            }
            Endpoint::SimulatedWith(model) => {
                let clock = virtual_clock();
                let shared: SharedClock = clock.clone();
                let (client_side, server_side) = sim_pair(model, shared.clone());
                let server = spawn_server(
                    server_side,
                    server_device(self.phantom),
                    shared.clone(),
                    self.server_config(),
                    None,
                )
                .map_err(|e| transport_error(&e))?;
                let mut runtime = boxed_runtime(client_side, shared);
                self.configure(&mut runtime)?;
                Ok(Session {
                    runtime,
                    clock: Some(clock),
                    backend: Backend::Thread(Some(server)),
                })
            }
            Endpoint::Broker(_) => unreachable!("handled before the mux gate"),
        }
    }

    /// The cluster-mode path: broker-directed placement over a
    /// reconnectable TCP transport, with failover armed when retries are.
    fn connect_broker(self, broker: std::net::SocketAddr) -> CudaResult<Session> {
        let token = (self.retry.max_retries > 0).then(rcuda_client::fresh_session_token);
        let mut dialer = BrokerDialer::new(broker, self.auth.clone(), token.unwrap_or(0));
        let initial = dialer.dial().map_err(|e| transport_error(&e))?;
        let transport = ReconnectTransport::new(initial, move || dialer.dial());
        let mut runtime = boxed_runtime(transport, wall_clock());
        self.configure(&mut runtime)?;
        if let Some(token) = token {
            runtime.set_session_token(token);
            if self.failover.is_none() {
                // Cluster sessions default to a journal: failover is the
                // point of placing through a broker.
                runtime.set_failover(Some(DEFAULT_FAILOVER_JOURNAL_BYTES));
            }
        }
        Ok(Session {
            runtime,
            clock: None,
            backend: Backend::Daemon,
        })
    }

    /// Open a shared mux trunk to `endpoint` and return a [`Connector`]
    /// from which many concurrent sessions are opened. Implies
    /// [`SessionBuilder::mux`].
    pub fn connector(mut self, endpoint: Endpoint) -> CudaResult<Connector> {
        self.mux = true;
        let trunk = Arc::new(self.open_trunk(endpoint)?);
        Ok(Connector { trunk, knobs: self })
    }

    /// The fault-injection path (never multiplexed: the injector models
    /// whole-connection faults on the single-stream protocol).
    fn connect_faulty(self, plan: FaultPlan) -> CudaResult<Session> {
        let clock: SharedClock = wall_clock();
        let device = server_device(self.phantom);
        let config = self.server_config();
        let registry = Arc::new(SessionRegistry::new());
        let servers: ServerSet = Arc::new(Mutex::new(Vec::new()));

        let dial = {
            let device = Arc::clone(&device);
            let registry = Arc::clone(&registry);
            let servers = Arc::clone(&servers);
            let clock = clock.clone();
            move || -> std::io::Result<ChannelTransport> {
                let (client_side, server_side) = channel_pair();
                let handle = spawn_server(
                    server_side,
                    Arc::clone(&device),
                    clock.clone(),
                    config.clone(),
                    Some(Arc::clone(&registry)),
                )?;
                servers.lock().expect("server set lock").push(handle);
                Ok(client_side)
            }
        };
        let initial = dial().map_err(|e| transport_error(&e))?;
        let transport = FaultInjector::new(ReconnectTransport::new(initial, dial), plan);
        let fired = transport.fired_log();
        let mut runtime = boxed_runtime(transport, clock);
        self.configure(&mut runtime)?;
        Ok(Session {
            runtime,
            clock: None,
            backend: Backend::Fault {
                servers,
                registry,
                fired,
            },
        })
    }

    /// Open one sub-stream session on `trunk`.
    fn session_on(&self, trunk: Arc<Trunk>) -> CudaResult<Session> {
        let stream = trunk.peer.open_stream().map_err(|e| transport_error(&e))?;
        let mut runtime = boxed_runtime(stream, trunk.clock.clone());
        self.configure(&mut runtime)?;
        Ok(Session {
            runtime,
            clock: trunk.vclock.clone(),
            backend: Backend::Trunk(trunk),
        })
    }

    /// Stand up the raw connection for `endpoint` and run the trunk
    /// handshake over it.
    fn open_trunk(&self, endpoint: Endpoint) -> CudaResult<Trunk> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let transport = TcpTransport::connect(addr).map_err(|e| transport_error(&e))?;
                self.dial_trunk(Box::new(transport), wall_clock(), None, None)
            }
            Endpoint::Channel => {
                let (client_side, server_side) = channel_pair();
                let clock: SharedClock = wall_clock();
                let host = self.spawn_trunk_host(server_side, clock.clone());
                self.dial_trunk(Box::new(client_side), clock, None, Some(host))
            }
            Endpoint::Simulated(net) => {
                self.open_trunk(Endpoint::SimulatedWith(Arc::from(net.model())))
            }
            Endpoint::SimulatedWith(model) => {
                let clock = virtual_clock();
                let shared: SharedClock = clock.clone();
                let (client_side, server_side) = sim_pair(model, shared.clone());
                let host = self.spawn_trunk_host(server_side, shared.clone());
                self.dial_trunk(Box::new(client_side), shared, Some(clock), Some(host))
            }
            Endpoint::ChannelFaulty(_) | Endpoint::Broker(_) => Err(CudaError::InvalidValue),
        }
    }

    /// Spawn an in-process mux trunk host serving `transport`.
    fn spawn_trunk_host<T: Transport + 'static>(
        &self,
        transport: T,
        clock: SharedClock,
    ) -> TrunkHandle {
        let device = server_device(self.phantom);
        let mut config = self.server_config();
        config.auth_token = self.auth.clone();
        std::thread::Builder::new()
            .name("rcuda-trunk-host".into())
            .spawn(move || serve_mux_trunk(transport, device, clock, config))
            .expect("spawn trunk host")
    }

    /// The client half of the mux handshake: read the server hello, send
    /// `MuxHello`, answer the challenge with the HMAC proof, check the
    /// verdict, derive the session key, and start the demux engine.
    fn dial_trunk(
        &self,
        mut transport: Box<dyn Transport>,
        clock: SharedClock,
        vclock: Option<Arc<VirtualClock>>,
        server: Option<TrunkHandle>,
    ) -> CudaResult<Trunk> {
        let io_err = |e: &std::io::Error| transport_error(e);
        let mut hello = [0u8; ServerHello::WIRE_BYTES];
        transport.read_exact(&mut hello).map_err(|e| io_err(&e))?;
        if let ServerHello::Busy { .. } = ServerHello::from_wire(hello) {
            return Err(CudaError::ServerBusy);
        }

        let client_nonce = random_nonce();
        let flags = if self.cipher != CipherSuiteKind::None {
            FLAG_CIPHER
        } else {
            0
        };
        MuxHello {
            version: MUX_VERSION,
            flags,
            client_nonce,
        }
        .write(&mut transport)
        .map_err(|e| io_err(&e))?;
        transport.flush().map_err(|e| io_err(&e))?;

        let challenge = MuxChallenge::read(&mut transport).map_err(|e| io_err(&e))?;
        let token = self.auth.clone().unwrap_or_default();
        let mac = auth_proof(&token, &client_nonce, &challenge.server_nonce);
        MuxAuth { mac }
            .write(&mut transport)
            .map_err(|e| io_err(&e))?;
        transport.flush().map_err(|e| io_err(&e))?;
        let code = rcuda_proto::mux::read_mux_accept(&mut transport).map_err(|e| io_err(&e))?;
        CudaError::from_code(code)?;

        let cipher = challenge.cipher_kind();
        let key = derive_key(&token, &client_nonce, &challenge.server_nonce);
        let (read, write) = transport.into_split().map_err(|e| io_err(&e))?;
        let peer = MuxPeer::client(
            read,
            write,
            MuxConfig {
                cipher,
                key,
                pool: BufferPool::default(),
                obs: self.observer.clone(),
            },
        );
        Ok(Trunk {
            peer,
            clock,
            vclock,
            server: Mutex::new(server),
        })
    }

    /// Apply every common knob to a freshly constructed runtime. All
    /// connection paths funnel through here so a new option cannot be
    /// forgotten on one transport path.
    fn configure<T: Transport>(&self, runtime: &mut RemoteRuntime<T>) -> CudaResult<()> {
        runtime.set_pipeline_depth(self.pipeline_depth)?;
        runtime.set_deadline(self.deadline);
        runtime.set_retry_policy(self.retry);
        runtime.set_failover(self.failover);
        runtime.set_codec(self.codec);
        runtime.set_observer(self.observer.clone());
        Ok(())
    }

    /// The worker configuration shared by every in-process server spawn.
    fn server_config(&self) -> ServerConfig {
        ServerConfig {
            preinitialize_context: true,
            phantom_memory: self.phantom,
            observer: self.observer.clone(),
            ..ServerConfig::default()
        }
    }
}

/// A shared multiplexed trunk: many concurrent [`Session`]s over one
/// connection, one handshake, one (optional) cipher. Obtained from
/// [`SessionBuilder::connector`].
pub struct Connector {
    trunk: Arc<Trunk>,
    knobs: SessionBuilder,
}

impl Connector {
    /// Open a new sub-stream session on the shared trunk. Each session gets
    /// its own GPU context and admission slot on the server, exactly like a
    /// dedicated connection would.
    pub fn open(&self) -> CudaResult<Session> {
        self.knobs.session_on(Arc::clone(&self.trunk))
    }

    /// The trunk's virtual clock (simulated endpoints only).
    ///
    /// # Panics
    ///
    /// If the trunk runs on the wall clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        self.trunk
            .vclock
            .as_ref()
            .expect("connector runs on the wall clock, not a virtual one")
    }

    /// Live sub-streams on the trunk (open sessions, plus the transient
    /// handshake streams of sessions being opened).
    pub fn stream_count(&self) -> usize {
        self.trunk.peer.stream_count()
    }

    /// Tear the trunk down and join the in-process host, returning every
    /// session report it produced. Sessions still open keep the trunk alive
    /// (and their reports) until they finish; daemon-served trunks always
    /// return an empty list — the daemon keeps the reports.
    pub fn finish(self) -> Vec<SessionReport> {
        let Connector { trunk, .. } = self;
        match Arc::try_unwrap(trunk) {
            Ok(trunk) => trunk.finish(),
            Err(_) => Vec::new(),
        }
    }
}

/// The shared core of a multiplexed connection.
struct Trunk {
    peer: MuxPeer,
    clock: SharedClock,
    vclock: Option<Arc<VirtualClock>>,
    server: Mutex<Option<TrunkHandle>>,
}

impl Trunk {
    /// Drop the peer (GOAWAY + teardown) and join the in-process host.
    fn finish(self) -> Vec<SessionReport> {
        let Trunk { peer, server, .. } = self;
        let server = server.lock().expect("trunk server lock").take();
        drop(peer);
        match server {
            Some(handle) => handle
                .join()
                .expect("trunk host panicked")
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

/// The [`Endpoint::Broker`] dial factory: each (re)connect asks the
/// broker where the session should run, then dials the candidates best
/// first. The last successful placement is remembered so a broker outage
/// degrades the cluster to a static daemon list instead of taking the
/// data path down with it.
struct BrokerDialer {
    broker: std::net::SocketAddr,
    auth: Option<Vec<u8>>,
    /// Session token quoted in placement requests (0 = fresh session):
    /// lets the broker steer a reconnect at the daemon currently holding
    /// the session — e.g. the migration target right after a move.
    token: u64,
    /// The daemon list from the last successful placement.
    last_known: Vec<String>,
    /// Xorshift state for the degraded-mode pause (seeded per dialer so a
    /// client fleet doesn't hammer a recovering broker in lockstep).
    rng: u64,
}

impl BrokerDialer {
    fn new(broker: std::net::SocketAddr, auth: Option<Vec<u8>>, token: u64) -> BrokerDialer {
        let rng = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0x9E37_79B9, |d| d.as_nanos() as u64)
            ^ token;
        BrokerDialer {
            broker,
            auth,
            token,
            last_known: Vec::new(),
            rng: rng | 1,
        }
    }

    /// One placement round trip, bounded so a hung broker can't stall the
    /// reconnect path.
    fn place(&mut self) -> std::io::Result<Vec<String>> {
        let mut client = rcuda_broker::BrokerClient::connect(self.broker, self.auth.as_deref())?;
        client.set_timeout(Some(Duration::from_secs(1)))?;
        client.place(self.token)
    }

    fn jitter(&mut self) -> Duration {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        Duration::from_millis(5 + self.rng % 45)
    }

    fn dial(&mut self) -> std::io::Result<TcpTransport> {
        let addrs = match self.place() {
            Ok(addrs) if !addrs.is_empty() => {
                self.last_known = addrs.clone();
                addrs
            }
            Ok(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrNotAvailable,
                    "broker has no placeable daemon",
                ))
            }
            Err(e) => {
                // Broker unreachable: fall back to the daemons it last
                // advertised, after a jittered pause.
                if self.last_known.is_empty() {
                    return Err(e);
                }
                std::thread::sleep(self.jitter());
                self.last_known.clone()
            }
        };
        let mut last_err: Option<std::io::Error> = None;
        for addr in &addrs {
            match TcpTransport::connect(addr.as_str()) {
                Ok(t) => return Ok(t),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("non-empty candidate list"))
    }
}

/// Type-erase a transport into the unified session runtime.
fn boxed_runtime<T: Transport + 'static>(
    transport: T,
    clock: SharedClock,
) -> RemoteRuntime<Box<dyn Transport>> {
    RemoteRuntime::new(Box::new(transport), clock)
}

/// The device an in-process server session runs on.
fn server_device(phantom: bool) -> Arc<GpuDevice> {
    if phantom {
        GpuDevice::tesla_c1060()
    } else {
        GpuDevice::tesla_c1060_functional()
    }
}

/// Spawn a server thread driving one session over `transport` — the single
/// spawn path for every in-process single-stream connection. With a
/// registry the session can park on disconnect and resume on a later
/// connection's thread; without one it lives and dies with this connection.
fn spawn_server<T: Transport + 'static>(
    transport: T,
    device: Arc<GpuDevice>,
    clock: SharedClock,
    config: ServerConfig,
    registry: Option<Arc<SessionRegistry>>,
) -> std::io::Result<JoinHandle<std::io::Result<SessionReport>>> {
    std::thread::Builder::new()
        .name("rcuda-session-server".into())
        .spawn(move || match registry {
            Some(reg) => serve_connection_with_registry(transport, &device, clock, &config, &reg),
            None => serve_connection(transport, &device, clock, &config),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::CudaRuntime;
    use rcuda_core::Clock as _;
    use rcuda_gpu::module::build_module;

    #[test]
    fn simulated_session_round_trip() {
        let mut sess = Session::builder()
            .connect(Endpoint::Simulated(NetworkId::Ib40G))
            .unwrap();
        sess.initialize(&build_module(&["fill"], 0)).unwrap();
        let p = sess.malloc(64).unwrap();
        sess.memcpy_h2d(p, &[7u8; 64]).unwrap();
        assert_eq!(sess.memcpy_d2h(p, 64).unwrap(), vec![7u8; 64]);
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        assert!(sess.clock().now().as_micros_f64() > 0.0, "time passed");
        let report = sess.finish_report();
        assert!(report.orderly_shutdown);
        assert_eq!(report.leaked_allocations, 0);
    }

    #[test]
    fn channel_session_round_trip() {
        let mut sess = Session::builder().connect(Endpoint::Channel).unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(16).unwrap();
        sess.memcpy_h2d(p, &[3u8; 16]).unwrap();
        assert_eq!(sess.memcpy_d2h(p, 16).unwrap(), vec![3u8; 16]);
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        let report = sess.finish_report();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn muxed_channel_session_round_trip() {
        let mut sess = Session::builder()
            .mux(true)
            .connect(Endpoint::Channel)
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(32).unwrap();
        sess.memcpy_h2d(p, &[5u8; 32]).unwrap();
        assert_eq!(sess.memcpy_d2h(p, 32).unwrap(), vec![5u8; 32]);
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        let report = sess.finish_report();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn authenticated_encrypted_session_round_trip() {
        let mut sess = Session::builder()
            .auth("sesame")
            .cipher(CipherSuiteKind::ChaCha20)
            .connect(Endpoint::Channel)
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(16).unwrap();
        sess.memcpy_h2d(p, &[0xAB; 16]).unwrap();
        assert_eq!(sess.memcpy_d2h(p, 16).unwrap(), vec![0xAB; 16]);
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        let report = sess.finish_report();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn wrong_token_fails_auth() {
        let host = Session::builder().auth("right");
        let (client_side, server_side) = channel_pair();
        let clock: SharedClock = wall_clock();
        let _host = host.spawn_trunk_host(server_side, clock.clone());
        let bad = Session::builder().auth("wrong");
        let err = bad
            .dial_trunk(Box::new(client_side), clock, None, None)
            .err()
            .expect("auth must fail");
        assert_eq!(err, CudaError::AuthFailed);
    }

    #[test]
    fn connector_shares_one_trunk() {
        let conn = Session::builder().connector(Endpoint::Channel).unwrap();
        let mut a = conn.open().unwrap();
        let mut b = conn.open().unwrap();
        a.initialize(&build_module(&[], 0)).unwrap();
        b.initialize(&build_module(&[], 0)).unwrap();
        let pa = a.malloc(8).unwrap();
        let pb = b.malloc(8).unwrap();
        a.memcpy_h2d(pa, &[1u8; 8]).unwrap();
        b.memcpy_h2d(pb, &[2u8; 8]).unwrap();
        assert_eq!(a.memcpy_d2h(pa, 8).unwrap(), vec![1u8; 8]);
        assert_eq!(b.memcpy_d2h(pb, 8).unwrap(), vec![2u8; 8]);
        a.finalize().unwrap();
        b.finalize().unwrap();
        assert!(a.finish().is_empty(), "trunk still shared");
        assert!(b.finish().is_empty(), "trunk still shared");
        let reports = conn.finish();
        assert_eq!(reports.len(), 2, "both sub-sessions reported");
        assert!(reports.iter().all(|r| r.orderly_shutdown));
    }

    #[test]
    fn builder_applies_the_pipeline_depth() {
        let sess = Session::builder()
            .pipeline(4)
            .connect(Endpoint::Simulated(NetworkId::GigaE))
            .unwrap();
        assert_eq!(sess.pipeline_depth(), 4);
        let default = Session::builder()
            .connect(Endpoint::Simulated(NetworkId::GigaE))
            .unwrap();
        assert_eq!(default.pipeline_depth(), 0, "paper-faithful default");
    }

    #[test]
    fn builder_applies_deadline_and_retries() {
        let sess = Session::builder()
            .deadline(std::time::Duration::from_millis(250))
            .retries(3)
            .connect(Endpoint::Channel)
            .unwrap();
        assert_eq!(sess.deadline(), Some(std::time::Duration::from_millis(250)));
        assert_eq!(sess.retry_policy().max_retries, 3);
        drop(sess);

        let default = Session::builder()
            .connect(Endpoint::Simulated(NetworkId::GigaE))
            .unwrap();
        assert_eq!(default.deadline(), None, "block forever by default");
        assert_eq!(
            default.retry_policy().max_retries,
            0,
            "fail-fast by default"
        );
    }

    #[test]
    fn session_surfaces_metrics() {
        let mut sess = Session::builder().connect(Endpoint::Channel).unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let m = sess.metrics();
        assert!(m.bytes_sent > 0, "init was sent");
        assert!(m.bytes_received > 0, "cc push + ack were received");
        assert_eq!(m.messages_sent, 1, "one request so far");
        assert_eq!(m.messages_received, 2, "cc push, then the init ack");
        assert_eq!(m.reconnects, 0);
        assert_eq!(m.calls, 1, "initialization is a call");
        assert_eq!(m.retries, 0);

        sess.finalize().unwrap();
        sess.finish();
    }

    #[test]
    fn observer_records_client_and_server_spans() {
        let rec = rcuda_obs::Recorder::new();
        let mut sess = Session::builder()
            .observer(rec.handle())
            .connect(Endpoint::Channel)
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(16).unwrap();
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        sess.finish();

        let report = rec.report();
        assert!(report.spans.iter().any(|s| s.op == "cudaMalloc"));
        assert!(report.spans.iter().any(|s| s.op == "initialization"));
        assert!(
            report.server_spans.iter().any(|s| s.op == "cudaMalloc"),
            "the in-process server reports into the same sink"
        );
        assert!(report.messages.sent_count >= 4, "one message per call");
        assert_eq!(report.reconnects, 0);
    }

    #[test]
    fn faulty_session_without_faults_behaves_normally() {
        let mut sess = Session::builder()
            .connect(Endpoint::ChannelFaulty(FaultPlan::none()))
            .unwrap();
        sess.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.malloc(8).unwrap();
        sess.memcpy_h2d(p, &[9u8; 8]).unwrap();
        assert_eq!(sess.memcpy_d2h(p, 8).unwrap(), vec![9u8; 8]);
        sess.free(p).unwrap();
        sess.finalize().unwrap();
        assert_eq!(sess.parked_sessions(), 0);
        let reports = sess.finish();
        assert_eq!(reports.len(), 1, "a single connection served everything");
        assert!(reports[0].orderly_shutdown);
    }

    #[test]
    fn faulty_endpoint_refuses_mux() {
        let err = Session::builder()
            .mux(true)
            .connect(Endpoint::ChannelFaulty(FaultPlan::none()))
            .err()
            .expect("mux over fault injection is not supported");
        assert_eq!(err, CudaError::InvalidValue);
    }

    #[test]
    fn local_helpers_construct() {
        let _ = local_functional();
        let (_, clock) = local_simulated();
        assert_eq!(clock.now().as_nanos(), 0);
    }
}
