//! Session construction: one builder to stand up a CUDA runtime over any
//! transport.
//!
//! [`Session::builder`] unifies the three transport-specific construction
//! paths (real TCP, in-process channel, simulated network) behind one
//! fluent API, with pipelining as an opt-in knob:
//!
//! ```
//! use rcuda::session::Session;
//! use rcuda::netsim::NetworkId;
//!
//! // Simulated 40 Gbps InfiniBand, deferred-completion window of 4:
//! let sess = Session::builder()
//!     .pipeline(4)
//!     .simulated(NetworkId::Ib40G);
//! # drop(sess);
//! ```
//!
//! Pipelining defaults to **off** (depth 0): the paper's protocol is
//! strictly synchronous — one round trip per CUDA call — and the estimation
//! model of §V prices exactly that. `pipeline(depth)` opts a session into
//! the batched submission path (see `rcuda-client`).
//!
//! The free functions ([`local_functional`], [`local_simulated`]) remain for
//! local runtimes, which involve no transport; the older remote constructors
//! are deprecated in favor of the builder.

use std::sync::Arc;
use std::thread::JoinHandle;

use rcuda_api::LocalRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::{virtual_clock, wall_clock};
use rcuda_core::{CudaResult, SharedClock, VirtualClock};
use rcuda_gpu::GpuDevice;
use rcuda_netsim::NetworkId;
use rcuda_server::{serve_connection, ServerConfig, SessionReport};
use rcuda_transport::{channel_pair, sim_pair, ChannelTransport, SimTransport, TcpTransport};

/// A functional local-GPU runtime (wall clock, kernels really execute).
pub fn local_functional() -> LocalRuntime {
    LocalRuntime::new(GpuDevice::tesla_c1060_functional(), wall_clock())
}

/// A timing-only local-GPU runtime on a fresh virtual clock.
pub fn local_simulated() -> (LocalRuntime, Arc<VirtualClock>) {
    let clock = virtual_clock();
    let rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
    (rt, clock)
}

/// Entry point for remote-session construction; see [`Session::builder`].
pub struct Session;

impl Session {
    /// Start configuring a remote session. Terminal methods pick the
    /// transport: [`SessionBuilder::tcp`], [`SessionBuilder::channel`],
    /// [`SessionBuilder::simulated`] / [`SessionBuilder::simulated_with`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            pipeline_depth: 0,
            phantom: false,
        }
    }
}

/// Options common to every transport, applied by the terminal methods.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    pipeline_depth: usize,
    phantom: bool,
}

impl SessionBuilder {
    /// Deferred-completion window depth. `0` (the default) keeps the
    /// paper-faithful synchronous protocol; `depth ≥ 1` batches no-result
    /// calls into one message per window (see `rcuda-client`).
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Phantom server memory: data storage and kernel execution are skipped
    /// (paper-scale problems at negligible host cost — simulated timing is
    /// unaffected). Default `false`: everything executes functionally and
    /// remote results are bit-identical to local ones. Ignored by
    /// [`SessionBuilder::tcp`], where the daemon owns its configuration.
    pub fn phantom(mut self, phantom: bool) -> Self {
        self.phantom = phantom;
        self
    }

    /// Connect to an rCUDA daemon over real TCP (see
    /// [`rcuda_server::RcudaDaemon`]).
    pub fn tcp<A: std::net::ToSocketAddrs>(
        self,
        addr: A,
    ) -> CudaResult<RemoteRuntime<TcpTransport>> {
        let transport =
            TcpTransport::connect(addr).map_err(|e| rcuda_client::transport_error(&e))?;
        let mut rt = RemoteRuntime::new(transport, wall_clock());
        rt.set_pipeline_depth(self.pipeline_depth)?;
        Ok(rt)
    }

    /// A complete in-process session over an OS-free channel transport:
    /// client runtime on one end, a served GPU context on a server thread,
    /// both on the wall clock. The fastest way to drive the full protocol
    /// stack in tests and benches.
    pub fn channel(self) -> ChannelSession {
        let (client_side, server_side) = channel_pair();
        let clock: SharedClock = wall_clock();
        let server = spawn_server(server_side, clock.clone(), self.phantom);
        let mut runtime = RemoteRuntime::new(client_side, clock);
        runtime
            .set_pipeline_depth(self.pipeline_depth)
            .expect("fresh session");
        ChannelSession {
            runtime,
            server: Some(server),
        }
    }

    /// A complete in-process session over the simulated network `net`, on a
    /// fresh shared virtual clock.
    pub fn simulated(self, net: NetworkId) -> SimSession {
        self.simulated_with(Arc::from(net.model()))
    }

    /// [`SessionBuilder::simulated`] over an arbitrary network model — e.g.
    /// a [`rcuda_netsim::TopologyNetwork`] binding two specific cluster
    /// hosts, or a custom what-if interconnect.
    pub fn simulated_with(self, model: Arc<dyn rcuda_netsim::NetworkModel>) -> SimSession {
        let clock = virtual_clock();
        let shared: SharedClock = clock.clone();
        let (client_side, server_side) = sim_pair(model, shared.clone());
        let server = spawn_server(server_side, shared.clone(), self.phantom);
        let mut runtime = RemoteRuntime::new(client_side, shared);
        runtime
            .set_pipeline_depth(self.pipeline_depth)
            .expect("fresh session");
        SimSession {
            runtime,
            clock,
            server: Some(server),
        }
    }
}

/// Spawn a server thread driving one session over `transport`.
fn spawn_server<T: rcuda_transport::Transport + 'static>(
    transport: T,
    clock: SharedClock,
    phantom: bool,
) -> JoinHandle<std::io::Result<SessionReport>> {
    let device = if phantom {
        GpuDevice::tesla_c1060()
    } else {
        GpuDevice::tesla_c1060_functional()
    };
    let config = ServerConfig {
        preinitialize_context: true,
        phantom_memory: phantom,
    };
    std::thread::Builder::new()
        .name("rcuda-session-server".into())
        .spawn(move || serve_connection(transport, &device, clock, &config))
        .expect("spawn session server")
}

/// Connect to an rCUDA daemon over real TCP.
#[deprecated(since = "0.2.0", note = "use `Session::builder().tcp(addr)`")]
pub fn connect_tcp<A: std::net::ToSocketAddrs>(addr: A) -> CudaResult<RemoteRuntime<TcpTransport>> {
    Session::builder().tcp(addr)
}

/// A complete in-process remote session over a simulated network: client
/// runtime on one end, a served GPU context on the other, one shared
/// virtual clock.
pub struct SimSession {
    /// The client-side runtime (use it like any [`rcuda_api::CudaRuntime`]).
    pub runtime: RemoteRuntime<SimTransport>,
    /// The session's virtual clock — `clock.now()` after a run is the
    /// simulated execution time.
    pub clock: Arc<VirtualClock>,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl SimSession {
    /// Join the server side and return its session report.
    pub fn finish(mut self) -> SessionReport {
        // Make sure the server saw a Quit or a hangup: dropping the runtime
        // closes the client endpoint.
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

/// A complete in-process remote session over a channel transport (wall
/// clock); see [`SessionBuilder::channel`].
pub struct ChannelSession {
    /// The client-side runtime.
    pub runtime: RemoteRuntime<ChannelTransport>,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl ChannelSession {
    /// Join the server side and return its session report.
    pub fn finish(mut self) -> SessionReport {
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

/// Stand up a simulated remote-GPU session over `net`.
///
/// With `phantom = true` the server context skips data storage and kernel
/// execution (paper-scale problems at negligible host cost — timing is
/// unaffected); with `phantom = false` everything executes functionally and
/// remote results are bit-identical to local ones.
#[deprecated(
    since = "0.2.0",
    note = "use `Session::builder().phantom(phantom).simulated(net)`"
)]
pub fn simulated_session(net: NetworkId, phantom: bool) -> SimSession {
    Session::builder().phantom(phantom).simulated(net)
}

/// [`simulated_session`] over an arbitrary network model.
#[deprecated(
    since = "0.2.0",
    note = "use `Session::builder().phantom(phantom).simulated_with(model)`"
)]
pub fn simulated_session_with(
    model: Arc<dyn rcuda_netsim::NetworkModel>,
    phantom: bool,
) -> SimSession {
    Session::builder().phantom(phantom).simulated_with(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::CudaRuntime;
    use rcuda_core::Clock as _;
    use rcuda_gpu::module::build_module;

    #[test]
    fn simulated_session_round_trip() {
        let mut sess = Session::builder().simulated(NetworkId::Ib40G);
        sess.runtime
            .initialize(&build_module(&["fill"], 0))
            .unwrap();
        let p = sess.runtime.malloc(64).unwrap();
        sess.runtime.memcpy_h2d(p, &[7u8; 64]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 64).unwrap(), vec![7u8; 64]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        assert!(sess.clock.now().as_micros_f64() > 0.0, "time passed");
        let report = sess.finish();
        assert!(report.orderly_shutdown);
        assert_eq!(report.leaked_allocations, 0);
    }

    #[test]
    fn channel_session_round_trip() {
        let mut sess = Session::builder().channel();
        sess.runtime.initialize(&build_module(&[], 0)).unwrap();
        let p = sess.runtime.malloc(16).unwrap();
        sess.runtime.memcpy_h2d(p, &[3u8; 16]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 16).unwrap(), vec![3u8; 16]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        let report = sess.finish();
        assert!(report.orderly_shutdown);
    }

    #[test]
    fn builder_applies_the_pipeline_depth() {
        let sess = Session::builder().pipeline(4).simulated(NetworkId::GigaE);
        assert_eq!(sess.runtime.pipeline_depth(), 4);
        let default = Session::builder().simulated(NetworkId::GigaE);
        assert_eq!(
            default.runtime.pipeline_depth(),
            0,
            "paper-faithful default"
        );
    }

    #[test]
    fn deprecated_constructors_still_work() {
        #[allow(deprecated)]
        let sess = simulated_session(NetworkId::Ib40G, true);
        assert_eq!(sess.runtime.pipeline_depth(), 0);
    }

    #[test]
    fn local_helpers_construct() {
        let _ = local_functional();
        let (_, clock) = local_simulated();
        assert_eq!(clock.now().as_nanos(), 0);
    }
}
