//! Session helpers: one call to stand up a local, TCP-remote, or
//! simulated-remote CUDA runtime.

use std::sync::Arc;
use std::thread::JoinHandle;

use rcuda_api::LocalRuntime;
use rcuda_client::RemoteRuntime;
use rcuda_core::time::{virtual_clock, wall_clock};
use rcuda_core::{CudaError, CudaResult, SharedClock, VirtualClock};
use rcuda_gpu::GpuDevice;
use rcuda_netsim::NetworkId;
use rcuda_server::{serve_connection, ServerConfig, SessionReport};
use rcuda_transport::{sim_pair, SimTransport, TcpTransport};

/// A functional local-GPU runtime (wall clock, kernels really execute).
pub fn local_functional() -> LocalRuntime {
    LocalRuntime::new(GpuDevice::tesla_c1060_functional(), wall_clock())
}

/// A timing-only local-GPU runtime on a fresh virtual clock.
pub fn local_simulated() -> (LocalRuntime, Arc<VirtualClock>) {
    let clock = virtual_clock();
    let rt = LocalRuntime::new_phantom(GpuDevice::tesla_c1060(), clock.clone());
    (rt, clock)
}

/// Connect to an rCUDA daemon over real TCP (see
/// [`rcuda_server::RcudaDaemon`]).
pub fn connect_tcp<A: std::net::ToSocketAddrs>(addr: A) -> CudaResult<RemoteRuntime<TcpTransport>> {
    let transport = TcpTransport::connect(addr).map_err(|_| CudaError::Unknown)?;
    Ok(RemoteRuntime::new(transport, wall_clock()))
}

/// A complete in-process remote session over a simulated network: client
/// runtime on one end, a served GPU context on the other, one shared
/// virtual clock.
pub struct SimSession {
    /// The client-side runtime (use it like any [`rcuda_api::CudaRuntime`]).
    pub runtime: RemoteRuntime<SimTransport>,
    /// The session's virtual clock — `clock.now()` after a run is the
    /// simulated execution time.
    pub clock: Arc<VirtualClock>,
    server: Option<JoinHandle<std::io::Result<SessionReport>>>,
}

impl SimSession {
    /// Join the server side and return its session report.
    pub fn finish(mut self) -> SessionReport {
        // Make sure the server saw a Quit or a hangup: dropping the runtime
        // closes the client endpoint.
        let server = self.server.take().expect("finish called once");
        drop(self.runtime);
        server
            .join()
            .expect("server thread panicked")
            .expect("server io error")
    }
}

/// Stand up a simulated remote-GPU session over `net`.
///
/// With `phantom = true` the server context skips data storage and kernel
/// execution (paper-scale problems at negligible host cost — timing is
/// unaffected); with `phantom = false` everything executes functionally and
/// remote results are bit-identical to local ones.
pub fn simulated_session(net: NetworkId, phantom: bool) -> SimSession {
    simulated_session_with(Arc::from(net.model()), phantom)
}

/// [`simulated_session`] over an arbitrary network model — e.g. a
/// [`rcuda_netsim::TopologyNetwork`] binding two specific cluster hosts, or
/// a custom what-if interconnect.
pub fn simulated_session_with(
    model: Arc<dyn rcuda_netsim::NetworkModel>,
    phantom: bool,
) -> SimSession {
    let clock = virtual_clock();
    let shared: SharedClock = clock.clone();
    let (client_side, server_side) = sim_pair(model, shared.clone());
    let device = if phantom {
        GpuDevice::tesla_c1060()
    } else {
        GpuDevice::tesla_c1060_functional()
    };
    let config = ServerConfig {
        preinitialize_context: true,
        phantom_memory: phantom,
    };
    let server_clock = shared.clone();
    let server = std::thread::Builder::new()
        .name("rcuda-sim-server".into())
        .spawn(move || serve_connection(server_side, &device, server_clock, &config))
        .expect("spawn sim server");
    SimSession {
        runtime: RemoteRuntime::new(client_side, shared),
        clock,
        server: Some(server),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcuda_api::CudaRuntime;
    use rcuda_core::Clock as _;
    use rcuda_gpu::module::build_module;

    #[test]
    fn simulated_session_round_trip() {
        let mut sess = simulated_session(NetworkId::Ib40G, false);
        sess.runtime
            .initialize(&build_module(&["fill"], 0))
            .unwrap();
        let p = sess.runtime.malloc(64).unwrap();
        sess.runtime.memcpy_h2d(p, &[7u8; 64]).unwrap();
        assert_eq!(sess.runtime.memcpy_d2h(p, 64).unwrap(), vec![7u8; 64]);
        sess.runtime.free(p).unwrap();
        sess.runtime.finalize().unwrap();
        assert!(sess.clock.now().as_micros_f64() > 0.0, "time passed");
        let report = sess.finish();
        assert!(report.orderly_shutdown);
        assert_eq!(report.leaked_allocations, 0);
    }

    #[test]
    fn local_helpers_construct() {
        let _ = local_functional();
        let (_, clock) = local_simulated();
        assert_eq!(clock.now().as_nanos(), 0);
    }
}
