//! `rcuda-run` — run a case study against an rCUDA daemon over TCP.
//!
//! Pairs with `rcudad` for a two-terminal demo of the middleware:
//!
//! ```text
//! terminal 1:  cargo run -p rcuda-server --bin rcudad -- --listen 127.0.0.1:8308
//! terminal 2:  cargo run --bin rcuda-run -- --connect 127.0.0.1:8308 mm 256
//!              cargo run --bin rcuda-run -- --connect 127.0.0.1:8308 fft 16
//! ```
//!
//! The workload executes remotely, the result is verified against a local
//! reference computation, and the session's wire trace is printed.
//!
//! Cluster mode: `--broker ADDR` dials an `rcuda-brokerd` directory
//! instead of a daemon — placement picks the daemon — and `--retries N`
//! arms reconnect/failover so the run survives its daemon dying.

use rcuda::api::{run_fft_bytes, run_matmul_bytes};
use rcuda::core::time::wall_clock;
use rcuda::kernels::complex::complex_to_bytes;
use rcuda::kernels::fft::fft_batch_512;
use rcuda::kernels::matrix::CpuSgemm;
use rcuda::kernels::workload::{fft_input, matrix_pair};
use rcuda::proto::wire::f32s_to_bytes;
use rcuda::session::{self, Endpoint};

fn usage(msg: &str) -> ! {
    eprintln!("rcuda-run: {msg}");
    eprintln!(
        "usage: rcuda-run (--connect ADDR | --broker ADDR) \
         (mm DIM | fft BATCH) [--seed N] [--retries N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = None;
    let mut broker = false;
    let mut retries = 0u32;
    let mut workload: Option<(String, u32)> = None;
    let mut seed = 1u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next(),
            "--broker" => {
                addr = args.next();
                broker = true;
            }
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--retries needs an integer"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "mm" | "fft" => {
                let size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("workload needs a size"));
                workload = Some((arg, size));
            }
            "--help" | "-h" => usage("help"),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage("--connect or --broker is required"));
    let (kind, size) = workload.unwrap_or_else(|| usage("pick a workload: mm DIM or fft BATCH"));

    let clock = wall_clock();
    let sock = std::net::ToSocketAddrs::to_socket_addrs(&addr)
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| usage(&format!("cannot resolve `{addr}`")));
    let endpoint = if broker {
        Endpoint::Broker(sock)
    } else {
        Endpoint::Tcp(sock)
    };
    let mut builder = session::Session::builder();
    if retries > 0 {
        builder = builder.retries(retries);
    }
    let mut rt = match builder.connect(endpoint) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("rcuda-run: cannot connect to {addr}: {e:?}");
            std::process::exit(1);
        }
    };

    // A typed CUDA error (SessionLost after an unrecoverable failover,
    // ServerBusy, ...) is an outcome, not a bug — report it cleanly.
    fn fail(e: rcuda::core::CudaError) -> ! {
        eprintln!("rcuda-run: remote run failed: {e:?}");
        std::process::exit(1);
    }

    match kind.as_str() {
        "mm" => {
            let m = size;
            let (a, b) = matrix_pair(m as usize, seed);
            let report = run_matmul_bytes(
                &mut *rt,
                &*clock,
                m,
                &f32s_to_bytes(a.as_slice()),
                &f32s_to_bytes(b.as_slice()),
            )
            .unwrap_or_else(|e| fail(e));
            // Verify against a local 8-thread reference.
            let mut expect = vec![0.0f32; (m * m) as usize];
            CpuSgemm::new(8).run(
                m as usize,
                m as usize,
                m as usize,
                a.as_slice(),
                b.as_slice(),
                &mut expect,
            );
            let got: Vec<f32> = report
                .output
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let diff = got
                .iter()
                .zip(&expect)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            let tol = m as f32 * 1e-5 * 8.0;
            assert!(diff <= tol, "remote result diverged: max diff {diff}");
            println!("mm {m}×{m}: remote result verified (max |Δ| = {diff:.2e})");
            for (phase, t) in &report.phases {
                println!("  {phase:<16} {:>10.3} ms", t.as_millis_f64());
            }
        }
        "fft" => {
            let batch = size;
            let input = fft_input(batch as usize, seed);
            let report = run_fft_bytes(&mut *rt, &*clock, batch, &complex_to_bytes(&input))
                .unwrap_or_else(|e| fail(e));
            let mut expect = input;
            fft_batch_512(&mut expect);
            assert_eq!(
                report.output,
                complex_to_bytes(&expect),
                "remote FFT result diverged"
            );
            println!("fft batch {batch}: remote result bit-identical to reference");
            for (phase, t) in &report.phases {
                println!("  {phase:<16} {:>10.3} ms", t.as_millis_f64());
            }
        }
        _ => unreachable!(),
    }

    println!("\nwire trace:");
    for ev in &rt.trace().events {
        println!(
            "  {:<22} sent {:>10} B  received {:>10} B  {:>10.3} ms",
            ev.op,
            ev.sent,
            ev.received,
            ev.duration().as_millis_f64()
        );
    }
    let (sent, received) = rt.trace().totals();
    println!("total: {sent} B sent, {received} B received");
}
